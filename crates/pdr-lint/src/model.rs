//! Exhaustive interleaving-level model checking (PDR004, PDR013–PDR017).
//!
//! The greedy abstract scheduler in [`crate::deadlock`] explores *one*
//! interleaving of the §3 synchronized executive. That is complete for
//! deadlock (the executive's rendezvous semantics is confluent: all
//! enabled transitions at a state are pairwise independent, so there is
//! exactly one terminal state), but it cannot see properties that only
//! hold in *some* interleavings — a `Configure` racing a `Compute` on the
//! region it rewrites, or a result handed off after its module was
//! evicted. This module explores **all** cross-operator interleavings.
//!
//! ## State vector
//!
//! One explicit state is
//!
//! * a program counter per operator stream,
//! * the resident module per dynamic region (from the §4 constraints),
//! * the in-flight datum per stream: which tracked module produced the
//!   data the stream is about to send, if any.
//!
//! Transitions are `Local` (a `Compute`/`Configure` advances one stream)
//! or `Rendezvous` (a matched `Send`/`Receive` pair advances both
//! streams at once, as in the synchronized executive's semantics).
//!
//! ## Partial-order reduction
//!
//! Breadth-first search with a visibility-aware ample set: at a state
//! where some enabled transition is *invisible* (a static `Compute`, an
//! untracked `Configure`, or a rendezvous carrying no tracked datum),
//! only the first such transition is expanded; otherwise every enabled
//! transition is. All enabled transitions are pairwise independent
//! (each stream contributes at most one), the state space is acyclic
//! (program counters strictly increase), and the checked predicates
//! only read *visible* state (residency, produced data, enabledness of
//! visible transitions), so the reduction preserves every reported
//! property — the classic ample-set conditions C0–C3 with C3 vacuous.
//! `synthetic_large` (512 instructions, 8 streams) verifies in under a
//! thousand states instead of the unreduced combinatorial blow-up
//! (hundreds of thousands of states — see `bench_model`).
//!
//! ## Soundness and completeness
//!
//! On an executive with clean rendezvous matching the checker is sound
//! and complete for PDR004/PDR013/PDR014 *within the state budget*
//! ([`ModelConfig::max_states`]): every report is a real reachable
//! defect (each carries a concrete minimal-length schedule witness,
//! replayable via [`crate::replay`]), and a clean report means no
//! reachable state violates the property. When the budget is exhausted
//! the run stops early and says so explicitly (PDR017) instead of
//! silently under-reporting. Witness floods are capped at
//! [`MAX_WITNESSES_PER_CODE`] distinct sites per code.
//!
//! PDR015 is a separate `[best, worst]`-clock abstract interpretation
//! ([`check_timing`]) over the happens-before structure: reconfiguration
//! latency is counted at worst-case (the `Configure`'s carried time) in
//! the upper clock and zero in the lower clock (§4 prefetching can hide
//! it entirely), and rendezvous join both clocks with `max` plus the
//! medium transfer time. A module's §4 `deadline_us` is violated for
//! certain when even the best-case completion clock exceeds it (error)
//! and violated possibly when only the worst-case clock does (warning).

use crate::diag::{Code, Diagnostic, Location};
use crate::rendezvous::RendezvousPair;
use pdr_fabric::TimePs;
use pdr_graph::{ArchGraph, Characterization, ConstraintsFile};
use pdr_ir::{IrExecutive, IrInstr, ModuleId, SymbolTable};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// "no module" sentinel in the dense residency/produced tables.
const NONE: u8 = u8::MAX;

/// At most this many dense module/region indices are tracked; a
/// constraints file larger than this disables residency tracking (the
/// exploration still runs for deadlock).
const MAX_TRACKED: usize = 250;

/// Distinct defect sites reported per code before further witnesses of
/// that code are dropped (they would restate the same root cause).
pub const MAX_WITNESSES_PER_CODE: usize = 16;

/// Schedule steps rendered into a diagnostic's notes before eliding;
/// [`Witness::schedule`] always carries the full schedule.
const MAX_RENDERED_STEPS: usize = 24;

/// Tuning knobs for the explorer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelConfig {
    /// Distinct states explored before giving up with PDR017.
    pub max_states: usize,
    /// Apply the ample-set partial-order reduction (disable only to
    /// measure the reduction factor).
    pub por: bool,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            max_states: 1 << 20,
            por: true,
        }
    }
}

impl ModelConfig {
    /// Override the state budget.
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }

    /// Disable the partial-order reduction.
    pub fn without_por(mut self) -> Self {
        self.por = false;
        self
    }
}

/// Everything the explorer looks at. `pairs` must come from a rendezvous
/// pass with no errors (as [`crate::lint_ir`] guarantees); constraints
/// are optional — without them only deadlock and reachability are
/// checked.
pub struct ModelInput<'a> {
    /// The lowered executive.
    pub ir: &'a IrExecutive,
    /// Symbol table resolving its interned names.
    pub table: &'a SymbolTable,
    /// Matched rendezvous pairs.
    pub pairs: &'a [RendezvousPair],
    /// §4 constraints — enables residency tracking (PDR013/PDR014).
    pub constraints: Option<&'a ConstraintsFile>,
}

/// One step of a schedule witness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// A local instruction of one stream fires.
    Local {
        /// Stream index.
        stream: usize,
        /// Instruction index within the stream.
        index: usize,
    },
    /// A matched rendezvous completes, advancing both streams.
    Rendezvous {
        /// The completed pair.
        pair: RendezvousPair,
    },
}

/// What a witness demonstrates, in stream/instruction coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WitnessDetail {
    /// PDR004: the schedule ends in a state with no enabled transition;
    /// these streams are stuck at these instruction indices.
    Deadlock {
        /// `(stream, pc)` per unfinished stream.
        stuck: Vec<(usize, usize)>,
    },
    /// PDR013: at the schedule's final state, the `Configure` at
    /// `configure` and the `Compute` at `compute` are both enabled, and
    /// the computed module is resident on the configured region.
    Race {
        /// `(stream, index)` of the racing `Configure`.
        configure: (usize, usize),
        /// `(stream, index)` of the racing `Compute`.
        compute: (usize, usize),
        /// The module being computed (and currently resident).
        module: ModuleId,
        /// The raced region's name.
        region: String,
    },
    /// PDR014: the schedule's final step is a rendezvous whose sender
    /// hands off data produced by `producer`, whose region no longer
    /// holds it.
    StaleData {
        /// `(stream, index)` of the `Send`.
        send: (usize, usize),
        /// The module that produced the handed-off data.
        producer: ModuleId,
        /// The region that was reconfigured away from it.
        region: String,
    },
}

/// A concrete counterexample: a minimal-length schedule (BFS order)
/// reaching the defect, plus what the defect is. Replay it with
/// [`crate::replay::replay_witness`] and corroborate it against the
/// timed simulator with [`crate::replay::confirm_in_sim`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// The code this witness supports.
    pub code: Code,
    /// The schedule from the initial state to the defect.
    pub schedule: Vec<Step>,
    /// The defect demonstrated at the schedule's end.
    pub detail: WitnessDetail,
}

/// Exploration statistics (what `bench_model` reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModelStats {
    /// Distinct states visited.
    pub states: u64,
    /// Transitions applied (edges of the explored graph).
    pub transitions: u64,
    /// Did the state budget cut the exploration short?
    pub truncated: bool,
}

/// The checker's full result. [`crate::lint_ir`] folds `diagnostics`
/// into the report; benches and tests also read `stats`/`witnesses`.
#[derive(Debug, Clone)]
pub struct ModelOutcome {
    /// Findings, in deterministic order.
    pub diagnostics: Vec<Diagnostic>,
    /// Exploration statistics.
    pub stats: ModelStats,
    /// One replayable witness per PDR004/PDR013/PDR014 finding, in the
    /// same order as their diagnostics.
    pub witnesses: Vec<Witness>,
}

/// Dense per-instruction classification, precomputed once.
#[derive(Debug, Clone, Copy)]
enum Action {
    /// Invisible local instruction (static compute, untracked configure).
    Local,
    /// Compute of a tracked dynamic module: sets the stream's produced
    /// datum. Visible.
    ComputeTracked { module: u8 },
    /// Configure of a tracked module: rewrites its region's residency.
    /// Visible.
    ConfigureTracked { module: u8, region: u8 },
    /// Send side of a matched rendezvous (fires the pair when the peer
    /// is co-positioned). Visible only while carrying a tracked datum.
    Send { pair: u32 },
    /// Receive side of a matched rendezvous (fired from the send side),
    /// or an unpaired communication: never fires by itself.
    Wait,
}

/// One interleaving state.
#[derive(Clone, PartialEq, Eq)]
struct State {
    pcs: Vec<u32>,
    resident: Vec<u8>,
    produced: Vec<u8>,
}

impl State {
    fn pack(&self, buf: &mut Vec<u8>) {
        buf.clear();
        for pc in &self.pcs {
            buf.extend_from_slice(&pc.to_le_bytes());
        }
        buf.extend_from_slice(&self.resident);
        buf.extend_from_slice(&self.produced);
    }
}

/// The tracked-module universe derived from the constraints file.
struct Tracked {
    /// Dense module index -> interned symbol.
    modules: Vec<ModuleId>,
    /// Dense module index -> dense region index.
    region_of: Vec<u8>,
    /// Dense region index -> region name.
    regions: Vec<String>,
    /// Reverse map for classification.
    module_ix: HashMap<ModuleId, u8>,
}

impl Tracked {
    fn build(table: &SymbolTable, constraints: Option<&ConstraintsFile>) -> Tracked {
        let mut t = Tracked {
            modules: Vec::new(),
            region_of: Vec::new(),
            regions: Vec::new(),
            module_ix: HashMap::new(),
        };
        let Some(cons) = constraints else { return t };
        if cons.modules().len() > MAX_TRACKED {
            return t;
        }
        let mut region_ix: HashMap<&str, u8> = HashMap::new();
        for mc in cons.modules() {
            // A module name the executive never interned cannot appear in
            // any instruction; skip it.
            let Some(sym) = table.lookup(&mc.module) else {
                continue;
            };
            let region = *region_ix.entry(mc.region.as_str()).or_insert_with(|| {
                t.regions.push(mc.region.clone());
                (t.regions.len() - 1) as u8
            });
            let ix = t.modules.len() as u8;
            t.modules.push(ModuleId::new(sym));
            t.region_of.push(region);
            t.module_ix.insert(ModuleId::new(sym), ix);
        }
        t
    }
}

/// An enabled transition at some state.
#[derive(Debug, Clone, Copy)]
struct Trans {
    step: Step,
    action: Action,
    stream: usize,
}

struct Explorer<'a> {
    ir: &'a IrExecutive,
    pairs: &'a [RendezvousPair],
    actions: Vec<Vec<Action>>,
    tracked: Tracked,
    config: ModelConfig,
    /// `(parent node, incoming step)` per visited state; the root's
    /// parent is `u32::MAX`.
    nodes: Vec<(u32, Step)>,
    executed: Vec<Vec<bool>>,
    stats: ModelStats,
}

impl<'a> Explorer<'a> {
    fn new(input: &ModelInput<'a>, config: ModelConfig) -> Explorer<'a> {
        let ir = input.ir;
        let tracked = Tracked::build(input.table, input.constraints);
        // Send-side endpoint of every pair, for classification. A pair
        // with out-of-range receive coordinates (possible only when a
        // caller hands in pairs that did not come from the rendezvous
        // pass) is dropped: its send side then classifies as `Wait`,
        // i.e. permanently blocked, instead of indexing out of bounds.
        let mut send_at: HashMap<(usize, usize), u32> = HashMap::new();
        for (k, p) in input.pairs.iter().enumerate() {
            let recv_valid =
                p.recv_stream < ir.operator_count() && p.recv_idx < ir.program(p.recv_stream).len();
            if recv_valid {
                send_at.insert((p.send_stream, p.send_idx), k as u32);
            }
        }
        let mut actions = Vec::with_capacity(ir.operator_count());
        for stream in 0..ir.operator_count() {
            let mut list = Vec::with_capacity(ir.program(stream).len());
            for (index, instr) in ir.program(stream).iter().enumerate() {
                let action = match instr {
                    IrInstr::Compute { function, .. } => match tracked.module_ix.get(function) {
                        Some(&m) => Action::ComputeTracked { module: m },
                        None => Action::Local,
                    },
                    IrInstr::Configure { module, .. } => match tracked.module_ix.get(module) {
                        Some(&m) => Action::ConfigureTracked {
                            module: m,
                            region: tracked.region_of[m as usize],
                        },
                        None => Action::Local,
                    },
                    IrInstr::Send { .. } => match send_at.get(&(stream, index)) {
                        Some(&pair) => Action::Send { pair },
                        None => Action::Wait,
                    },
                    IrInstr::Receive { .. } => Action::Wait,
                };
                list.push(action);
            }
            actions.push(list);
        }
        let executed = (0..ir.operator_count())
            .map(|s| vec![false; ir.program(s).len()])
            .collect();
        Explorer {
            ir,
            pairs: input.pairs,
            actions,
            tracked,
            config,
            nodes: Vec::new(),
            executed,
            stats: ModelStats::default(),
        }
    }

    fn initial(&self) -> State {
        State {
            pcs: vec![0; self.ir.operator_count()],
            resident: vec![NONE; self.tracked.regions.len()],
            produced: vec![NONE; self.ir.operator_count()],
        }
    }

    /// All enabled transitions at `state`, in stream order (rendezvous
    /// enumerated at their send side).
    fn enabled(&self, state: &State) -> Vec<Trans> {
        let mut out = Vec::new();
        for stream in 0..self.ir.operator_count() {
            let pc = state.pcs[stream] as usize;
            if pc >= self.actions[stream].len() {
                continue;
            }
            let action = self.actions[stream][pc];
            match action {
                Action::Wait => {}
                Action::Send { pair } => {
                    let p = self.pairs[pair as usize];
                    if state.pcs[p.recv_stream] as usize == p.recv_idx {
                        out.push(Trans {
                            step: Step::Rendezvous { pair: p },
                            action,
                            stream,
                        });
                    }
                }
                _ => out.push(Trans {
                    step: Step::Local { stream, index: pc },
                    action,
                    stream,
                }),
            }
        }
        out
    }

    /// Is `t` invisible to every checked predicate at `state`?
    fn invisible(&self, state: &State, t: &Trans) -> bool {
        match t.action {
            Action::Local => true,
            Action::Send { .. } => state.produced[t.stream] == NONE,
            _ => false,
        }
    }

    /// Apply `t`; the defect hook reports a stale hand-off (PDR014).
    fn apply(&mut self, state: &State, t: &Trans) -> (State, Option<(usize, usize, u8)>) {
        let mut next = state.clone();
        let mut stale = None;
        match t.step {
            Step::Local { stream, index } => {
                self.executed[stream][index] = true;
                next.pcs[stream] += 1;
                match t.action {
                    Action::ComputeTracked { module } => next.produced[stream] = module,
                    Action::ConfigureTracked { module, region } => {
                        next.resident[region as usize] = module;
                    }
                    _ => {}
                }
            }
            Step::Rendezvous { pair } => {
                self.executed[pair.send_stream][pair.send_idx] = true;
                self.executed[pair.recv_stream][pair.recv_idx] = true;
                next.pcs[pair.send_stream] += 1;
                next.pcs[pair.recv_stream] += 1;
                let produced = state.produced[pair.send_stream];
                if produced != NONE {
                    let region = self.tracked.region_of[produced as usize] as usize;
                    if next.resident[region] != produced {
                        stale = Some((pair.send_stream, pair.send_idx, produced));
                    }
                    next.produced[pair.send_stream] = NONE;
                }
            }
        }
        self.stats.transitions += 1;
        (next, stale)
    }

    /// Reconstruct the schedule from the root to `node`.
    fn schedule_to(&self, node: u32) -> Vec<Step> {
        let mut steps = Vec::new();
        let mut cur = node;
        while cur != u32::MAX {
            let (parent, step) = self.nodes[cur as usize];
            if parent == u32::MAX {
                break;
            }
            steps.push(step);
            cur = parent;
        }
        steps.reverse();
        steps
    }
}

/// Run the explorer and report PDR004, PDR013, PDR014, PDR016, PDR017.
pub fn check(input: &ModelInput<'_>, config: &ModelConfig) -> ModelOutcome {
    let mut ex = Explorer::new(input, *config);
    let mut seen: HashMap<Vec<u8>, u32> = HashMap::new();
    let mut queue: VecDeque<(u32, State)> = VecDeque::new();
    let mut key = Vec::new();

    let root = ex.initial();
    root.pack(&mut key);
    seen.insert(key.clone(), 0);
    ex.nodes.push((
        u32::MAX,
        Step::Local {
            stream: 0,
            index: 0,
        },
    ));
    queue.push_back((0, root));

    let mut deadlock: Option<Witness> = None;
    let mut races: BTreeMap<(usize, usize, usize, usize), Witness> = BTreeMap::new();
    let mut stales: BTreeMap<(usize, usize, u8), Witness> = BTreeMap::new();

    while let Some((node, state)) = queue.pop_front() {
        let enabled = ex.enabled(&state);

        // PDR004: terminal state with unfinished streams.
        if enabled.is_empty() {
            let stuck: Vec<(usize, usize)> = state
                .pcs
                .iter()
                .enumerate()
                .filter(|&(s, &pc)| (pc as usize) < ex.ir.program(s).len())
                .map(|(s, &pc)| (s, pc as usize))
                .collect();
            if !stuck.is_empty() && deadlock.is_none() {
                deadlock = Some(Witness {
                    code: Code::Deadlock,
                    schedule: ex.schedule_to(node),
                    detail: WitnessDetail::Deadlock { stuck },
                });
            }
            continue;
        }

        // PDR013: a Configure co-enabled with a Compute of the module its
        // target region currently holds, on different streams.
        for c in &enabled {
            let Action::ConfigureTracked { region, .. } = c.action else {
                continue;
            };
            for w in &enabled {
                let Action::ComputeTracked { module } = w.action else {
                    continue;
                };
                if w.stream == c.stream
                    || ex.tracked.region_of[module as usize] != region
                    || state.resident[region as usize] != module
                {
                    continue;
                }
                let (ci, wi) = (state.pcs[c.stream] as usize, state.pcs[w.stream] as usize);
                let site = (c.stream, ci, w.stream, wi);
                if races.len() < MAX_WITNESSES_PER_CODE && !races.contains_key(&site) {
                    races.insert(
                        site,
                        Witness {
                            code: Code::ReconfigRace,
                            schedule: ex.schedule_to(node),
                            detail: WitnessDetail::Race {
                                configure: (c.stream, ci),
                                compute: (w.stream, wi),
                                module: ex.tracked.modules[module as usize],
                                region: ex.tracked.regions[region as usize].clone(),
                            },
                        },
                    );
                }
            }
        }

        // Ample set: expand one invisible transition when possible.
        let ample: Vec<Trans> = if ex.config.por {
            match enabled.iter().find(|t| ex.invisible(&state, t)) {
                Some(t) => vec![*t],
                None => enabled,
            }
        } else {
            enabled
        };

        for t in &ample {
            let (next, stale) = ex.apply(&state, t);
            if let Some((send_stream, send_idx, produced)) = stale {
                let site = (send_stream, send_idx, produced);
                if stales.len() < MAX_WITNESSES_PER_CODE && !stales.contains_key(&site) {
                    let mut schedule = ex.schedule_to(node);
                    schedule.push(t.step);
                    stales.insert(
                        site,
                        Witness {
                            code: Code::UseAfterReconfigure,
                            schedule,
                            detail: WitnessDetail::StaleData {
                                send: (send_stream, send_idx),
                                producer: ex.tracked.modules[produced as usize],
                                region: ex.tracked.regions
                                    [ex.tracked.region_of[produced as usize] as usize]
                                    .clone(),
                            },
                        },
                    );
                }
            }
            next.pack(&mut key);
            if seen.contains_key(&key) {
                continue;
            }
            if ex.nodes.len() >= ex.config.max_states {
                ex.stats.truncated = true;
                continue;
            }
            let id = ex.nodes.len() as u32;
            seen.insert(key.clone(), id);
            ex.nodes.push((node, t.step));
            queue.push_back((id, next));
        }
    }

    ex.stats.states = ex.nodes.len() as u64;

    // Assemble diagnostics + witnesses in deterministic order.
    let mut diagnostics = Vec::new();
    let mut witnesses = Vec::new();
    if let Some(w) = deadlock {
        diagnostics.push(render_deadlock(ex.ir, input.table, ex.pairs, &w));
        witnesses.push(w);
    }
    for w in races.into_values() {
        diagnostics.push(render_race(ex.ir, input.table, &w));
        witnesses.push(w);
    }
    for w in stales.into_values() {
        diagnostics.push(render_stale(ex.ir, input.table, &w));
        witnesses.push(w);
    }
    if !ex.stats.truncated {
        diagnostics.extend(unreachable_instrs(ex.ir, input.table, &ex.executed));
    } else {
        diagnostics.push(Diagnostic::new(
            Code::StateBudgetExceeded,
            format!(
                "state budget exhausted: {} states explored (budget {}); \
                 findings above are sound but the exploration is incomplete",
                ex.nodes.len(),
                ex.config.max_states
            ),
        ));
    }

    ModelOutcome {
        diagnostics,
        stats: ex.stats,
        witnesses,
    }
}

/// PDR016: instructions no explored interleaving ever executed. Only
/// meaningful on a complete exploration; one finding per stream, at the
/// first dead instruction.
fn unreachable_instrs(
    ir: &IrExecutive,
    table: &SymbolTable,
    executed: &[Vec<bool>],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (stream, marks) in executed.iter().enumerate() {
        let Some(first) = marks.iter().position(|&e| !e) else {
            continue;
        };
        let dead = marks.len() - first;
        let operator = ir.operator_sym(stream).resolve(table);
        out.push(
            Diagnostic::new(
                Code::UnreachableInstr,
                format!(
                    "{dead} instruction{} of `{operator}` can never execute \
                     in any interleaving (dead macro-code behind a blocked \
                     rendezvous)",
                    if dead == 1 { "" } else { "s" }
                ),
            )
            .at(Location::instr(operator, first)),
        );
    }
    out
}

/// Render one schedule step for a witness trace note.
fn render_step(ir: &IrExecutive, table: &SymbolTable, step: &Step) -> String {
    match step {
        Step::Local { stream, index } => {
            let op = ir.operator_sym(*stream).resolve(table);
            match ir.program(*stream).get(*index) {
                Some(IrInstr::Compute { function, .. }) => {
                    format!("{op}[{index}] compute {}", function.resolve(table))
                }
                Some(IrInstr::Configure { module, .. }) => {
                    format!("{op}[{index}] configure {}", module.resolve(table))
                }
                _ => format!("{op}[{index}]"),
            }
        }
        Step::Rendezvous { pair } => {
            let s = ir.operator_sym(pair.send_stream).resolve(table);
            let r = ir.operator_sym(pair.recv_stream).resolve(table);
            format!(
                "rendezvous tag {}: {s}[{}] -> {r}[{}]",
                pair.tag, pair.send_idx, pair.recv_idx
            )
        }
    }
}

/// Append the witness schedule to a diagnostic, eliding long middles.
fn note_schedule(
    mut d: Diagnostic,
    ir: &IrExecutive,
    table: &SymbolTable,
    schedule: &[Step],
) -> Diagnostic {
    d = d.note(format!(
        "witness schedule ({} step{}):",
        schedule.len(),
        if schedule.len() == 1 { "" } else { "s" }
    ));
    for (k, step) in schedule.iter().take(MAX_RENDERED_STEPS).enumerate() {
        d = d.note(format!("  {k}: {}", render_step(ir, table, step)));
    }
    if schedule.len() > MAX_RENDERED_STEPS {
        d = d.note(format!(
            "  … {} more steps elided",
            schedule.len() - MAX_RENDERED_STEPS
        ));
    }
    d
}

fn render_deadlock(
    ir: &IrExecutive,
    table: &SymbolTable,
    pairs: &[RendezvousPair],
    w: &Witness,
) -> Diagnostic {
    let WitnessDetail::Deadlock { stuck } = &w.detail else {
        unreachable!("deadlock witness carries deadlock detail");
    };
    let peer_of: BTreeMap<(usize, usize), &RendezvousPair> = pairs
        .iter()
        .flat_map(|p| {
            [
                ((p.send_stream, p.send_idx), p),
                ((p.recv_stream, p.recv_idx), p),
            ]
        })
        .collect();
    let op = |s: usize| ir.operator_sym(s).resolve(table);
    let names: Vec<&str> = stuck.iter().map(|&(s, _)| op(s)).collect();
    let (s0, i0) = stuck[0];
    let mut d = Diagnostic::new(
        Code::Deadlock,
        format!(
            "deadlock: {} operator{} can never finish in any interleaving \
             ({})",
            stuck.len(),
            if stuck.len() == 1 { "" } else { "s" },
            names.join(", "),
        ),
    )
    .at(Location::instr(op(s0), i0));
    for &(stream, idx) in stuck {
        let (verb, tag) = match ir.program(stream).get(idx) {
            Some(IrInstr::Send { tag, .. }) => ("send", Some(*tag)),
            Some(IrInstr::Receive { tag, .. }) => ("receive", Some(*tag)),
            _ => ("instruction", None),
        };
        let name = op(stream);
        let mut line = match tag {
            Some(tag) => format!("{name}[{idx}] blocks on {verb} tag {tag}"),
            None => format!("{name}[{idx}] blocks on {verb}"),
        };
        if let Some(p) = peer_of.get(&(stream, idx)) {
            let (peer, pidx) = if p.send_stream == stream {
                (p.recv_stream, p.recv_idx)
            } else {
                (p.send_stream, p.send_idx)
            };
            line.push_str(&format!(", waiting for {}[{pidx}]", op(peer)));
        }
        d = d.note(line);
    }
    note_schedule(d, ir, table, &w.schedule)
}

fn render_race(ir: &IrExecutive, table: &SymbolTable, w: &Witness) -> Diagnostic {
    let WitnessDetail::Race {
        configure,
        compute,
        module,
        region,
    } = &w.detail
    else {
        unreachable!("race witness carries race detail");
    };
    let cfg_op = ir.operator_sym(configure.0).resolve(table);
    let cmp_op = ir.operator_sym(compute.0).resolve(table);
    let cfg_target = match ir.program(configure.0).get(configure.1) {
        Some(IrInstr::Configure { module, .. }) => module.resolve(table),
        _ => "?",
    };
    let module = module.resolve(table);
    let d = Diagnostic::new(
        Code::ReconfigRace,
        format!(
            "reconfiguration race: configure of `{cfg_target}` at \
             {cfg_op}[{}] can interleave with the compute of `{module}` at \
             {cmp_op}[{}] while region `{region}` holds `{module}` — the \
             fabric can be rewritten mid-computation",
            configure.1, compute.1
        ),
    )
    .at(Location::instr(cfg_op, configure.1))
    .note(
        "both instructions are enabled after the witness schedule below; \
         no rendezvous orders the configure after the compute",
    );
    note_schedule(d, ir, table, &w.schedule)
}

fn render_stale(ir: &IrExecutive, table: &SymbolTable, w: &Witness) -> Diagnostic {
    let WitnessDetail::StaleData {
        send,
        producer,
        region,
    } = &w.detail
    else {
        unreachable!("stale witness carries stale detail");
    };
    let op = ir.operator_sym(send.0).resolve(table);
    let producer = producer.resolve(table);
    let d = Diagnostic::new(
        Code::UseAfterReconfigure,
        format!(
            "use-after-reconfigure: the send at {op}[{}] hands off data \
             produced by `{producer}` after region `{region}` was \
             reconfigured away from it in some interleaving",
            send.1
        ),
    )
    .at(Location::instr(op, send.1));
    note_schedule(d, ir, table, &w.schedule)
}

// ---------------------------------------------------------------- timing

/// PDR015: `[best, worst]`-clock abstract interpretation against the §4
/// `deadline_us` constraints.
///
/// Clocks advance along the executive's happens-before structure (the
/// fixpoint co-advance is sound because the semantics is confluent):
/// `Compute` adds its characterized duration to both clocks, `Configure`
/// adds its worst-case time to the upper clock only (§4 prefetching can
/// hide a reconfiguration completely, so the lower bound is zero), and a
/// rendezvous joins both sides with `max` plus the medium's transfer
/// time. A deadlined module's compute that cannot meet its deadline even
/// in the best case is an error; one that misses it only in the worst
/// case is a warning.
pub fn check_timing(
    ir: &IrExecutive,
    table: &SymbolTable,
    pairs: &[RendezvousPair],
    arch: &ArchGraph,
    constraints: &ConstraintsFile,
) -> Vec<Diagnostic> {
    let deadlines: BTreeMap<&str, TimePs> = constraints
        .modules()
        .iter()
        .filter_map(|mc| {
            mc.deadline_us
                .map(|us| (mc.module.as_str(), TimePs::from_us(us)))
        })
        .collect();
    if deadlines.is_empty() {
        return Vec::new();
    }

    let media: HashMap<&str, TimePs> = {
        let mut m = HashMap::new();
        for p in pairs {
            if let Some(IrInstr::Send { medium, bits, .. }) =
                ir.program(p.send_stream).get(p.send_idx)
            {
                let name = ir.medium_sym(*medium).resolve(table);
                let time = arch
                    .media()
                    .find(|(_, med)| med.name == name)
                    .map(|(_, med)| med.transfer_time(*bits))
                    .unwrap_or(TimePs::ZERO);
                m.insert(name, time);
            }
        }
        m
    };
    let transfer = |p: &RendezvousPair| -> TimePs {
        match ir.program(p.send_stream).get(p.send_idx) {
            Some(IrInstr::Send { medium, .. }) => media
                .get(ir.medium_sym(*medium).resolve(table))
                .copied()
                .unwrap_or(TimePs::ZERO),
            _ => TimePs::ZERO,
        }
    };

    let streams = ir.operator_count();
    let mut pc = vec![0usize; streams];
    let mut best = vec![TimePs::ZERO; streams];
    let mut worst = vec![TimePs::ZERO; streams];
    let mut diagnostics = Vec::new();
    let mut reported: BTreeSet<(usize, usize)> = BTreeSet::new();

    loop {
        let mut progressed = false;
        for stream in 0..streams {
            let program = ir.program(stream);
            while pc[stream] < program.len() && !program[pc[stream]].is_comm() {
                match &program[pc[stream]] {
                    IrInstr::Compute {
                        function, duration, ..
                    } => {
                        let (eb, ew) = (best[stream] + *duration, worst[stream] + *duration);
                        let name = function.resolve(table);
                        if let Some(&deadline) = deadlines.get(name) {
                            if eb > deadline && reported.insert((stream, pc[stream])) {
                                let operator = ir.operator_sym(stream).resolve(table);
                                diagnostics.push(
                                    Diagnostic::new(
                                        Code::TimingViolation,
                                        format!(
                                            "compute of `{name}` finishes at {eb} at the \
                                             earliest — past its §4 deadline of {deadline}"
                                        ),
                                    )
                                    .at(Location::instr(operator, pc[stream]))
                                    .note(format!("completion clock interval: [{eb}, {ew}]")),
                                );
                            } else if ew > deadline && reported.insert((stream, pc[stream])) {
                                let operator = ir.operator_sym(stream).resolve(table);
                                diagnostics.push(
                                    Diagnostic::new(
                                        Code::TimingViolation,
                                        format!(
                                            "compute of `{name}` can finish as late as {ew}, \
                                             past its §4 deadline of {deadline} (best case \
                                             {eb} meets it)"
                                        ),
                                    )
                                    .with_severity(crate::diag::Severity::Warning)
                                    .at(Location::instr(operator, pc[stream]))
                                    .note(format!("completion clock interval: [{eb}, {ew}]"))
                                    .note(
                                        "worst case counts every reconfiguration at its \
                                         carried worst-case time; best case assumes §4 \
                                         prefetching hides them all",
                                    ),
                                );
                            }
                        }
                        best[stream] = eb;
                        worst[stream] = ew;
                    }
                    IrInstr::Configure { worst_case, .. } => {
                        worst[stream] += *worst_case;
                    }
                    _ => unreachable!("is_comm filtered"),
                }
                pc[stream] += 1;
                progressed = true;
            }
        }
        for p in pairs {
            if pc[p.send_stream] == p.send_idx && pc[p.recv_stream] == p.recv_idx {
                let t = transfer(p);
                let eb = best[p.send_stream].max(best[p.recv_stream]) + t;
                let ew = worst[p.send_stream].max(worst[p.recv_stream]) + t;
                best[p.send_stream] = eb;
                best[p.recv_stream] = eb;
                worst[p.send_stream] = ew;
                worst[p.recv_stream] = ew;
                pc[p.send_stream] += 1;
                pc[p.recv_stream] += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    diagnostics
}

/// Convenience for `lint_ir`: everything the model layer contributes.
pub(crate) fn run_for_lint(
    ir: &IrExecutive,
    table: &SymbolTable,
    pairs: &[RendezvousPair],
    arch: Option<&ArchGraph>,
    _chars: Option<&Characterization>,
    constraints: Option<&ConstraintsFile>,
    config: &ModelConfig,
) -> Vec<Diagnostic> {
    let input = ModelInput {
        ir,
        table,
        pairs,
        constraints,
    };
    let mut diagnostics = check(&input, config).diagnostics;
    if let (Some(arch), Some(constraints)) = (arch, constraints) {
        diagnostics.extend(check_timing(ir, table, pairs, arch, constraints));
    }
    diagnostics
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rendezvous;
    use pdr_ir::IrBuilder;

    fn pairs_of(ir: &IrExecutive, table: &SymbolTable) -> Vec<RendezvousPair> {
        let r = rendezvous::check(ir, table);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        r.pairs
    }

    fn run(ir: &IrExecutive, table: &SymbolTable, cons: Option<&ConstraintsFile>) -> ModelOutcome {
        let pairs = pairs_of(ir, table);
        check(
            &ModelInput {
                ir,
                table,
                pairs: &pairs,
                constraints: cons,
            },
            &ModelConfig::default(),
        )
    }

    fn cons_two_regions() -> ConstraintsFile {
        let mut f = ConstraintsFile::new();
        f.add(pdr_graph::constraints::ModuleConstraints::new(
            "mod_a", "d1",
        ))
        .unwrap();
        f.add(pdr_graph::constraints::ModuleConstraints::new(
            "mod_b", "d2",
        ))
        .unwrap();
        f
    }

    #[test]
    fn straight_pipeline_is_clean_and_small() {
        let mut table = SymbolTable::new();
        let ir = {
            let mut b = IrBuilder::new(&mut table);
            b.begin_operator("a");
            b.compute("x", "f", TimePs::from_us(1));
            b.send("b", "m", 8, 1);
            b.begin_operator("b");
            b.receive("a", "m", 8, 1);
            b.compute("y", "g", TimePs::from_us(1));
            b.finish()
        };
        let out = run(&ir, &table, None);
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
        assert!(!out.stats.truncated);
        assert!(out.stats.states >= 2);
    }

    #[test]
    fn crossed_waits_deadlock_with_minimal_schedule() {
        let mut table = SymbolTable::new();
        let ir = {
            let mut b = IrBuilder::new(&mut table);
            b.begin_operator("a");
            b.send("b", "m", 8, 1);
            b.receive("b", "m", 8, 2);
            b.begin_operator("b");
            b.send("a", "m", 8, 2);
            b.receive("a", "m", 8, 1);
            b.finish()
        };
        let out = run(&ir, &table, None);
        assert_eq!(out.witnesses.len(), 1);
        let w = &out.witnesses[0];
        assert_eq!(w.code, Code::Deadlock);
        // The initial state already deadlocks: minimal schedule is empty.
        assert!(w.schedule.is_empty(), "{:?}", w.schedule);
        let WitnessDetail::Deadlock { stuck } = &w.detail else {
            panic!("deadlock detail");
        };
        assert_eq!(stuck.len(), 2);
        let d = &out.diagnostics[0];
        assert_eq!(d.code, Code::Deadlock);
        assert!(d.notes.iter().any(|n| n.contains("blocks on")), "{d}");
        // PDR016 rides along: the dead instructions behind the deadlock.
        assert!(out
            .diagnostics
            .iter()
            .any(|d| d.code == Code::UnreachableInstr));
    }

    #[test]
    fn reorder_dependent_race_is_found_with_witness() {
        // d1 computes mod_a (resident); a *different* stream configures
        // mod_a concurrently — no rendezvous orders them.
        let mut table = SymbolTable::new();
        let ir = {
            let mut b = IrBuilder::new(&mut table);
            b.begin_operator("ctl");
            b.configure("mod_a", TimePs::from_ms(4));
            b.begin_operator("d1");
            b.configure("mod_a", TimePs::from_ms(4));
            b.compute("eq", "mod_a", TimePs::from_us(1));
            b.finish()
        };
        let cons = cons_two_regions();
        let out = run(&ir, &table, Some(&cons));
        let races: Vec<_> = out
            .witnesses
            .iter()
            .filter(|w| w.code == Code::ReconfigRace)
            .collect();
        assert_eq!(races.len(), 1, "{:?}", out.diagnostics);
        let WitnessDetail::Race { region, .. } = &races[0].detail else {
            panic!("race detail");
        };
        assert_eq!(region, "d1");
    }

    #[test]
    fn sequential_use_after_reconfigure_is_found() {
        // d1 computes mod_a, reconfigures to mod_c on the same region,
        // then sends the (now stale) result.
        let mut f = ConstraintsFile::new();
        f.add(pdr_graph::constraints::ModuleConstraints::new(
            "mod_a", "d1",
        ))
        .unwrap();
        f.add(pdr_graph::constraints::ModuleConstraints::new(
            "mod_c", "d1",
        ))
        .unwrap();
        let mut table = SymbolTable::new();
        let ir = {
            let mut b = IrBuilder::new(&mut table);
            b.begin_operator("d1");
            b.configure("mod_a", TimePs::from_ms(4));
            b.compute("eq", "mod_a", TimePs::from_us(1));
            b.configure("mod_c", TimePs::from_ms(4));
            b.send("sink", "m", 8, 1);
            b.begin_operator("sink");
            b.receive("d1", "m", 8, 1);
            b.finish()
        };
        let out = run(&ir, &table, Some(&f));
        let stale: Vec<_> = out
            .witnesses
            .iter()
            .filter(|w| w.code == Code::UseAfterReconfigure)
            .collect();
        assert_eq!(stale.len(), 1, "{:?}", out.diagnostics);
        // The schedule's final step is the stale hand-off itself.
        assert!(matches!(
            stale[0].schedule.last(),
            Some(Step::Rendezvous { .. })
        ));
    }

    #[test]
    fn clean_configure_compute_send_is_clean() {
        let mut f = ConstraintsFile::new();
        f.add(pdr_graph::constraints::ModuleConstraints::new(
            "mod_a", "d1",
        ))
        .unwrap();
        let mut table = SymbolTable::new();
        let ir = {
            let mut b = IrBuilder::new(&mut table);
            b.begin_operator("d1");
            b.configure("mod_a", TimePs::from_ms(4));
            b.compute("eq", "mod_a", TimePs::from_us(1));
            b.send("sink", "m", 8, 1);
            b.begin_operator("sink");
            b.receive("d1", "m", 8, 1);
            b.finish()
        };
        let out = run(&ir, &table, Some(&f));
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
    }

    #[test]
    fn tiny_budget_reports_pdr017() {
        let mut table = SymbolTable::new();
        let ir = {
            let mut b = IrBuilder::new(&mut table);
            b.begin_operator("a");
            for k in 0..8 {
                b.send("b", "m", 8, k);
            }
            b.begin_operator("b");
            for k in 0..8 {
                b.receive("a", "m", 8, k);
            }
            b.finish()
        };
        let pairs = pairs_of(&ir, &table);
        let out = check(
            &ModelInput {
                ir: &ir,
                table: &table,
                pairs: &pairs,
                constraints: None,
            },
            &ModelConfig::default().with_max_states(2),
        );
        assert!(out.stats.truncated);
        assert!(out
            .diagnostics
            .iter()
            .any(|d| d.code == Code::StateBudgetExceeded));
    }

    #[test]
    fn por_and_full_exploration_agree_on_findings() {
        // Same race fixture, with and without reduction: identical codes,
        // strictly fewer states under POR.
        let mut table = SymbolTable::new();
        let ir = {
            let mut b = IrBuilder::new(&mut table);
            b.begin_operator("ctl");
            b.compute("pad0", "soft", TimePs::from_us(1));
            b.configure("mod_a", TimePs::from_ms(4));
            b.begin_operator("d1");
            b.configure("mod_a", TimePs::from_ms(4));
            b.compute("eq", "mod_a", TimePs::from_us(1));
            b.send("sink", "m", 8, 1);
            b.begin_operator("sink");
            b.compute("pad1", "soft", TimePs::from_us(1));
            b.receive("d1", "m", 8, 1);
            b.finish()
        };
        let cons = cons_two_regions();
        let pairs = pairs_of(&ir, &table);
        let input = ModelInput {
            ir: &ir,
            table: &table,
            pairs: &pairs,
            constraints: Some(&cons),
        };
        let with_por = check(&input, &ModelConfig::default());
        let without = check(&input, &ModelConfig::default().without_por());
        let codes = |o: &ModelOutcome| -> Vec<&'static str> {
            let mut v: Vec<_> = o.diagnostics.iter().map(|d| d.code.as_str()).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        assert_eq!(codes(&with_por), codes(&without));
        assert!(with_por.stats.states <= without.stats.states);
    }

    #[test]
    fn timing_deadline_violations_split_error_and_warning() {
        let mut arch = ArchGraph::new("t");
        arch.add_operator("d1", pdr_graph::OperatorKind::FpgaStatic)
            .unwrap();
        let mut f = ConstraintsFile::new();
        let mut mc = pdr_graph::constraints::ModuleConstraints::new("mod_a", "d1");
        mc.deadline_us = Some(10);
        f.add(mc).unwrap();

        // Worst case misses (configure 4 ms), best case meets: warning.
        let mut table = SymbolTable::new();
        let ir = {
            let mut b = IrBuilder::new(&mut table);
            b.begin_operator("d1");
            b.configure("mod_a", TimePs::from_ms(4));
            b.compute("eq", "mod_a", TimePs::from_us(1));
            b.finish()
        };
        let ds = check_timing(&ir, &table, &[], &arch, &f);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, Code::TimingViolation);
        assert_eq!(ds[0].severity, crate::diag::Severity::Warning);

        // Even the best case misses (compute alone 20 us): error.
        let mut table = SymbolTable::new();
        let ir = {
            let mut b = IrBuilder::new(&mut table);
            b.begin_operator("d1");
            b.configure("mod_a", TimePs::from_ms(4));
            b.compute("eq", "mod_a", TimePs::from_us(20));
            b.finish()
        };
        let ds = check_timing(&ir, &table, &[], &arch, &f);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].severity, crate::diag::Severity::Error);

        // No deadline: nothing to check.
        let ds = check_timing(&ir, &table, &[], &arch, &ConstraintsFile::new());
        assert!(ds.is_empty());
    }
}
