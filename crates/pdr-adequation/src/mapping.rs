//! Operation → operator mappings.

use crate::error::AdequationError;
use pdr_graph::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The mapping half of an adequation result: which operator executes each
/// operation (conditioned operations map as a single unit; their
/// alternatives become configurations of that one operator).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    assignments: BTreeMap<OpId, OperatorId>,
}

impl Mapping {
    /// Empty mapping.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assign `op` to `operator` (overwrites).
    pub fn assign(&mut self, op: OpId, operator: OperatorId) {
        self.assignments.insert(op, operator);
    }

    /// Operator executing `op`, if assigned.
    pub fn operator_of(&self, op: OpId) -> Option<OperatorId> {
        self.assignments.get(&op).copied()
    }

    /// Operations assigned to `operator`, in id order.
    pub fn ops_on(&self, operator: OperatorId) -> Vec<OpId> {
        self.assignments
            .iter()
            .filter(|(_, &o)| o == operator)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Number of assignments.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Is the mapping empty?
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Iterate (operation, operator) pairs in operation-id order.
    pub fn iter(&self) -> impl Iterator<Item = (OpId, OperatorId)> + '_ {
        self.assignments.iter().map(|(&a, &b)| (a, b))
    }

    /// Validate a mapping against graphs, characterization and constraints:
    ///
    /// * every operation is assigned;
    /// * every function of the operation is feasible on its operator;
    /// * sources/sinks may sit anywhere (they model interfaces);
    /// * constrained modules sit on their constrained region.
    pub fn validate(
        &self,
        algo: &AlgorithmGraph,
        arch: &ArchGraph,
        chars: &Characterization,
        constraints: &ConstraintsFile,
    ) -> Result<(), AdequationError> {
        for (id, op) in algo.ops() {
            let Some(opr) = self.operator_of(id) else {
                return Err(AdequationError::Unmappable {
                    operation: op.name.clone(),
                    reason: "not assigned".into(),
                });
            };
            let opr_name = &arch.operator(opr).name;
            for f in op.kind.functions() {
                if !chars.feasible(f, opr_name) {
                    return Err(AdequationError::Unmappable {
                        operation: op.name.clone(),
                        reason: format!("function `{f}` infeasible on `{opr_name}`"),
                    });
                }
                if let Some(mc) = constraints.module(f) {
                    if &mc.region != opr_name {
                        return Err(AdequationError::ConstraintConflict(format!(
                            "module `{f}` is constrained to region `{}` but mapped to `{opr_name}`",
                            mc.region
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_graph::paper;

    fn setup() -> (AlgorithmGraph, ArchGraph, Characterization, ConstraintsFile) {
        (
            paper::mccdma_algorithm(),
            paper::sundance_architecture(),
            paper::mccdma_characterization(),
            paper::mccdma_constraints(),
        )
    }

    fn full_mapping(algo: &AlgorithmGraph, arch: &ArchGraph) -> Mapping {
        let fs = arch.operator_by_name("fpga_static").unwrap();
        let dy = arch.operator_by_name("op_dyn").unwrap();
        let mut m = Mapping::new();
        for (id, op) in algo.ops() {
            if op.kind.is_conditioned() {
                m.assign(id, dy);
            } else {
                m.assign(id, fs);
            }
        }
        m
    }

    #[test]
    fn valid_paper_mapping_passes() {
        let (algo, arch, chars, cons) = setup();
        let m = full_mapping(&algo, &arch);
        m.validate(&algo, &arch, &chars, &cons).unwrap();
        assert_eq!(m.len(), algo.len());
    }

    #[test]
    fn missing_assignment_detected() {
        let (algo, arch, chars, cons) = setup();
        let mut m = full_mapping(&algo, &arch);
        m = {
            let mut m2 = Mapping::new();
            for (op, opr) in m.iter().skip(1) {
                m2.assign(op, opr);
            }
            m2
        };
        assert!(m.validate(&algo, &arch, &chars, &cons).is_err());
    }

    #[test]
    fn constraint_conflict_detected() {
        let (algo, arch, chars, cons) = setup();
        let mut m = full_mapping(&algo, &arch);
        // Force modulation onto the static part: constrained to op_dyn.
        let modu = algo.by_name("modulation").unwrap();
        m.assign(modu, arch.operator_by_name("fpga_static").unwrap());
        let err = m.validate(&algo, &arch, &chars, &cons).unwrap_err();
        assert!(matches!(err, AdequationError::ConstraintConflict(_)));
    }

    #[test]
    fn infeasible_function_detected() {
        let (algo, arch, chars, _) = setup();
        let mut m = full_mapping(&algo, &arch);
        // ifft64 is not characterized on op_dyn.
        let ifft = algo.by_name("ifft64").unwrap();
        m.assign(ifft, arch.operator_by_name("op_dyn").unwrap());
        let err = m
            .validate(&algo, &arch, &chars, &ConstraintsFile::new())
            .unwrap_err();
        assert!(err.to_string().contains("infeasible"));
    }

    #[test]
    fn ops_on_lists_assignments() {
        let (algo, arch, ..) = setup();
        let m = full_mapping(&algo, &arch);
        let dy = arch.operator_by_name("op_dyn").unwrap();
        let on_dyn = m.ops_on(dy);
        assert_eq!(on_dyn.len(), 1);
        assert_eq!(algo.op(on_dyn[0]).name, "modulation");
    }
}
