//! Multi-iteration trace scheduling with reconfiguration and prefetching.
//!
//! The algorithm graph is "infinitely repeated" (§3); what distinguishes a
//! runtime-reconfigurable implementation is what happens *between*
//! iterations when a conditioned operation changes alternative: on a dynamic
//! operator the region must be reconfigured before the new alternative can
//! execute. This module schedules a finite window of iterations against a
//! concrete *selector trace* (e.g. the per-OFDM-symbol modulation choices of
//! the paper's §6 system) and produces:
//!
//! * a full [`Schedule`] with `Reconfigure` items inserted where needed;
//! * [`TraceStats`] — reconfiguration counts, region-blocked time, and the
//!   *stall*: latency added to computations because a reconfiguration was on
//!   their critical path. Stall is the quantity the paper's prefetching aims
//!   to minimize.
//!
//! ## Reconfiguration model
//!
//! A reconfiguration is split ([`ReconfigSplit`]) into a **fetch** leg
//! (reading the bitstream from external memory into the protocol builder's
//! staging buffer) and a **load** leg (streaming it through ICAP into the
//! region). Without prefetching, the manager only learns the next
//! configuration when the selector value *arrives at the dynamic block*, and
//! both legs serialize on the region from that instant — the paper's ≈ 4 ms.
//! With prefetching, the manager observes the selector at its *source* (the
//! DSP produces `Select` at iteration start) and begins fetching
//! immediately; only the load leg ever blocks the region, and it starts as
//! soon as both the region is idle and the staging buffer is full.

use crate::error::AdequationError;
use crate::mapping::Mapping;
use crate::schedule::{ItemKind, Schedule, ScheduledItem};
use pdr_fabric::TimePs;
use pdr_graph::constraints::LoadPolicy;
use pdr_graph::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Fetch/load decomposition of a reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReconfigSplit {
    /// External-memory fetch leg (prefetchable).
    pub fetch: TimePs,
    /// Configuration-port load leg (always blocks the region).
    pub load: TimePs,
}

impl ReconfigSplit {
    /// Split a total reconfiguration time: `fetch_fraction` of it is the
    /// memory-fetch leg.
    ///
    /// # Panics
    /// Panics unless `0.0 <= fetch_fraction < 1.0`.
    pub fn from_total(total: TimePs, fetch_fraction: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&fetch_fraction),
            "fetch_fraction must be in [0, 1)"
        );
        let fetch = TimePs::from_ps((total.as_ps() as f64 * fetch_fraction).round() as u64);
        ReconfigSplit {
            fetch,
            load: total - fetch,
        }
    }

    /// Total request-to-ready time when nothing is overlapped.
    pub fn total(&self) -> TimePs {
        self.fetch + self.load
    }
}

/// Options of the trace scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceOptions {
    /// Enable configuration prefetching.
    pub prefetch: bool,
    /// Fraction of each reconfiguration spent on the memory fetch leg.
    /// The paper-calibrated port chain is memory-limited: 0.75 (3 of 4 ms).
    pub fetch_fraction: f64,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            prefetch: true,
            fetch_fraction: 0.75,
        }
    }
}

impl TraceOptions {
    /// The non-prefetching baseline.
    pub fn no_prefetch() -> Self {
        TraceOptions {
            prefetch: false,
            ..Default::default()
        }
    }
}

/// Selector values for one conditioned operation across the window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectorEntry {
    /// The operation producing the selector value (must be a predecessor of
    /// the conditioned operation).
    pub source: OpId,
    /// Alternative index per iteration.
    pub values: Vec<usize>,
}

/// Selector traces for all conditioned operations of the graph.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectorTrace {
    /// Per conditioned operation.
    pub entries: BTreeMap<OpId, SelectorEntry>,
}

impl SelectorTrace {
    /// Build a single-conditioned-op trace (the common case).
    pub fn single(cond: OpId, source: OpId, values: Vec<usize>) -> Self {
        let mut entries = BTreeMap::new();
        entries.insert(cond, SelectorEntry { source, values });
        SelectorTrace { entries }
    }

    /// Window length (zero when empty; all entries must agree, checked by
    /// [`schedule_trace`]).
    pub fn iterations(&self) -> usize {
        self.entries
            .values()
            .map(|e| e.values.len())
            .max()
            .unwrap_or(0)
    }
}

/// Aggregate statistics of a trace schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Iterations scheduled.
    pub iterations: u32,
    /// Reconfigurations performed.
    pub reconfigurations: usize,
    /// Reconfigurations whose fetch leg was fully overlapped.
    pub prefetched: usize,
    /// Total time dynamic regions were blocked by reconfiguration items.
    pub region_blocked: TimePs,
    /// Total latency added to computations by reconfigurations on their
    /// critical path (the prefetching target metric).
    pub stall: TimePs,
    /// End of the last item.
    pub makespan: TimePs,
}

impl TraceStats {
    /// Average iteration period (makespan / iterations).
    pub fn avg_period(&self) -> TimePs {
        if self.iterations == 0 {
            TimePs::ZERO
        } else {
            self.makespan / self.iterations as u64
        }
    }

    /// Iterations per second achieved over the window.
    pub fn throughput_per_sec(&self) -> f64 {
        if self.makespan.is_zero() {
            0.0
        } else {
            self.iterations as f64 / self.makespan.as_secs_f64()
        }
    }
}

/// Output of [`schedule_trace`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceResult {
    /// The multi-iteration schedule.
    pub schedule: Schedule,
    /// Aggregate statistics.
    pub stats: TraceStats,
    /// (iteration, function) pairs in the order configurations were loaded.
    pub load_sequence: Vec<(u32, String)>,
}

/// Schedule `iterations` of `algo` on `arch` under `mapping`, following the
/// selector trace, inserting reconfigurations and (optionally) prefetching.
#[allow(clippy::too_many_arguments)]
pub fn schedule_trace(
    algo: &AlgorithmGraph,
    arch: &ArchGraph,
    chars: &Characterization,
    constraints: &ConstraintsFile,
    mapping: &Mapping,
    selectors: &SelectorTrace,
    options: &TraceOptions,
) -> Result<TraceResult, AdequationError> {
    algo.validate()?;
    mapping.validate(algo, arch, chars, constraints)?;
    let iterations = selectors.iterations();
    // Validate selector entries.
    for (&cond, entry) in &selectors.entries {
        let op = algo.op(cond);
        let n_alt = op.kind.functions().len();
        if !op.kind.is_conditioned() {
            return Err(AdequationError::ConstraintConflict(format!(
                "selector trace given for non-conditioned operation `{}`",
                op.name
            )));
        }
        if entry.values.len() != iterations {
            return Err(AdequationError::ConstraintConflict(format!(
                "selector trace for `{}` has {} values, window is {iterations}",
                op.name,
                entry.values.len()
            )));
        }
        if !algo.predecessors(cond).contains(&entry.source) {
            return Err(AdequationError::ConstraintConflict(format!(
                "selector source `{}` is not a predecessor of `{}`",
                algo.op(entry.source).name,
                op.name
            )));
        }
        if let Some(&v) = entry.values.iter().find(|&&v| v >= n_alt) {
            return Err(AdequationError::BadSelector {
                operation: op.name.clone(),
                value: v,
                alternatives: n_alt,
            });
        }
    }
    // Every conditioned op on a dynamic operator needs a trace.
    for cond in algo.conditioned_ops() {
        let opr = mapping.operator_of(cond).expect("validated mapping");
        if arch.operator(opr).kind.is_dynamic() && !selectors.entries.contains_key(&cond) {
            return Err(AdequationError::ConstraintConflict(format!(
                "conditioned operation `{}` is on a dynamic operator but has no selector trace",
                algo.op(cond).name
            )));
        }
    }

    let order = algo.topo_order()?;
    // All-pairs route table, computed once instead of one BFS per edge per
    // iteration (routes_from yields routes identical to pairwise queries).
    let routes: Vec<Vec<Option<Route>>> = arch
        .operators()
        .map(|(from, _)| arch.routes_from(from))
        .collect();
    let mut schedule = Schedule::new();
    let mut operator_free: HashMap<OperatorId, TimePs> = HashMap::new();
    let mut medium_free: HashMap<MediumId, TimePs> = HashMap::new();
    // Currently loaded configuration per dynamic operator.
    let mut loaded: HashMap<OperatorId, Option<String>> = HashMap::new();
    for (id, o) in arch.operators() {
        if o.kind.is_dynamic() {
            // LoadPolicy::AtStart modules are resident from power-up.
            let preloaded = constraints
                .modules_in_region(&o.name)
                .into_iter()
                .find(|m| m.load == LoadPolicy::AtStart)
                .map(|m| m.module.clone());
            loaded.insert(id, preloaded);
        }
    }

    let mut stats = TraceStats {
        iterations: iterations as u32,
        reconfigurations: 0,
        prefetched: 0,
        region_blocked: TimePs::ZERO,
        stall: TimePs::ZERO,
        makespan: TimePs::ZERO,
    };
    let mut load_sequence = Vec::new();
    let mut finish: HashMap<(u32, OpId), TimePs> = HashMap::new();

    for it in 0..iterations as u32 {
        for &id in &order {
            let op = algo.op(id);
            let opr = mapping.operator_of(id).expect("validated mapping");
            let opr_name = arch.operator(opr).name.clone();

            // Active function this iteration.
            let function: Option<String> = match &op.kind {
                OpKind::Source | OpKind::Sink => None,
                OpKind::Compute { function } => Some(function.clone()),
                OpKind::Conditioned { alternatives } => {
                    let sel = selectors
                        .entries
                        .get(&id)
                        .map(|e| e.values[it as usize])
                        .unwrap_or(0);
                    Some(alternatives[sel].clone())
                }
            };
            let duration = match &function {
                Some(f) => {
                    chars
                        .duration(f, &opr_name)
                        .ok_or_else(|| AdequationError::Unmappable {
                            operation: op.name.clone(),
                            reason: format!("`{f}` infeasible on `{opr_name}`"),
                        })?
                }
                None => TimePs::ZERO,
            };

            // Incoming transfers (reserve media). Track the selector edge's
            // arrival separately: it is the no-prefetch request instant.
            let mut data_ready = TimePs::ZERO;
            let mut selector_arrival = TimePs::ZERO;
            let selector_source = selectors.entries.get(&id).map(|e| e.source);
            for e in algo.in_edges(id) {
                let src_opr = mapping.operator_of(e.from).expect("validated");
                let route = routes[src_opr.0][opr.0].as_ref().ok_or_else(|| {
                    AdequationError::Graph(GraphError::NoRoute {
                        from: arch.operator(src_opr).name.clone(),
                        to: arch.operator(opr).name.clone(),
                    })
                })?;
                let mut t = finish[&(it, e.from)];
                for &m in &route.media {
                    let free = medium_free.get(&m).copied().unwrap_or(TimePs::ZERO);
                    let start = t.max(free);
                    let end = start + arch.medium(m).transfer_time(e.bits);
                    schedule.push_medium_item(
                        m,
                        ScheduledItem {
                            kind: ItemKind::Transfer {
                                from: e.from,
                                to: e.to,
                                bits: e.bits,
                                iteration: it,
                            },
                            start,
                            end,
                        },
                    );
                    medium_free.insert(m, end);
                    t = end;
                }
                data_ready = data_ready.max(t);
                if selector_source == Some(e.from) {
                    selector_arrival = t;
                }
            }

            let region_free = operator_free.get(&opr).copied().unwrap_or(TimePs::ZERO);
            // The start the computation would have without any
            // reconfiguration — the stall baseline.
            let ideal_start = data_ready.max(region_free);
            let mut start = ideal_start;

            // Reconfiguration?
            if let Some(f) = &function {
                let is_dynamic = arch.operator(opr).kind.is_dynamic();
                if is_dynamic && loaded.get(&opr).map(|l| l.as_deref()) != Some(Some(f.as_str())) {
                    let total = chars.reconfig_time(f, &opr_name)?;
                    let split = ReconfigSplit::from_total(total, options.fetch_fraction);
                    let (rc_start, rc_end, prefetched) = if options.prefetch {
                        // Fetch begins when the selector value is *produced*
                        // at its source (the manager observes it there); for
                        // non-selected loads (first touch) fetch begins at
                        // time zero of the window.
                        let known_at = selector_source
                            .map(|s| finish[&(it, s)])
                            .unwrap_or(TimePs::ZERO);
                        let staged = known_at + split.fetch;
                        let rc_start = region_free.max(staged);
                        let rc_end = rc_start + split.load;
                        (rc_start, rc_end, staged <= region_free)
                    } else {
                        // Request issued when the selector value arrives at
                        // the block (§6: "block modulation sends a
                        // reconfiguration request"); both legs serialize.
                        let rc_start = region_free.max(selector_arrival);
                        (rc_start, rc_start + split.total(), false)
                    };
                    schedule.push_operator_item(
                        opr,
                        ScheduledItem {
                            kind: ItemKind::Reconfigure {
                                function: f.clone(),
                                iteration: it,
                                prefetched,
                            },
                            start: rc_start,
                            end: rc_end,
                        },
                    );
                    stats.reconfigurations += 1;
                    if prefetched {
                        stats.prefetched += 1;
                    }
                    stats.region_blocked += rc_end - rc_start;
                    loaded.insert(opr, Some(f.clone()));
                    load_sequence.push((it, f.clone()));
                    start = data_ready.max(rc_end);
                    stats.stall += start.saturating_sub(ideal_start);
                }
            }

            let end = start + duration;
            if !duration.is_zero() {
                schedule.push_operator_item(
                    opr,
                    ScheduledItem {
                        kind: ItemKind::Compute {
                            op: id,
                            function: function.clone().unwrap_or_default(),
                            iteration: it,
                        },
                        start,
                        end,
                    },
                );
                operator_free.insert(opr, end);
            }
            // Interface events (sources/sinks) occupy no operator time.
            finish.insert((it, id), end);
        }
    }

    schedule.validate()?;
    stats.makespan = schedule.makespan();
    Ok(TraceResult {
        schedule,
        stats,
        load_sequence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::{adequate, AdequationOptions};
    use pdr_graph::paper;

    fn paper_setup() -> (
        AlgorithmGraph,
        ArchGraph,
        Characterization,
        ConstraintsFile,
        Mapping,
    ) {
        let algo = paper::mccdma_algorithm();
        let arch = paper::sundance_architecture();
        let chars = paper::mccdma_characterization();
        let cons = paper::mccdma_constraints();
        let opts = AdequationOptions::default()
            .pin("interface_in", "dsp")
            .pin("select", "dsp")
            .pin("interface_out", "fpga_static");
        let r = adequate(&algo, &arch, &chars, &cons, &opts).unwrap();
        (algo, arch, chars, cons, r.mapping)
    }

    fn trace_of(algo: &AlgorithmGraph, values: Vec<usize>) -> SelectorTrace {
        let cond = algo.by_name("modulation").unwrap();
        let sel = algo.by_name("select").unwrap();
        SelectorTrace::single(cond, sel, values)
    }

    #[test]
    fn constant_selector_never_reconfigures_after_preload() {
        let (algo, arch, chars, cons, mapping) = paper_setup();
        // mod_qpsk (alternative 0) is LoadPolicy::AtStart: already resident.
        let t = trace_of(&algo, vec![0; 16]);
        let r = schedule_trace(
            &algo,
            &arch,
            &chars,
            &cons,
            &mapping,
            &t,
            &TraceOptions::no_prefetch(),
        )
        .unwrap();
        assert_eq!(r.stats.reconfigurations, 0);
        assert_eq!(r.stats.stall, TimePs::ZERO);
        assert_eq!(r.stats.iterations, 16);
        assert!(r.stats.makespan > TimePs::ZERO);
    }

    #[test]
    fn each_switch_costs_one_reconfiguration() {
        let (algo, arch, chars, cons, mapping) = paper_setup();
        // 0,1,0,1,... : 7 switches after the preloaded 0.
        let vals: Vec<usize> = (0..8).map(|i| i % 2).collect();
        let r = schedule_trace(
            &algo,
            &arch,
            &chars,
            &cons,
            &mapping,
            &trace_of(&algo, vals),
            &TraceOptions::no_prefetch(),
        )
        .unwrap();
        assert_eq!(r.stats.reconfigurations, 7);
        assert_eq!(r.stats.prefetched, 0);
        assert!(r.stats.stall > TimePs::ZERO);
        // Each un-prefetched reconfiguration blocks the region ~4 ms.
        let ms = r.stats.region_blocked.as_millis_f64();
        assert!((ms - 7.0 * 4.0).abs() < 0.5, "blocked {ms} ms");
    }

    #[test]
    fn prefetch_reduces_stall() {
        let (algo, arch, chars, cons, mapping) = paper_setup();
        let vals: Vec<usize> = (0..16).map(|i| (i / 4) % 2).collect();
        let base = schedule_trace(
            &algo,
            &arch,
            &chars,
            &cons,
            &mapping,
            &trace_of(&algo, vals.clone()),
            &TraceOptions::no_prefetch(),
        )
        .unwrap();
        let pf = schedule_trace(
            &algo,
            &arch,
            &chars,
            &cons,
            &mapping,
            &trace_of(&algo, vals),
            &TraceOptions::default(),
        )
        .unwrap();
        assert_eq!(base.stats.reconfigurations, pf.stats.reconfigurations);
        assert!(
            pf.stats.stall < base.stats.stall,
            "prefetch {} !< baseline {}",
            pf.stats.stall,
            base.stats.stall
        );
        assert!(pf.stats.makespan < base.stats.makespan);
        // The load leg is 25% of the total: region-blocked time shrinks
        // accordingly.
        assert!(pf.stats.region_blocked < base.stats.region_blocked);
    }

    #[test]
    fn load_sequence_matches_switches() {
        let (algo, arch, chars, cons, mapping) = paper_setup();
        let r = schedule_trace(
            &algo,
            &arch,
            &chars,
            &cons,
            &mapping,
            &trace_of(&algo, vec![0, 1, 1, 0]),
            &TraceOptions::default(),
        )
        .unwrap();
        let fns: Vec<&str> = r.load_sequence.iter().map(|(_, f)| f.as_str()).collect();
        assert_eq!(fns, ["mod_qam16", "mod_qpsk"]);
        assert_eq!(r.load_sequence[0].0, 1);
        assert_eq!(r.load_sequence[1].0, 3);
    }

    #[test]
    fn selector_out_of_range_rejected() {
        let (algo, arch, chars, cons, mapping) = paper_setup();
        let err = schedule_trace(
            &algo,
            &arch,
            &chars,
            &cons,
            &mapping,
            &trace_of(&algo, vec![0, 2]),
            &TraceOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, AdequationError::BadSelector { .. }));
    }

    #[test]
    fn missing_trace_for_dynamic_conditioned_rejected() {
        let (algo, arch, chars, cons, mapping) = paper_setup();
        let err = schedule_trace(
            &algo,
            &arch,
            &chars,
            &cons,
            &mapping,
            &SelectorTrace::default(),
            &TraceOptions::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("selector trace"));
    }

    #[test]
    fn wrong_selector_source_rejected() {
        let (algo, arch, chars, cons, mapping) = paper_setup();
        let cond = algo.by_name("modulation").unwrap();
        let not_pred = algo.by_name("ifft64").unwrap();
        let t = SelectorTrace::single(cond, not_pred, vec![0, 1]);
        let err = schedule_trace(
            &algo,
            &arch,
            &chars,
            &cons,
            &mapping,
            &t,
            &TraceOptions::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("not a predecessor"));
    }

    #[test]
    fn split_arithmetic() {
        let s = ReconfigSplit::from_total(TimePs::from_ms(4), 0.75);
        assert_eq!(s.fetch, TimePs::from_ms(3));
        assert_eq!(s.load, TimePs::from_ms(1));
        assert_eq!(s.total(), TimePs::from_ms(4));
        let z = ReconfigSplit::from_total(TimePs::from_ms(4), 0.0);
        assert_eq!(z.fetch, TimePs::ZERO);
        assert_eq!(z.load, TimePs::from_ms(4));
    }

    #[test]
    #[should_panic(expected = "fetch_fraction")]
    fn split_rejects_full_fraction() {
        let _ = ReconfigSplit::from_total(TimePs::from_ms(4), 1.0);
    }

    #[test]
    fn stats_throughput_and_period() {
        let (algo, arch, chars, cons, mapping) = paper_setup();
        let r = schedule_trace(
            &algo,
            &arch,
            &chars,
            &cons,
            &mapping,
            &trace_of(&algo, vec![0; 10]),
            &TraceOptions::default(),
        )
        .unwrap();
        let p = r.stats.avg_period();
        assert!(p > TimePs::ZERO);
        let tput = r.stats.throughput_per_sec();
        assert!((tput - 10.0 / r.stats.makespan.as_secs_f64()).abs() < 1e-6);
    }

    #[test]
    fn schedule_is_deterministic() {
        let (algo, arch, chars, cons, mapping) = paper_setup();
        let vals: Vec<usize> = (0..12).map(|i| (i / 3) % 2).collect();
        let a = schedule_trace(
            &algo,
            &arch,
            &chars,
            &cons,
            &mapping,
            &trace_of(&algo, vals.clone()),
            &TraceOptions::default(),
        )
        .unwrap();
        let b = schedule_trace(
            &algo,
            &arch,
            &chars,
            &cons,
            &mapping,
            &trace_of(&algo, vals),
            &TraceOptions::default(),
        )
        .unwrap();
        assert_eq!(a.schedule, b.schedule);
    }
}
