//! The pre-index adequation path, kept verbatim as the measurement and
//! parity baseline.
//!
//! [`crate::heuristic::adequate`] was rewritten on top of the
//! [`crate::index::AdequationIndex`] precomputation layer (dense WCET
//! matrix, all-pairs route table, CSR adjacency, heap-based ready queue).
//! This module preserves the *original* implementation — repeated
//! string-keyed [`Characterization::duration`] probes, O(E) edge-list
//! filter scans for neighbourhoods, an O(V·E) topological sort, a full
//! ready-list scan per step, and one allocating BFS per (predecessor,
//! candidate) route query — so that:
//!
//! * `tests/adequation_equivalence.rs` can prove the indexed scheduler
//!   returns byte-identical [`AdequationResult`]s, and
//! * `pdr-bench`'s `adequation_perf` study can measure the speedup against
//!   what the code actually did before the index existed (the CSR
//!   adjacency now built into [`AlgorithmGraph`] is deliberately *not*
//!   used here).
//!
//! Nothing in the production flow calls this module; it exists for
//! verification and benchmarking only.

use crate::error::AdequationError;
use crate::heuristic::{AdequationOptions, AdequationResult};
use crate::index::AdequationIndex;
use crate::mapping::Mapping;
use crate::schedule::{ItemKind, Schedule, ScheduledItem};
use pdr_fabric::TimePs;
use pdr_graph::prelude::*;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// The seed's O(V·E) Kahn topological sort: the edge list is rescanned
/// once per popped vertex. Identical order to
/// [`AlgorithmGraph::topo_order`] (ties by insertion order).
fn topo_order_scan(algo: &AlgorithmGraph) -> Result<Vec<OpId>, AdequationError> {
    let n = algo.len();
    let mut indegree = vec![0usize; n];
    for e in algo.edges() {
        indegree[e.to.0] += 1;
    }
    let mut queue: VecDeque<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop_front() {
        order.push(OpId(i));
        for e in algo.edges() {
            if e.from.0 == i {
                indegree[e.to.0] -= 1;
                if indegree[e.to.0] == 0 {
                    queue.push_back(e.to.0);
                }
            }
        }
    }
    if order.len() != n {
        let stuck = (0..n)
            .find(|&i| indegree[i] > 0)
            .map(|i| algo.op(OpId(i)).name.clone())
            .unwrap_or_default();
        return Err(AdequationError::Graph(GraphError::Cycle {
            involving: stuck,
        }));
    }
    Ok(order)
}

/// O(E) incoming-edge filter scan (the pre-CSR `in_edges`).
fn in_edges_scan(algo: &AlgorithmGraph, id: OpId) -> impl Iterator<Item = &DataEdge> {
    algo.edges().iter().filter(move |e| e.to == id)
}

/// O(E) successor filter scan (the pre-CSR `successors`).
fn successors_scan(algo: &AlgorithmGraph, id: OpId) -> Vec<OpId> {
    algo.edges()
        .iter()
        .filter(|e| e.from == id)
        .map(|e| e.to)
        .collect()
}

/// Worst-case duration of an operation on a given operator (max over the
/// functions the vertex may execute), or `None` if any function is
/// infeasible there. Sources/sinks cost zero everywhere.
fn wcet_on(op: &Operation, operator: &str, chars: &Characterization) -> Option<(TimePs, String)> {
    let funcs = op.kind.functions();
    if funcs.is_empty() {
        return Some((TimePs::ZERO, String::new()));
    }
    let mut best: Option<(TimePs, String)> = None;
    for f in funcs {
        let d = chars.duration(f, operator)?;
        if best.as_ref().map(|(t, _)| d > *t).unwrap_or(true) {
            best = Some((d, f.clone()));
        }
    }
    best
}

/// Feasible operators of an operation, honoring constraints-file pins.
fn feasible_operators(
    op: &Operation,
    arch: &ArchGraph,
    chars: &Characterization,
    constraints: &ConstraintsFile,
    pinned: Option<OperatorId>,
) -> Vec<OperatorId> {
    if let Some(p) = pinned {
        return vec![p];
    }
    let constrained_region: Option<&str> = op
        .kind
        .functions()
        .iter()
        .find_map(|f| constraints.module(f).map(|mc| mc.region.as_str()));
    arch.operators()
        .filter(|(_, o)| {
            if let Some(region) = constrained_region {
                return o.name == region;
            }
            wcet_on(op, &o.name, chars).is_some()
        })
        .map(|(id, _)| id)
        .collect()
}

/// Critical-path bottom levels, re-probing the characterization per
/// (operation, operator, function) triple like the seed did.
fn bottom_levels(
    algo: &AlgorithmGraph,
    arch: &ArchGraph,
    chars: &Characterization,
) -> Result<HashMap<OpId, TimePs>, AdequationError> {
    let order = topo_order_scan(algo)?;
    let mut bl: HashMap<OpId, TimePs> = HashMap::with_capacity(algo.len());
    let best_duration = |id: OpId| -> TimePs {
        let op = algo.op(id);
        arch.operators()
            .filter_map(|(_, o)| wcet_on(op, &o.name, chars).map(|(t, _)| t))
            .min()
            .unwrap_or(TimePs::ZERO)
    };
    for &id in order.iter().rev() {
        let succ_max = successors_scan(algo, id)
            .into_iter()
            .map(|s| bl.get(&s).copied().unwrap_or(TimePs::ZERO))
            .max()
            .unwrap_or(TimePs::ZERO);
        bl.insert(id, best_duration(id) + succ_max);
    }
    Ok(bl)
}

/// The pre-index `adequate()`: same inputs, same output, original cost
/// profile. See the module docs for what "original" means here.
pub fn adequate_reference(
    algo: &AlgorithmGraph,
    arch: &ArchGraph,
    chars: &Characterization,
    constraints: &ConstraintsFile,
    options: &AdequationOptions,
) -> Result<AdequationResult, AdequationError> {
    algo.validate()?;
    constraints.validate()?;

    // Resolve pins.
    let mut pinned: HashMap<OpId, OperatorId> = HashMap::new();
    for (op_name, opr_name) in &options.pins {
        let op = algo
            .by_name(op_name)
            .ok_or_else(|| AdequationError::Graph(GraphError::UnknownVertex(op_name.clone())))?;
        let opr = arch
            .operator_by_name(opr_name)
            .ok_or_else(|| AdequationError::Graph(GraphError::UnknownVertex(opr_name.clone())))?;
        pinned.insert(op, opr);
    }

    let bl = bottom_levels(algo, arch, chars)?;
    let mut mapping = Mapping::new();
    let mut schedule = Schedule::new();
    let mut finish: HashMap<OpId, TimePs> = HashMap::with_capacity(algo.len());
    let mut operator_free: HashMap<OperatorId, TimePs> = HashMap::new();
    let mut medium_free: HashMap<MediumId, TimePs> = HashMap::new();

    // Ready list driven by remaining predecessor counts.
    let mut remaining: HashMap<OpId, usize> = algo
        .ops()
        .map(|(id, _)| (id, in_edges_scan(algo, id).count()))
        .collect();
    let mut scheduled = 0usize;
    while scheduled < algo.len() {
        // Highest bottom level among ready ops; ties by lowest id — found
        // by a full O(V) scan per step.
        let next = algo
            .ops()
            .map(|(id, _)| id)
            .filter(|id| !finish.contains_key(id) && remaining[id] == 0)
            .max_by(|a, b| bl[a].cmp(&bl[b]).then(b.cmp(a)))
            .ok_or_else(|| {
                AdequationError::InvalidSchedule(
                    "no ready operation although schedule incomplete (cycle?)".into(),
                )
            })?;
        let op = algo.op(next);

        let candidates =
            feasible_operators(op, arch, chars, constraints, pinned.get(&next).copied());
        if candidates.is_empty() {
            return Err(AdequationError::Unmappable {
                operation: op.name.clone(),
                reason: "no feasible operator".into(),
            });
        }

        // Pick the operator minimizing finish-time estimate.
        let mut best: Option<(TimePs, TimePs, OperatorId, TimePs, String)> = None;
        for cand in candidates {
            let Some((dur, wcet_fn)) = wcet_on(op, &arch.operator(cand).name, chars) else {
                continue;
            };
            // Earliest start: operator free + data arrivals (simulated, not
            // committed).
            let mut est = operator_free.get(&cand).copied().unwrap_or(TimePs::ZERO);
            let mut routable = true;
            for e in in_edges_scan(algo, next) {
                let src_opr = mapping
                    .operator_of(e.from)
                    .expect("predecessors scheduled first");
                let t0 = finish[&e.from];
                // One allocating BFS per (predecessor, candidate) pair.
                let arrival = match arch.route(src_opr, cand) {
                    Ok(route) => {
                        let mut t = t0;
                        for &m in &route.media {
                            let free = medium_free.get(&m).copied().unwrap_or(TimePs::ZERO);
                            t = t.max(free) + arch.medium(m).transfer_time(e.bits);
                        }
                        t
                    }
                    Err(_) => {
                        routable = false;
                        break;
                    }
                };
                est = est.max(arrival);
            }
            if !routable {
                continue;
            }
            // Expected reconfiguration penalty (selection pressure only).
            let mut eft = est + dur;
            if options.reconfig_aware
                && op.kind.is_conditioned()
                && arch.operator(cand).kind.is_dynamic()
            {
                let worst_fn = op
                    .kind
                    .functions()
                    .iter()
                    .filter_map(|f| chars.reconfig_time(f, &arch.operator(cand).name).ok())
                    .max()
                    .unwrap_or(TimePs::ZERO);
                let penalty_ps =
                    (worst_fn.as_ps() as f64 * options.switch_probability).round() as u64;
                eft += TimePs::from_ps(penalty_ps);
            }
            let better = match &best {
                None => true,
                Some((b_eft, ..)) => eft < *b_eft,
            };
            if better {
                best = Some((eft, est, cand, dur, wcet_fn));
            }
        }
        let (_, est, chosen, dur, wcet_fn) = best.ok_or_else(|| AdequationError::Unmappable {
            operation: op.name.clone(),
            reason: "no routable operator".into(),
        })?;

        // Commit: reserve media for incoming transfers, then the operator.
        let mut data_ready = TimePs::ZERO;
        for e in in_edges_scan(algo, next) {
            let src_opr = mapping.operator_of(e.from).expect("scheduled");
            let route = arch.route(src_opr, chosen)?;
            let mut t = finish[&e.from];
            for &m in &route.media {
                let free = medium_free.get(&m).copied().unwrap_or(TimePs::ZERO);
                let start = t.max(free);
                let end = start + arch.medium(m).transfer_time(e.bits);
                schedule.push_medium_item(
                    m,
                    ScheduledItem {
                        kind: ItemKind::Transfer {
                            from: e.from,
                            to: e.to,
                            bits: e.bits,
                            iteration: 0,
                        },
                        start,
                        end,
                    },
                );
                medium_free.insert(m, end);
                t = end;
            }
            data_ready = data_ready.max(t);
        }
        let opr_free = operator_free.get(&chosen).copied().unwrap_or(TimePs::ZERO);
        let start = est.max(data_ready).max(opr_free);
        let end = start + dur;
        if !dur.is_zero() {
            schedule.push_operator_item(
                chosen,
                ScheduledItem {
                    kind: ItemKind::Compute {
                        op: next,
                        function: wcet_fn,
                        iteration: 0,
                    },
                    start,
                    end,
                },
            );
            operator_free.insert(chosen, end);
        }
        mapping.assign(next, chosen);
        finish.insert(next, end);
        for s in successors_scan(algo, next) {
            *remaining.get_mut(&s).expect("known op") -= 1;
        }
        scheduled += 1;
    }

    schedule.validate()?;
    mapping.validate(algo, arch, chars, constraints)?;
    let makespan = schedule.makespan();
    Ok(AdequationResult {
        mapping,
        schedule,
        makespan,
        finish_times: finish,
    })
}

/// Feasible operators of an operation, as the first indexed scheduler
/// materialized them (one allocation per operation); see
/// [`adequate_indexed_reference`].
fn feasible_operators_indexed(
    op: &Operation,
    id: OpId,
    arch: &ArchGraph,
    constraints: &ConstraintsFile,
    index: &AdequationIndex,
    pinned: Option<OperatorId>,
) -> Vec<OperatorId> {
    if let Some(p) = pinned {
        return vec![p];
    }
    // Region constraint: if any function is constrained, only that region.
    let constrained_region: Option<&str> = op
        .kind
        .functions()
        .iter()
        .find_map(|f| constraints.module(f).map(|mc| mc.region.as_str()));
    if let Some(region) = constrained_region {
        return arch
            .operators()
            .filter(|(_, o)| o.name == region)
            .map(|(opr, _)| opr)
            .collect();
    }
    arch.operators()
        .map(|(opr, _)| opr)
        .filter(|&opr| index.wcet(id, opr).is_some())
        .collect()
}

/// The *first* indexed scheduler loop, kept verbatim as the measurement
/// baseline for the hot-path overhaul — the same role
/// [`adequate_reference`] plays for the index itself.
///
/// This is what `adequate_with_index` looked like when the
/// [`AdequationIndex`] landed: a materialized candidate vector per
/// operation, mapping B-tree probes per (edge × candidate), one
/// bandwidth division per probed hop, `BinaryHeap<(TimePs,
/// Reverse<usize>)>` for the ready queue, and per-item B-tree pushes into
/// the schedule. The overhauled core in [`crate::heuristic`] replaces all
/// of that with reused dense workspaces; `bench_scale` measures the gap
/// and the differential suites prove the results stayed byte-identical.
pub fn adequate_indexed_reference(
    algo: &AlgorithmGraph,
    arch: &ArchGraph,
    chars: &Characterization,
    constraints: &ConstraintsFile,
    options: &AdequationOptions,
    index: &AdequationIndex,
) -> Result<AdequationResult, AdequationError> {
    algo.validate()?;
    constraints.validate()?;

    // Resolve pins.
    let mut pinned: HashMap<OpId, OperatorId> = HashMap::new();
    for (op_name, opr_name) in &options.pins {
        let op = algo
            .by_name(op_name)
            .ok_or_else(|| AdequationError::Graph(GraphError::UnknownVertex(op_name.clone())))?;
        let opr = arch
            .operator_by_name(opr_name)
            .ok_or_else(|| AdequationError::Graph(GraphError::UnknownVertex(opr_name.clone())))?;
        pinned.insert(op, opr);
    }

    let n = algo.len();
    let mut mapping = Mapping::new();
    let mut schedule = Schedule::new();
    let mut finish = vec![TimePs::ZERO; n];
    let mut operator_free = vec![TimePs::ZERO; arch.operator_count()];
    let mut medium_free = vec![TimePs::ZERO; arch.medium_count()];

    let mut remaining: Vec<usize> = (0..n).map(|i| algo.in_degree(OpId(i))).collect();
    let mut ready: BinaryHeap<(TimePs, Reverse<usize>)> = (0..n)
        .filter(|&i| remaining[i] == 0)
        .map(|i| (index.bottom_level(OpId(i)), Reverse(i)))
        .collect();
    let mut scheduled = 0usize;
    while scheduled < n {
        let next = match ready.pop() {
            Some((_, Reverse(i))) => OpId(i),
            None => {
                return Err(AdequationError::InvalidSchedule(
                    "no ready operation although schedule incomplete (cycle?)".into(),
                ))
            }
        };
        let op = algo.op(next);

        let candidates = feasible_operators_indexed(
            op,
            next,
            arch,
            constraints,
            index,
            pinned.get(&next).copied(),
        );
        if candidates.is_empty() {
            return Err(AdequationError::Unmappable {
                operation: op.name.clone(),
                reason: "no feasible operator".into(),
            });
        }

        // Pick the operator minimizing finish-time estimate.
        let mut best: Option<(TimePs, TimePs, OperatorId, TimePs, Option<usize>)> = None;
        for cand in candidates {
            let Some(entry) = index.wcet(next, cand) else {
                continue;
            };
            let dur = entry.dur;
            // Earliest start: operator free + data arrivals (simulated, not
            // committed).
            let mut est = operator_free[cand.0];
            let mut routable = true;
            for e in algo.in_edges(next) {
                let src_opr = mapping
                    .operator_of(e.from)
                    .expect("predecessors scheduled first");
                let t0 = finish[e.from.0];
                match index.route(src_opr, cand) {
                    Some(route) => {
                        // Estimate without reserving: each hop waits for the
                        // medium then transfers.
                        let mut t = t0;
                        for &m in &route.media {
                            t = t.max(medium_free[m.0]) + arch.medium(m).transfer_time(e.bits);
                        }
                        est = est.max(t);
                    }
                    None => {
                        routable = false;
                        break;
                    }
                }
            }
            if !routable {
                continue;
            }
            // Expected reconfiguration penalty (selection pressure only).
            let mut eft = est + dur;
            if options.reconfig_aware && index.is_conditioned(next) && index.is_dynamic(cand) {
                let worst_fn = index.reconfig_worst(next, cand);
                let penalty_ps =
                    (worst_fn.as_ps() as f64 * options.switch_probability).round() as u64;
                eft += TimePs::from_ps(penalty_ps);
            }
            let better = match &best {
                None => true,
                Some((b_eft, ..)) => eft < *b_eft,
            };
            if better {
                best = Some((eft, est, cand, dur, entry.first_fn()));
            }
        }
        let (_, est, chosen, dur, wcet_fn) = best.ok_or_else(|| AdequationError::Unmappable {
            operation: op.name.clone(),
            reason: "no routable operator".into(),
        })?;

        // Commit: reserve media for incoming transfers, then the operator.
        let mut data_ready = TimePs::ZERO;
        for e in algo.in_edges(next) {
            let src_opr = mapping.operator_of(e.from).expect("scheduled");
            let route = index.route(src_opr, chosen).ok_or_else(|| {
                AdequationError::Graph(GraphError::NoRoute {
                    from: arch.operator(src_opr).name.clone(),
                    to: arch.operator(chosen).name.clone(),
                })
            })?;
            let mut t = finish[e.from.0];
            for &m in &route.media {
                let start = t.max(medium_free[m.0]);
                let end = start + arch.medium(m).transfer_time(e.bits);
                schedule.push_medium_item(
                    m,
                    ScheduledItem {
                        kind: ItemKind::Transfer {
                            from: e.from,
                            to: e.to,
                            bits: e.bits,
                            iteration: 0,
                        },
                        start,
                        end,
                    },
                );
                medium_free[m.0] = end;
                t = end;
            }
            data_ready = data_ready.max(t);
        }
        let start = est.max(data_ready).max(operator_free[chosen.0]);
        let end = start + dur;
        if !dur.is_zero() {
            schedule.push_operator_item(
                chosen,
                ScheduledItem {
                    kind: ItemKind::Compute {
                        op: next,
                        function: index.fn_name(algo, next, wcet_fn),
                        iteration: 0,
                    },
                    start,
                    end,
                },
            );
            operator_free[chosen.0] = end;
        }
        mapping.assign(next, chosen);
        finish[next.0] = end;
        for e in algo.out_edges(next) {
            let s = e.to.0;
            remaining[s] -= 1;
            if remaining[s] == 0 {
                ready.push((index.bottom_level(e.to), Reverse(s)));
            }
        }
        scheduled += 1;
    }

    schedule.validate()?;
    mapping.validate(algo, arch, chars, constraints)?;
    let makespan = schedule.makespan();
    Ok(AdequationResult {
        mapping,
        schedule,
        makespan,
        finish_times: (0..n).map(|i| (OpId(i), finish[i])).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::adequate;
    use pdr_graph::paper;

    #[test]
    fn reference_matches_indexed_on_the_paper_flow() {
        let algo = paper::mccdma_algorithm();
        let arch = paper::sundance_architecture();
        let chars = paper::mccdma_characterization();
        let cons = paper::mccdma_constraints();
        let opts = AdequationOptions::default()
            .pin("interface_in", "dsp")
            .pin("select", "dsp")
            .pin("interface_out", "fpga_static");
        let reference = adequate_reference(&algo, &arch, &chars, &cons, &opts).unwrap();
        let indexed = adequate(&algo, &arch, &chars, &cons, &opts).unwrap();
        assert_eq!(reference, indexed);
    }

    #[test]
    fn indexed_reference_matches_overhauled_core_on_the_paper_flow() {
        let algo = paper::mccdma_algorithm();
        let arch = paper::sundance_architecture();
        let chars = paper::mccdma_characterization();
        let cons = paper::mccdma_constraints();
        let opts = AdequationOptions::default()
            .pin("interface_in", "dsp")
            .pin("select", "dsp")
            .pin("interface_out", "fpga_static");
        let index = AdequationIndex::build(&algo, &arch, &chars).unwrap();
        let baseline =
            adequate_indexed_reference(&algo, &arch, &chars, &cons, &opts, &index).unwrap();
        let overhauled = adequate(&algo, &arch, &chars, &cons, &opts).unwrap();
        assert_eq!(baseline, overhauled);
    }

    #[test]
    fn reference_topo_matches_graph_topo() {
        let algo = paper::mccdma_algorithm();
        assert_eq!(topo_order_scan(&algo).unwrap(), algo.topo_order().unwrap());
    }
}
