//! Schedule-quality bounds: how far is the heuristic from optimal?
//!
//! The adequation heuristic is greedy; §3 calls it "a heuristic which
//! takes into account durations". Two classical lower bounds let every
//! experiment report a *quality ratio* instead of a bare makespan:
//!
//! * **critical-path bound** — no schedule can finish before the longest
//!   dependency chain, each operation at its best-case duration;
//! * **work bound** — no schedule can finish before the total best-case
//!   work divided by the number of operators able to perform any of it.
//!
//! `makespan / lower_bound` then bounds the heuristic's suboptimality from
//! above (a ratio of 1.0 is provably optimal).

use crate::error::AdequationError;
use pdr_fabric::TimePs;
use pdr_graph::prelude::*;
use std::collections::HashMap;

/// Best-case duration of an operation across all operators (0 for
/// sources/sinks; `None` when some function has no feasible operator).
fn best_duration(op: &Operation, arch: &ArchGraph, chars: &Characterization) -> Option<TimePs> {
    let funcs = op.kind.functions();
    if funcs.is_empty() {
        return Some(TimePs::ZERO);
    }
    // Worst over alternatives of (best over operators): matches the WCET
    // labeling used by the scheduler.
    let mut worst = TimePs::ZERO;
    for f in funcs {
        let best = arch
            .operators()
            .filter_map(|(_, o)| chars.duration(f, &o.name))
            .min()?;
        worst = worst.max(best);
    }
    Some(worst)
}

/// The critical-path lower bound (communication-free).
pub fn critical_path_bound(
    algo: &AlgorithmGraph,
    arch: &ArchGraph,
    chars: &Characterization,
) -> Result<TimePs, AdequationError> {
    let order = algo.topo_order()?;
    let mut longest: HashMap<OpId, TimePs> = HashMap::with_capacity(algo.len());
    let mut bound = TimePs::ZERO;
    for &id in &order {
        let op = algo.op(id);
        let dur = best_duration(op, arch, chars).ok_or_else(|| AdequationError::Unmappable {
            operation: op.name.clone(),
            reason: "no feasible operator for the lower bound".into(),
        })?;
        let pred_max = algo
            .predecessors(id)
            .into_iter()
            .map(|p| longest[&p])
            .max()
            .unwrap_or(TimePs::ZERO);
        let finish = pred_max + dur;
        longest.insert(id, finish);
        bound = bound.max(finish);
    }
    Ok(bound)
}

/// The total-work lower bound: sum of best-case durations divided by the
/// number of operators that can execute at least one operation.
pub fn work_bound(
    algo: &AlgorithmGraph,
    arch: &ArchGraph,
    chars: &Characterization,
) -> Result<TimePs, AdequationError> {
    let mut total = TimePs::ZERO;
    for (_, op) in algo.ops() {
        let dur = best_duration(op, arch, chars).ok_or_else(|| AdequationError::Unmappable {
            operation: op.name.clone(),
            reason: "no feasible operator for the lower bound".into(),
        })?;
        total += dur;
    }
    let useful_operators = arch
        .operators()
        .filter(|(_, o)| {
            algo.ops().any(|(_, op)| {
                op.kind
                    .functions()
                    .iter()
                    .any(|f| chars.feasible(f, &o.name))
            })
        })
        .count()
        .max(1);
    Ok(total / useful_operators as u64)
}

/// The tighter of the two bounds.
pub fn lower_bound(
    algo: &AlgorithmGraph,
    arch: &ArchGraph,
    chars: &Characterization,
) -> Result<TimePs, AdequationError> {
    Ok(critical_path_bound(algo, arch, chars)?.max(work_bound(algo, arch, chars)?))
}

/// Quality ratio of a schedule: `makespan / lower_bound` (≥ 1.0; lower is
/// better; 1.0 is provably optimal).
pub fn quality_ratio(
    makespan: TimePs,
    algo: &AlgorithmGraph,
    arch: &ArchGraph,
    chars: &Characterization,
) -> Result<f64, AdequationError> {
    let lb = lower_bound(algo, arch, chars)?;
    if lb.is_zero() {
        return Ok(1.0);
    }
    Ok(makespan.as_ps() as f64 / lb.as_ps() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::{adequate, AdequationOptions};
    use pdr_graph::paper;

    fn paper_setup() -> (AlgorithmGraph, ArchGraph, Characterization, ConstraintsFile) {
        (
            paper::mccdma_algorithm(),
            paper::sundance_architecture(),
            paper::mccdma_characterization(),
            paper::mccdma_constraints(),
        )
    }

    #[test]
    fn bounds_are_positive_and_consistent() {
        let (algo, arch, chars, _) = paper_setup();
        let cp = critical_path_bound(&algo, &arch, &chars).unwrap();
        let wb = work_bound(&algo, &arch, &chars).unwrap();
        let lb = lower_bound(&algo, &arch, &chars).unwrap();
        assert!(cp > TimePs::ZERO);
        assert!(wb > TimePs::ZERO);
        assert_eq!(lb, cp.max(wb));
        // The MC-CDMA graph is a chain: critical path dominates.
        assert_eq!(lb, cp);
    }

    #[test]
    fn heuristic_respects_the_lower_bound() {
        let (algo, arch, chars, cons) = paper_setup();
        let opts = AdequationOptions::default()
            .pin("interface_in", "dsp")
            .pin("select", "dsp")
            .pin("interface_out", "fpga_static");
        let r = adequate(&algo, &arch, &chars, &cons, &opts).unwrap();
        let lb = lower_bound(&algo, &arch, &chars).unwrap();
        assert!(r.makespan >= lb);
        let q = quality_ratio(r.makespan, &algo, &arch, &chars).unwrap();
        assert!(q >= 1.0);
        // The paper graph is a near-chain: greedy should be close to
        // optimal (< 1.5x the communication-free bound even with the
        // transfer times it must pay).
        assert!(q < 1.5, "quality ratio {q}");
    }

    #[test]
    fn chain_graph_bound_is_exact() {
        // A pure chain on one operator: the heuristic must hit the bound.
        let mut arch = ArchGraph::new("mono");
        arch.add_operator("cpu", OperatorKind::Processor).unwrap();
        let mut g = AlgorithmGraph::new("chain");
        let mut chars = Characterization::new();
        let s = g.add_op("s", OpKind::Source).unwrap();
        let mut prev = s;
        for i in 0..5 {
            let name = format!("c{i}");
            let id = g.add_compute(&name).unwrap();
            chars.set_duration(&name, "cpu", TimePs::from_us(10));
            g.connect(prev, id, 8).unwrap();
            prev = id;
        }
        let k = g.add_op("k", OpKind::Sink).unwrap();
        g.connect(prev, k, 8).unwrap();
        let r = adequate(
            &g,
            &arch,
            &chars,
            &ConstraintsFile::new(),
            &AdequationOptions::default(),
        )
        .unwrap();
        let q = quality_ratio(r.makespan, &g, &arch, &chars).unwrap();
        assert!((q - 1.0).abs() < 1e-12, "chain must be optimal, got {q}");
    }

    #[test]
    fn wide_graph_work_bound_dominates() {
        // 8 independent ops on 1 operator: work bound = 80 us > cp = 10 us.
        let mut arch = ArchGraph::new("mono");
        arch.add_operator("cpu", OperatorKind::Processor).unwrap();
        let mut g = AlgorithmGraph::new("wide");
        let mut chars = Characterization::new();
        let s = g.add_op("s", OpKind::Source).unwrap();
        let k = g.add_op("k", OpKind::Sink).unwrap();
        for i in 0..8 {
            let name = format!("w{i}");
            let id = g.add_compute(&name).unwrap();
            chars.set_duration(&name, "cpu", TimePs::from_us(10));
            g.connect(s, id, 8).unwrap();
            g.connect(id, k, 8).unwrap();
        }
        let cp = critical_path_bound(&g, &arch, &chars).unwrap();
        let wb = work_bound(&g, &arch, &chars).unwrap();
        assert_eq!(cp, TimePs::from_us(10));
        assert_eq!(wb, TimePs::from_us(80));
        assert_eq!(lower_bound(&g, &arch, &chars).unwrap(), wb);
    }

    #[test]
    fn infeasible_function_errors() {
        let mut arch = ArchGraph::new("mono");
        arch.add_operator("cpu", OperatorKind::Processor).unwrap();
        let mut g = AlgorithmGraph::new("bad");
        let s = g.add_op("s", OpKind::Source).unwrap();
        let c = g.add_compute("mystery").unwrap();
        let k = g.add_op("k", OpKind::Sink).unwrap();
        g.connect(s, c, 8).unwrap();
        g.connect(c, k, 8).unwrap();
        let chars = Characterization::new();
        assert!(critical_path_bound(&g, &arch, &chars).is_err());
        assert!(work_bound(&g, &arch, &chars).is_err());
    }
}
