//! The greedy list-scheduling adequation heuristic.
//!
//! The heuristic follows the SynDEx recipe §3 describes: operations are
//! considered in order of *schedule pressure* (critical-path bottom levels),
//! and each is placed on the feasible operator minimizing its earliest
//! finish time, accounting for data-transfer times across the media route
//! from its predecessors.
//!
//! The runtime-reconfiguration extension (§4) enters in two places:
//!
//! * **feasibility** — conditioned operations may only go to operators on
//!   which *every* alternative is feasible, and constraints-file region
//!   pins are honored;
//! * **cost** — with [`AdequationOptions::reconfig_aware`] set, placing a
//!   conditioned operation on a dynamic operator charges the *expected*
//!   reconfiguration penalty `switch_probability × reconfig_time` to the
//!   finish-time estimate. The oblivious variant (`reconfig_aware = false`)
//!   reproduces a scheduler that ignores reconfiguration latency — the
//!   ablation the paper's conclusion motivates ("SynDEx's heuristic needs
//!   additional developments to optimize time reconfiguration").
//!
//! Durations of conditioned operations are taken as the worst case across
//! alternatives (WCET labeling), so single-iteration makespans are safe
//! bounds. Sources and sinks model interfaces: they are mapped (possibly
//! pinned) but consume no operator time.
//!
//! The implementation runs on the [`AdequationIndex`] precomputation
//! layer: a dense op×operator WCET matrix, an all-pairs route table, the
//! graph's CSR adjacency, and a binary-heap ready queue keyed on (bottom
//! level, id) — roughly O((V+E)·P + V log V) index arithmetic where the
//! seed spent O(V²·P·F) on string hashing and per-pair BFS. The pre-index
//! path survives in [`crate::reference`]; `tests/adequation_equivalence.rs`
//! proves both return byte-identical results.

use crate::error::AdequationError;
use crate::index::AdequationIndex;
use crate::mapping::Mapping;
use crate::schedule::{ItemKind, Schedule, ScheduledItem};
use pdr_fabric::TimePs;
use pdr_graph::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Tunables of the adequation heuristic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdequationOptions {
    /// Charge expected reconfiguration penalties during operator selection.
    pub reconfig_aware: bool,
    /// Expected per-iteration probability that a conditioned operation
    /// switches alternatives (drives the expected penalty).
    pub switch_probability: f64,
    /// Pre-assignments by name: (operation, operator). Used to pin
    /// interface sources/sinks to their physical side (e.g. `select` to the
    /// DSP).
    pub pins: Vec<(String, String)>,
}

impl Default for AdequationOptions {
    fn default() -> Self {
        AdequationOptions {
            reconfig_aware: true,
            switch_probability: 0.1,
            pins: Vec::new(),
        }
    }
}

impl AdequationOptions {
    /// The reconfiguration-oblivious baseline.
    pub fn oblivious() -> Self {
        AdequationOptions {
            reconfig_aware: false,
            ..Default::default()
        }
    }

    /// Add a pin.
    pub fn pin(mut self, operation: &str, operator: &str) -> Self {
        self.pins
            .push((operation.to_string(), operator.to_string()));
        self
    }
}

/// Output of [`adequate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdequationResult {
    /// Operation → operator assignment.
    pub mapping: Mapping,
    /// One steady-state iteration (iteration index 0), WCET-labeled.
    pub schedule: Schedule,
    /// Schedule makespan.
    pub makespan: TimePs,
    /// Finish time of each operation within the iteration (sources/sinks
    /// included, although they occupy no operator time).
    pub finish_times: HashMap<OpId, TimePs>,
}

/// Dense sentinel for "no operator assigned/pinned".
const NO_OPR: u32 = u32::MAX;

/// One resolved predecessor arc of the operation being placed: everything
/// a probe needs, looked up once per operation instead of once per
/// (edge × candidate) — the seed re-probed the mapping's B-tree and
/// re-multiplied the route index on every candidate.
#[derive(Debug, Clone, Copy)]
struct PredArc {
    /// Operator executing the source operation.
    src_opr: u32,
    /// Row base of that operator in [`AdequationIndex::route_table`].
    route_base: usize,
    /// Finish time of the source operation.
    t0: TimePs,
    /// Edge width in bits.
    bits: u64,
    /// Source operation (names the transfer item).
    from: u32,
}

/// Reusable dense state of the scheduler core.
///
/// Everything the greedy list scheduler mutates lives here as a flat,
/// index-addressed vector: remaining in-degrees, finish times, operator
/// and medium horizons, the chosen operator per operation, resolved pins,
/// the ready heap and the per-operation predecessor scratch. A workspace
/// is reused across runs — the internal `prepare` step only clears and
/// resizes — so after one warm-up call [`evaluate_makespan`] performs no
/// heap allocation in steady state (`pdr-bench`'s `bench_scale` holds
/// that with a counting allocator).
#[derive(Debug, Default)]
pub struct EvalWorkspace {
    remaining: Vec<u32>,
    finish: Vec<TimePs>,
    operator_free: Vec<TimePs>,
    medium_free: Vec<TimePs>,
    op_operator: Vec<u32>,
    pinned: Vec<u32>,
    /// Pair-keyed binary max-heap on (bottom level, id): each operation
    /// enters exactly once when its in-degree hits zero, so no re-keying
    /// or deletion is ever needed, and the backing vector is reused
    /// across runs.
    ready: Vec<(TimePs, usize)>,
    preds: Vec<PredArc>,
    /// Per (predecessor, medium) transfer time of the operation being
    /// placed, row-major by predecessor: the edge width is fixed per arc,
    /// so the bandwidth division happens once per (arc, medium) instead of
    /// once per (candidate, hop).
    pred_tt: Vec<TimePs>,
}

impl EvalWorkspace {
    /// A fresh, empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    fn prepare(&mut self, n_ops: usize, n_oprs: usize, n_media: usize) {
        self.remaining.clear();
        self.remaining.resize(n_ops, 0);
        self.finish.clear();
        self.finish.resize(n_ops, TimePs::ZERO);
        self.operator_free.clear();
        self.operator_free.resize(n_oprs, TimePs::ZERO);
        self.medium_free.clear();
        self.medium_free.resize(n_media, TimePs::ZERO);
        self.op_operator.clear();
        self.op_operator.resize(n_ops, NO_OPR);
        self.pinned.clear();
        self.pinned.resize(n_ops, NO_OPR);
        self.ready.clear();
        self.preds.clear();
        self.pred_tt.clear();
    }

    /// Heap order: higher bottom level first, ties towards the lower id —
    /// exactly the key the seed's full ready-list scan minimized.
    #[inline]
    fn ready_before(a: (TimePs, usize), b: (TimePs, usize)) -> bool {
        a.0 > b.0 || (a.0 == b.0 && a.1 < b.1)
    }

    #[inline]
    fn ready_push(&mut self, item: (TimePs, usize)) {
        let mut i = self.ready.len();
        self.ready.push(item);
        while i > 0 {
            let parent = (i - 1) / 2;
            if Self::ready_before(self.ready[i], self.ready[parent]) {
                self.ready.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    #[inline]
    fn ready_pop(&mut self) -> Option<(TimePs, usize)> {
        if self.ready.is_empty() {
            return None;
        }
        let last = self.ready.len() - 1;
        self.ready.swap(0, last);
        let top = self.ready.pop();
        let mut i = 0;
        loop {
            let l = 2 * i + 1;
            if l >= self.ready.len() {
                break;
            }
            let r = l + 1;
            let c = if r < self.ready.len() && Self::ready_before(self.ready[r], self.ready[l]) {
                r
            } else {
                l
            };
            if Self::ready_before(self.ready[c], self.ready[i]) {
                self.ready.swap(i, c);
                i = c;
            } else {
                break;
            }
        }
        top
    }
}

/// Recording buffers of the `RECORD = true` instantiation: per-id item
/// vectors, folded into the [`Schedule`]'s B-trees once at the end.
#[derive(Debug, Default)]
struct RecordBufs {
    operator_items: Vec<Vec<ScheduledItem>>,
    medium_items: Vec<Vec<ScheduledItem>>,
}

/// The scheduler core, monomorphized over whether it records.
///
/// Both instantiations take identical decisions and perform identical
/// commits (operator/medium horizon updates, finish times) — `RECORD =
/// true` additionally materializes the schedule items and function-name
/// strings, `RECORD = false` only tracks the running makespan.
fn run_core<const RECORD: bool>(
    algo: &AlgorithmGraph,
    arch: &ArchGraph,
    constraints: &ConstraintsFile,
    options: &AdequationOptions,
    index: &AdequationIndex,
    ws: &mut EvalWorkspace,
    bufs: &mut RecordBufs,
) -> Result<TimePs, AdequationError> {
    let n = algo.len();
    let n_oprs = arch.operator_count();
    let n_media = arch.medium_count();
    ws.prepare(n, n_oprs, n_media);
    if RECORD {
        bufs.operator_items.resize_with(n_oprs, Vec::new);
        bufs.medium_items.resize_with(n_media, Vec::new);
    }

    // Resolve pins into the dense table (a later pin of the same
    // operation wins, as the seed's HashMap insert did).
    for (op_name, opr_name) in &options.pins {
        let op = algo
            .by_name(op_name)
            .ok_or_else(|| AdequationError::Graph(GraphError::UnknownVertex(op_name.clone())))?;
        let opr = arch
            .operator_by_name(opr_name)
            .ok_or_else(|| AdequationError::Graph(GraphError::UnknownVertex(opr_name.clone())))?;
        ws.pinned[op.0] = opr.0 as u32;
    }

    for i in 0..n {
        ws.remaining[i] = algo.in_degree(OpId(i)) as u32;
        if ws.remaining[i] == 0 {
            ws.ready_push((index.bottom_level(OpId(i)), i));
        }
    }

    let route_table = index.route_table();
    let mut makespan = TimePs::ZERO;
    let mut scheduled = 0usize;
    while scheduled < n {
        let next = match ws.ready_pop() {
            Some((_, i)) => OpId(i),
            None => {
                return Err(AdequationError::InvalidSchedule(
                    "no ready operation although schedule incomplete (cycle?)".into(),
                ))
            }
        };
        let op = algo.op(next);

        // Candidate set, never materialized: a pin or a constrained
        // region names exactly one operator (operator names are unique),
        // otherwise every operator is probed and the WCET matrix masks
        // the infeasible ones. Pins and region constraints bypass the
        // WCET feasibility check, exactly like the pre-index path did (an
        // infeasible pinned/constrained operator is caught below as "no
        // routable operator").
        let single: Option<OperatorId> = if ws.pinned[next.0] != NO_OPR {
            Some(OperatorId(ws.pinned[next.0] as usize))
        } else {
            let constrained_region: Option<&str> = op
                .kind
                .functions()
                .iter()
                .find_map(|f| constraints.module(f).map(|mc| mc.region.as_str()));
            match constrained_region {
                Some(region) => Some(arch.operator_by_name(region).ok_or_else(|| {
                    AdequationError::Unmappable {
                        operation: op.name.clone(),
                        reason: "no feasible operator".into(),
                    }
                })?),
                None => None,
            }
        };

        // Predecessor arcs, resolved once per operation, with the per-
        // medium transfer time of each arc's payload divided out up front
        // (`t0`'s max doubles as the candidate-independent start bound).
        ws.preds.clear();
        ws.pred_tt.clear();
        let mut max_t0 = TimePs::ZERO;
        for e in algo.in_edges(next) {
            let src = ws.op_operator[e.from.0];
            debug_assert_ne!(src, NO_OPR, "predecessors scheduled first");
            let t0 = ws.finish[e.from.0];
            max_t0 = max_t0.max(t0);
            ws.preds.push(PredArc {
                src_opr: src,
                route_base: src as usize * n_oprs,
                t0,
                bits: e.bits,
                from: e.from.0 as u32,
            });
            for m in 0..n_media {
                ws.pred_tt
                    .push(arch.medium(MediumId(m)).transfer_time(e.bits));
            }
        }

        // Pick the operator minimizing the finish-time estimate.
        let mut best: Option<(TimePs, TimePs, OperatorId, TimePs, Option<usize>)> = None;
        let mut any_feasible = false;
        let (lo, hi) = match single {
            Some(o) => (o.0, o.0 + 1),
            None => (0, n_oprs),
        };
        let wcet_row = index.wcet_row(next);
        for c in lo..hi {
            let cand = OperatorId(c);
            let Some(entry) = wcet_row[c].as_ref() else {
                continue;
            };
            any_feasible = true;
            let dur = entry.dur;
            // Cheap lower bound before any route work: the start time is
            // at least `max(operator_free, latest predecessor finish)`,
            // and the penalty term only adds — so a candidate whose bound
            // cannot *strictly* beat the incumbent would lose the `eft <
            // best` comparison below anyway, and the first-wins tie-break
            // is preserved exactly.
            if let Some((b_eft, ..)) = &best {
                if ws.operator_free[c].max(max_t0) + dur >= *b_eft {
                    continue;
                }
            }
            // Earliest start: operator free + data arrivals (simulated,
            // not committed).
            let mut est = ws.operator_free[c];
            let mut routable = true;
            for (pi, p) in ws.preds.iter().enumerate() {
                match route_table[p.route_base + c].as_ref() {
                    Some(route) => {
                        // Estimate without reserving: each hop waits for
                        // the medium then transfers.
                        let tt = &ws.pred_tt[pi * n_media..];
                        let mut t = p.t0;
                        for &m in &route.media {
                            t = t.max(ws.medium_free[m.0]) + tt[m.0];
                        }
                        est = est.max(t);
                    }
                    None => {
                        routable = false;
                        break;
                    }
                }
            }
            if !routable {
                continue;
            }
            // Expected reconfiguration penalty (selection pressure only).
            let mut eft = est + dur;
            if options.reconfig_aware && index.is_conditioned(next) && index.is_dynamic(cand) {
                let worst_fn = index.reconfig_worst(next, cand);
                let penalty_ps =
                    (worst_fn.as_ps() as f64 * options.switch_probability).round() as u64;
                eft += TimePs::from_ps(penalty_ps);
            }
            let better = match &best {
                None => true,
                Some((b_eft, ..)) => eft < *b_eft,
            };
            if better {
                best = Some((eft, est, cand, dur, entry.first_fn()));
            }
        }
        let Some((_, est, chosen, dur, wcet_fn)) = best else {
            // A pinned/constrained candidate set is never empty, so its
            // failures are routing failures; the open set is empty only
            // when no operator implements the operation.
            return Err(AdequationError::Unmappable {
                operation: op.name.clone(),
                reason: if single.is_some() || any_feasible {
                    "no routable operator"
                } else {
                    "no feasible operator"
                }
                .into(),
            });
        };

        // Commit: reserve media for incoming transfers, then the operator.
        let mut data_ready = TimePs::ZERO;
        for (pi, p) in ws.preds.iter().enumerate() {
            let route = route_table[p.route_base + chosen.0]
                .as_ref()
                .ok_or_else(|| {
                    AdequationError::Graph(GraphError::NoRoute {
                        from: arch.operator(OperatorId(p.src_opr as usize)).name.clone(),
                        to: arch.operator(chosen).name.clone(),
                    })
                })?;
            let tt = &ws.pred_tt[pi * n_media..];
            let mut t = p.t0;
            for &m in &route.media {
                let start = t.max(ws.medium_free[m.0]);
                let end = start + tt[m.0];
                if RECORD {
                    bufs.medium_items[m.0].push(ScheduledItem {
                        kind: ItemKind::Transfer {
                            from: OpId(p.from as usize),
                            to: next,
                            bits: p.bits,
                            iteration: 0,
                        },
                        start,
                        end,
                    });
                }
                makespan = makespan.max(end);
                ws.medium_free[m.0] = end;
                t = end;
            }
            data_ready = data_ready.max(t);
        }
        let start = est.max(data_ready).max(ws.operator_free[chosen.0]);
        let end = start + dur;
        if !dur.is_zero() {
            if RECORD {
                bufs.operator_items[chosen.0].push(ScheduledItem {
                    kind: ItemKind::Compute {
                        op: next,
                        function: index.fn_name(algo, next, wcet_fn),
                        iteration: 0,
                    },
                    start,
                    end,
                });
            }
            makespan = makespan.max(end);
            ws.operator_free[chosen.0] = end;
        }
        ws.op_operator[next.0] = chosen.0 as u32;
        ws.finish[next.0] = end;
        for e in algo.out_edges(next) {
            let s = e.to.0;
            ws.remaining[s] -= 1;
            if ws.remaining[s] == 0 {
                let bl = index.bottom_level(e.to);
                ws.ready_push((bl, s));
            }
        }
        scheduled += 1;
    }

    Ok(makespan)
}

/// Run the scheduler core without recording: same decisions, same
/// commits, no `Schedule`/`Mapping`/`String` construction — only the
/// makespan comes back. With a reused [`EvalWorkspace`], the steady-state
/// loop performs zero heap allocations, which is what makes this the
/// inner oracle for outer search loops (annealing moves, design-space
/// sweeps) at 10k-operation scale.
///
/// Inputs are assumed validated — [`adequate_with_index`] is the checked
/// entry point and returns the same makespan.
pub fn evaluate_makespan(
    algo: &AlgorithmGraph,
    arch: &ArchGraph,
    constraints: &ConstraintsFile,
    options: &AdequationOptions,
    index: &AdequationIndex,
    ws: &mut EvalWorkspace,
) -> Result<TimePs, AdequationError> {
    let mut bufs = RecordBufs::default();
    run_core::<false>(algo, arch, constraints, options, index, ws, &mut bufs)
}

/// Run the adequation: map and schedule one iteration of `algo` onto `arch`.
pub fn adequate(
    algo: &AlgorithmGraph,
    arch: &ArchGraph,
    chars: &Characterization,
    constraints: &ConstraintsFile,
    options: &AdequationOptions,
) -> Result<AdequationResult, AdequationError> {
    algo.validate()?;
    constraints.validate()?;
    let index = AdequationIndex::build(algo, arch, chars)?;
    adequate_with_index(algo, arch, chars, constraints, options, &index)
}

/// Run the adequation against a caller-supplied [`AdequationIndex`].
///
/// The index is a pure function of `(algo, arch, chars)`, so services
/// scheduling many requests over the same models (`pdr-server`) build it
/// once and share it: the precomputation — dense WCET matrix, all-pairs
/// routes, bottom levels — dominates small-flow adequation time. Passing
/// an index built from *different* models is a logic error; results
/// would be inconsistent with the graphs being scheduled.
///
/// [`adequate`] is exactly this function with a freshly built index.
pub fn adequate_with_index(
    algo: &AlgorithmGraph,
    arch: &ArchGraph,
    chars: &Characterization,
    constraints: &ConstraintsFile,
    options: &AdequationOptions,
    index: &AdequationIndex,
) -> Result<AdequationResult, AdequationError> {
    algo.validate()?;
    constraints.validate()?;

    let mut ws = EvalWorkspace::new();
    let mut bufs = RecordBufs::default();
    run_core::<true>(algo, arch, constraints, options, index, &mut ws, &mut bufs)?;

    // Assemble the B-tree-backed outputs once, in id order, from the
    // dense per-id buffers the core filled — byte-identical to pushing
    // them item by item, minus the per-push tree probes.
    let n = algo.len();
    let mut mapping = Mapping::new();
    for i in 0..n {
        mapping.assign(OpId(i), OperatorId(ws.op_operator[i] as usize));
    }
    let mut schedule = Schedule::new();
    for (i, items) in bufs.operator_items.drain(..).enumerate() {
        if !items.is_empty() {
            schedule.operator_items.insert(OperatorId(i), items);
        }
    }
    for (i, items) in bufs.medium_items.drain(..).enumerate() {
        if !items.is_empty() {
            schedule.medium_items.insert(MediumId(i), items);
        }
    }

    schedule.validate()?;
    mapping.validate(algo, arch, chars, constraints)?;
    let makespan = schedule.makespan();
    Ok(AdequationResult {
        mapping,
        schedule,
        makespan,
        finish_times: (0..n).map(|i| (OpId(i), ws.finish[i])).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_graph::paper;

    fn paper_setup() -> (AlgorithmGraph, ArchGraph, Characterization, ConstraintsFile) {
        (
            paper::mccdma_algorithm(),
            paper::sundance_architecture(),
            paper::mccdma_characterization(),
            paper::mccdma_constraints(),
        )
    }

    fn paper_options() -> AdequationOptions {
        AdequationOptions::default()
            .pin("interface_in", "dsp")
            .pin("select", "dsp")
            .pin("interface_out", "fpga_static")
    }

    #[test]
    fn paper_case_study_maps_modulation_to_dynamic_region() {
        let (algo, arch, chars, cons) = paper_setup();
        let r = adequate(&algo, &arch, &chars, &cons, &paper_options()).unwrap();
        let modu = algo.by_name("modulation").unwrap();
        let opr = r.mapping.operator_of(modu).unwrap();
        assert_eq!(arch.operator(opr).name, "op_dyn");
        assert!(r.makespan > TimePs::ZERO);
        r.schedule.validate().unwrap();
    }

    #[test]
    fn datapath_blocks_land_on_fpga() {
        let (algo, arch, chars, cons) = paper_setup();
        let r = adequate(&algo, &arch, &chars, &cons, &paper_options()).unwrap();
        for name in ["ifft64", "spreading", "framing"] {
            let id = algo.by_name(name).unwrap();
            let opr = r.mapping.operator_of(id).unwrap();
            assert_eq!(
                arch.operator(opr).name,
                "fpga_static",
                "{name} should prefer the FPGA (10-100x faster than the DSP)"
            );
        }
    }

    #[test]
    fn pinned_sources_stay_pinned() {
        let (algo, arch, chars, cons) = paper_setup();
        let r = adequate(&algo, &arch, &chars, &cons, &paper_options()).unwrap();
        let sel = algo.by_name("select").unwrap();
        assert_eq!(
            arch.operator(r.mapping.operator_of(sel).unwrap()).name,
            "dsp"
        );
    }

    #[test]
    fn precedence_is_respected() {
        let (algo, arch, chars, cons) = paper_setup();
        let r = adequate(&algo, &arch, &chars, &cons, &paper_options()).unwrap();
        for e in algo.edges() {
            assert!(
                r.finish_times[&e.from] <= r.finish_times[&e.to],
                "edge {} -> {} violates precedence",
                algo.op(e.from).name,
                algo.op(e.to).name
            );
        }
    }

    #[test]
    fn unmappable_function_errors() {
        let (mut algo, arch, chars, cons) = paper_setup();
        // An operation with a function nobody implements.
        let ghost = algo.add_compute("ghost_fn").unwrap();
        let fec = algo.by_name("fec_conv").unwrap();
        let sink = algo.by_name("interface_out").unwrap();
        algo.connect(fec, ghost, 8).unwrap();
        algo.connect(ghost, sink, 8).unwrap();
        let err = adequate(&algo, &arch, &chars, &cons, &paper_options()).unwrap_err();
        assert!(matches!(err, AdequationError::Unmappable { .. }));
    }

    #[test]
    fn reconfig_aware_avoids_dynamic_region_under_high_switching() {
        // With near-certain switching each iteration, the expected 4 ms
        // penalty dwarfs the µs compute gain: the aware heuristic keeps
        // modulation on the static FPGA (when constraints allow), while the
        // oblivious one happily uses op_dyn.
        let (algo, arch, chars, _) = paper_setup();
        let free = ConstraintsFile::new(); // no region pin
        let aware = AdequationOptions {
            reconfig_aware: true,
            switch_probability: 0.9,
            ..paper_options()
        };
        let oblivious = AdequationOptions {
            reconfig_aware: false,
            ..paper_options()
        };
        let modu = algo.by_name("modulation").unwrap();
        let r_aware = adequate(&algo, &arch, &chars, &free, &aware).unwrap();
        let r_obl = adequate(&algo, &arch, &chars, &free, &oblivious).unwrap();
        let name_of = |r: &AdequationResult| {
            arch.operator(r.mapping.operator_of(modu).unwrap())
                .name
                .clone()
        };
        assert_ne!(
            name_of(&r_aware),
            "op_dyn",
            "aware heuristic must avoid the dynamic region at 90% switch rate"
        );
        // The oblivious heuristic sees identical WCETs on both FPGA operators
        // and picks deterministically; it must not be *repelled* by the
        // reconfiguration cost it ignores.
        assert!(["op_dyn", "fpga_static"].contains(&name_of(&r_obl).as_str()));
    }

    #[test]
    fn single_operator_architecture_serializes_everything() {
        let mut arch = ArchGraph::new("mono");
        arch.add_operator("cpu", OperatorKind::Processor).unwrap();
        let mut algo = AlgorithmGraph::new("chain");
        let s = algo.add_op("s", pdr_graph::OpKind::Source).unwrap();
        let a = algo.add_compute("a").unwrap();
        let b = algo.add_compute("b").unwrap();
        let k = algo.add_op("k", pdr_graph::OpKind::Sink).unwrap();
        algo.connect(s, a, 8).unwrap();
        algo.connect(s, b, 8).unwrap();
        algo.connect(a, k, 8).unwrap();
        algo.connect(b, k, 8).unwrap();
        let mut chars = Characterization::new();
        chars.set_duration("a", "cpu", TimePs::from_us(10));
        chars.set_duration("b", "cpu", TimePs::from_us(10));
        let r = adequate(
            &algo,
            &arch,
            &chars,
            &ConstraintsFile::new(),
            &AdequationOptions::default(),
        )
        .unwrap();
        // a and b cannot overlap on one operator: makespan = 20 us.
        assert_eq!(r.makespan, TimePs::from_us(20));
    }

    #[test]
    fn parallel_operators_overlap_independent_work() {
        let mut arch = ArchGraph::new("dual");
        let c1 = arch.add_operator("cpu1", OperatorKind::Processor).unwrap();
        let c2 = arch.add_operator("cpu2", OperatorKind::Processor).unwrap();
        let m = arch
            .add_medium("bus", MediumKind::Bus, 1_000_000_000, TimePs::ZERO)
            .unwrap();
        arch.link(c1, m).unwrap();
        arch.link(c2, m).unwrap();
        let mut algo = AlgorithmGraph::new("fork");
        let s = algo.add_op("s", pdr_graph::OpKind::Source).unwrap();
        let a = algo.add_compute("a").unwrap();
        let b = algo.add_compute("b").unwrap();
        let k = algo.add_op("k", pdr_graph::OpKind::Sink).unwrap();
        algo.connect(s, a, 8).unwrap();
        algo.connect(s, b, 8).unwrap();
        algo.connect(a, k, 8).unwrap();
        algo.connect(b, k, 8).unwrap();
        let mut chars = Characterization::new();
        for f in ["a", "b"] {
            chars.set_duration(f, "cpu1", TimePs::from_us(10));
            chars.set_duration(f, "cpu2", TimePs::from_us(10));
        }
        let r = adequate(
            &algo,
            &arch,
            &chars,
            &ConstraintsFile::new(),
            &AdequationOptions::default(),
        )
        .unwrap();
        // Transfers are nanoseconds; a and b overlap on two CPUs.
        assert!(r.makespan < TimePs::from_us(12), "makespan {}", r.makespan);
    }

    #[test]
    fn deterministic_output() {
        let (algo, arch, chars, cons) = paper_setup();
        let r1 = adequate(&algo, &arch, &chars, &cons, &paper_options()).unwrap();
        let r2 = adequate(&algo, &arch, &chars, &cons, &paper_options()).unwrap();
        assert_eq!(r1.mapping, r2.mapping);
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.schedule, r2.schedule);
    }

    #[test]
    fn bad_pin_name_errors() {
        let (algo, arch, chars, cons) = paper_setup();
        let opts = AdequationOptions::default().pin("no_such_op", "dsp");
        assert!(adequate(&algo, &arch, &chars, &cons, &opts).is_err());
        let opts = AdequationOptions::default().pin("select", "no_such_operator");
        assert!(adequate(&algo, &arch, &chars, &cons, &opts).is_err());
    }
}
