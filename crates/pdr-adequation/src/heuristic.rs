//! The greedy list-scheduling adequation heuristic.
//!
//! The heuristic follows the SynDEx recipe §3 describes: operations are
//! considered in order of *schedule pressure* (critical-path bottom levels),
//! and each is placed on the feasible operator minimizing its earliest
//! finish time, accounting for data-transfer times across the media route
//! from its predecessors.
//!
//! The runtime-reconfiguration extension (§4) enters in two places:
//!
//! * **feasibility** — conditioned operations may only go to operators on
//!   which *every* alternative is feasible, and constraints-file region
//!   pins are honored;
//! * **cost** — with [`AdequationOptions::reconfig_aware`] set, placing a
//!   conditioned operation on a dynamic operator charges the *expected*
//!   reconfiguration penalty `switch_probability × reconfig_time` to the
//!   finish-time estimate. The oblivious variant (`reconfig_aware = false`)
//!   reproduces a scheduler that ignores reconfiguration latency — the
//!   ablation the paper's conclusion motivates ("SynDEx's heuristic needs
//!   additional developments to optimize time reconfiguration").
//!
//! Durations of conditioned operations are taken as the worst case across
//! alternatives (WCET labeling), so single-iteration makespans are safe
//! bounds. Sources and sinks model interfaces: they are mapped (possibly
//! pinned) but consume no operator time.
//!
//! The implementation runs on the [`AdequationIndex`] precomputation
//! layer: a dense op×operator WCET matrix, an all-pairs route table, the
//! graph's CSR adjacency, and a binary-heap ready queue keyed on (bottom
//! level, id) — roughly O((V+E)·P + V log V) index arithmetic where the
//! seed spent O(V²·P·F) on string hashing and per-pair BFS. The pre-index
//! path survives in [`crate::reference`]; `tests/adequation_equivalence.rs`
//! proves both return byte-identical results.

use crate::error::AdequationError;
use crate::index::AdequationIndex;
use crate::mapping::Mapping;
use crate::schedule::{ItemKind, Schedule, ScheduledItem};
use pdr_fabric::TimePs;
use pdr_graph::prelude::*;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Tunables of the adequation heuristic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdequationOptions {
    /// Charge expected reconfiguration penalties during operator selection.
    pub reconfig_aware: bool,
    /// Expected per-iteration probability that a conditioned operation
    /// switches alternatives (drives the expected penalty).
    pub switch_probability: f64,
    /// Pre-assignments by name: (operation, operator). Used to pin
    /// interface sources/sinks to their physical side (e.g. `select` to the
    /// DSP).
    pub pins: Vec<(String, String)>,
}

impl Default for AdequationOptions {
    fn default() -> Self {
        AdequationOptions {
            reconfig_aware: true,
            switch_probability: 0.1,
            pins: Vec::new(),
        }
    }
}

impl AdequationOptions {
    /// The reconfiguration-oblivious baseline.
    pub fn oblivious() -> Self {
        AdequationOptions {
            reconfig_aware: false,
            ..Default::default()
        }
    }

    /// Add a pin.
    pub fn pin(mut self, operation: &str, operator: &str) -> Self {
        self.pins
            .push((operation.to_string(), operator.to_string()));
        self
    }
}

/// Output of [`adequate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdequationResult {
    /// Operation → operator assignment.
    pub mapping: Mapping,
    /// One steady-state iteration (iteration index 0), WCET-labeled.
    pub schedule: Schedule,
    /// Schedule makespan.
    pub makespan: TimePs,
    /// Finish time of each operation within the iteration (sources/sinks
    /// included, although they occupy no operator time).
    pub finish_times: HashMap<OpId, TimePs>,
}

/// Feasible operators of an operation, honoring constraints-file pins.
/// Pins and region constraints bypass the WCET feasibility check, exactly
/// like the pre-index path did (an infeasible constrained region is caught
/// later as "no routable operator").
fn feasible_operators(
    op: &Operation,
    id: OpId,
    arch: &ArchGraph,
    constraints: &ConstraintsFile,
    index: &AdequationIndex,
    pinned: Option<OperatorId>,
) -> Vec<OperatorId> {
    if let Some(p) = pinned {
        return vec![p];
    }
    // Region constraint: if any function is constrained, only that region.
    let constrained_region: Option<&str> = op
        .kind
        .functions()
        .iter()
        .find_map(|f| constraints.module(f).map(|mc| mc.region.as_str()));
    if let Some(region) = constrained_region {
        return arch
            .operators()
            .filter(|(_, o)| o.name == region)
            .map(|(opr, _)| opr)
            .collect();
    }
    arch.operators()
        .map(|(opr, _)| opr)
        .filter(|&opr| index.wcet(id, opr).is_some())
        .collect()
}

/// Run the adequation: map and schedule one iteration of `algo` onto `arch`.
pub fn adequate(
    algo: &AlgorithmGraph,
    arch: &ArchGraph,
    chars: &Characterization,
    constraints: &ConstraintsFile,
    options: &AdequationOptions,
) -> Result<AdequationResult, AdequationError> {
    algo.validate()?;
    constraints.validate()?;
    let index = AdequationIndex::build(algo, arch, chars)?;
    adequate_with_index(algo, arch, chars, constraints, options, &index)
}

/// Run the adequation against a caller-supplied [`AdequationIndex`].
///
/// The index is a pure function of `(algo, arch, chars)`, so services
/// scheduling many requests over the same models (`pdr-server`) build it
/// once and share it: the precomputation — dense WCET matrix, all-pairs
/// routes, bottom levels — dominates small-flow adequation time. Passing
/// an index built from *different* models is a logic error; results
/// would be inconsistent with the graphs being scheduled.
///
/// [`adequate`] is exactly this function with a freshly built index.
pub fn adequate_with_index(
    algo: &AlgorithmGraph,
    arch: &ArchGraph,
    chars: &Characterization,
    constraints: &ConstraintsFile,
    options: &AdequationOptions,
    index: &AdequationIndex,
) -> Result<AdequationResult, AdequationError> {
    algo.validate()?;
    constraints.validate()?;

    // Resolve pins.
    let mut pinned: HashMap<OpId, OperatorId> = HashMap::new();
    for (op_name, opr_name) in &options.pins {
        let op = algo
            .by_name(op_name)
            .ok_or_else(|| AdequationError::Graph(GraphError::UnknownVertex(op_name.clone())))?;
        let opr = arch
            .operator_by_name(opr_name)
            .ok_or_else(|| AdequationError::Graph(GraphError::UnknownVertex(opr_name.clone())))?;
        pinned.insert(op, opr);
    }

    let n = algo.len();
    let mut mapping = Mapping::new();
    let mut schedule = Schedule::new();
    let mut finish = vec![TimePs::ZERO; n];
    let mut operator_free = vec![TimePs::ZERO; arch.operator_count()];
    let mut medium_free = vec![TimePs::ZERO; arch.medium_count()];

    // Ready queue keyed on (bottom level, lowest id): a heap pop selects
    // exactly the operation the seed's full ready-list scan picked —
    // highest bottom level, ties broken towards the lowest id — because
    // each operation enters the heap exactly once, when its remaining
    // predecessor count reaches zero.
    let mut remaining: Vec<usize> = (0..n).map(|i| algo.in_degree(OpId(i))).collect();
    let mut ready: BinaryHeap<(TimePs, Reverse<usize>)> = (0..n)
        .filter(|&i| remaining[i] == 0)
        .map(|i| (index.bottom_level(OpId(i)), Reverse(i)))
        .collect();
    let mut scheduled = 0usize;
    while scheduled < n {
        let next = match ready.pop() {
            Some((_, Reverse(i))) => OpId(i),
            None => {
                return Err(AdequationError::InvalidSchedule(
                    "no ready operation although schedule incomplete (cycle?)".into(),
                ))
            }
        };
        let op = algo.op(next);

        let candidates = feasible_operators(
            op,
            next,
            arch,
            constraints,
            index,
            pinned.get(&next).copied(),
        );
        if candidates.is_empty() {
            return Err(AdequationError::Unmappable {
                operation: op.name.clone(),
                reason: "no feasible operator".into(),
            });
        }

        // Pick the operator minimizing finish-time estimate.
        let mut best: Option<(TimePs, TimePs, OperatorId, TimePs, Option<usize>)> = None;
        for cand in candidates {
            let Some(entry) = index.wcet(next, cand) else {
                continue;
            };
            let dur = entry.dur;
            // Earliest start: operator free + data arrivals (simulated, not
            // committed).
            let mut est = operator_free[cand.0];
            let mut routable = true;
            for e in algo.in_edges(next) {
                let src_opr = mapping
                    .operator_of(e.from)
                    .expect("predecessors scheduled first");
                let t0 = finish[e.from.0];
                match index.route(src_opr, cand) {
                    Some(route) => {
                        // Estimate without reserving: each hop waits for the
                        // medium then transfers.
                        let mut t = t0;
                        for &m in &route.media {
                            t = t.max(medium_free[m.0]) + arch.medium(m).transfer_time(e.bits);
                        }
                        est = est.max(t);
                    }
                    None => {
                        routable = false;
                        break;
                    }
                }
            }
            if !routable {
                continue;
            }
            // Expected reconfiguration penalty (selection pressure only).
            let mut eft = est + dur;
            if options.reconfig_aware && index.is_conditioned(next) && index.is_dynamic(cand) {
                let worst_fn = index.reconfig_worst(next, cand);
                let penalty_ps =
                    (worst_fn.as_ps() as f64 * options.switch_probability).round() as u64;
                eft += TimePs::from_ps(penalty_ps);
            }
            let better = match &best {
                None => true,
                Some((b_eft, ..)) => eft < *b_eft,
            };
            if better {
                best = Some((eft, est, cand, dur, entry.first_fn()));
            }
        }
        let (_, est, chosen, dur, wcet_fn) = best.ok_or_else(|| AdequationError::Unmappable {
            operation: op.name.clone(),
            reason: "no routable operator".into(),
        })?;

        // Commit: reserve media for incoming transfers, then the operator.
        let mut data_ready = TimePs::ZERO;
        for e in algo.in_edges(next) {
            let src_opr = mapping.operator_of(e.from).expect("scheduled");
            let route = index.route(src_opr, chosen).ok_or_else(|| {
                AdequationError::Graph(GraphError::NoRoute {
                    from: arch.operator(src_opr).name.clone(),
                    to: arch.operator(chosen).name.clone(),
                })
            })?;
            let mut t = finish[e.from.0];
            for &m in &route.media {
                let start = t.max(medium_free[m.0]);
                let end = start + arch.medium(m).transfer_time(e.bits);
                schedule.push_medium_item(
                    m,
                    ScheduledItem {
                        kind: ItemKind::Transfer {
                            from: e.from,
                            to: e.to,
                            bits: e.bits,
                            iteration: 0,
                        },
                        start,
                        end,
                    },
                );
                medium_free[m.0] = end;
                t = end;
            }
            data_ready = data_ready.max(t);
        }
        let start = est.max(data_ready).max(operator_free[chosen.0]);
        let end = start + dur;
        if !dur.is_zero() {
            schedule.push_operator_item(
                chosen,
                ScheduledItem {
                    kind: ItemKind::Compute {
                        op: next,
                        function: index.fn_name(algo, next, wcet_fn),
                        iteration: 0,
                    },
                    start,
                    end,
                },
            );
            operator_free[chosen.0] = end;
        }
        mapping.assign(next, chosen);
        finish[next.0] = end;
        for e in algo.out_edges(next) {
            let s = e.to.0;
            remaining[s] -= 1;
            if remaining[s] == 0 {
                ready.push((index.bottom_level(e.to), Reverse(s)));
            }
        }
        scheduled += 1;
    }

    schedule.validate()?;
    mapping.validate(algo, arch, chars, constraints)?;
    let makespan = schedule.makespan();
    Ok(AdequationResult {
        mapping,
        schedule,
        makespan,
        finish_times: (0..n).map(|i| (OpId(i), finish[i])).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_graph::paper;

    fn paper_setup() -> (AlgorithmGraph, ArchGraph, Characterization, ConstraintsFile) {
        (
            paper::mccdma_algorithm(),
            paper::sundance_architecture(),
            paper::mccdma_characterization(),
            paper::mccdma_constraints(),
        )
    }

    fn paper_options() -> AdequationOptions {
        AdequationOptions::default()
            .pin("interface_in", "dsp")
            .pin("select", "dsp")
            .pin("interface_out", "fpga_static")
    }

    #[test]
    fn paper_case_study_maps_modulation_to_dynamic_region() {
        let (algo, arch, chars, cons) = paper_setup();
        let r = adequate(&algo, &arch, &chars, &cons, &paper_options()).unwrap();
        let modu = algo.by_name("modulation").unwrap();
        let opr = r.mapping.operator_of(modu).unwrap();
        assert_eq!(arch.operator(opr).name, "op_dyn");
        assert!(r.makespan > TimePs::ZERO);
        r.schedule.validate().unwrap();
    }

    #[test]
    fn datapath_blocks_land_on_fpga() {
        let (algo, arch, chars, cons) = paper_setup();
        let r = adequate(&algo, &arch, &chars, &cons, &paper_options()).unwrap();
        for name in ["ifft64", "spreading", "framing"] {
            let id = algo.by_name(name).unwrap();
            let opr = r.mapping.operator_of(id).unwrap();
            assert_eq!(
                arch.operator(opr).name,
                "fpga_static",
                "{name} should prefer the FPGA (10-100x faster than the DSP)"
            );
        }
    }

    #[test]
    fn pinned_sources_stay_pinned() {
        let (algo, arch, chars, cons) = paper_setup();
        let r = adequate(&algo, &arch, &chars, &cons, &paper_options()).unwrap();
        let sel = algo.by_name("select").unwrap();
        assert_eq!(
            arch.operator(r.mapping.operator_of(sel).unwrap()).name,
            "dsp"
        );
    }

    #[test]
    fn precedence_is_respected() {
        let (algo, arch, chars, cons) = paper_setup();
        let r = adequate(&algo, &arch, &chars, &cons, &paper_options()).unwrap();
        for e in algo.edges() {
            assert!(
                r.finish_times[&e.from] <= r.finish_times[&e.to],
                "edge {} -> {} violates precedence",
                algo.op(e.from).name,
                algo.op(e.to).name
            );
        }
    }

    #[test]
    fn unmappable_function_errors() {
        let (mut algo, arch, chars, cons) = paper_setup();
        // An operation with a function nobody implements.
        let ghost = algo.add_compute("ghost_fn").unwrap();
        let fec = algo.by_name("fec_conv").unwrap();
        let sink = algo.by_name("interface_out").unwrap();
        algo.connect(fec, ghost, 8).unwrap();
        algo.connect(ghost, sink, 8).unwrap();
        let err = adequate(&algo, &arch, &chars, &cons, &paper_options()).unwrap_err();
        assert!(matches!(err, AdequationError::Unmappable { .. }));
    }

    #[test]
    fn reconfig_aware_avoids_dynamic_region_under_high_switching() {
        // With near-certain switching each iteration, the expected 4 ms
        // penalty dwarfs the µs compute gain: the aware heuristic keeps
        // modulation on the static FPGA (when constraints allow), while the
        // oblivious one happily uses op_dyn.
        let (algo, arch, chars, _) = paper_setup();
        let free = ConstraintsFile::new(); // no region pin
        let aware = AdequationOptions {
            reconfig_aware: true,
            switch_probability: 0.9,
            ..paper_options()
        };
        let oblivious = AdequationOptions {
            reconfig_aware: false,
            ..paper_options()
        };
        let modu = algo.by_name("modulation").unwrap();
        let r_aware = adequate(&algo, &arch, &chars, &free, &aware).unwrap();
        let r_obl = adequate(&algo, &arch, &chars, &free, &oblivious).unwrap();
        let name_of = |r: &AdequationResult| {
            arch.operator(r.mapping.operator_of(modu).unwrap())
                .name
                .clone()
        };
        assert_ne!(
            name_of(&r_aware),
            "op_dyn",
            "aware heuristic must avoid the dynamic region at 90% switch rate"
        );
        // The oblivious heuristic sees identical WCETs on both FPGA operators
        // and picks deterministically; it must not be *repelled* by the
        // reconfiguration cost it ignores.
        assert!(["op_dyn", "fpga_static"].contains(&name_of(&r_obl).as_str()));
    }

    #[test]
    fn single_operator_architecture_serializes_everything() {
        let mut arch = ArchGraph::new("mono");
        arch.add_operator("cpu", OperatorKind::Processor).unwrap();
        let mut algo = AlgorithmGraph::new("chain");
        let s = algo.add_op("s", pdr_graph::OpKind::Source).unwrap();
        let a = algo.add_compute("a").unwrap();
        let b = algo.add_compute("b").unwrap();
        let k = algo.add_op("k", pdr_graph::OpKind::Sink).unwrap();
        algo.connect(s, a, 8).unwrap();
        algo.connect(s, b, 8).unwrap();
        algo.connect(a, k, 8).unwrap();
        algo.connect(b, k, 8).unwrap();
        let mut chars = Characterization::new();
        chars.set_duration("a", "cpu", TimePs::from_us(10));
        chars.set_duration("b", "cpu", TimePs::from_us(10));
        let r = adequate(
            &algo,
            &arch,
            &chars,
            &ConstraintsFile::new(),
            &AdequationOptions::default(),
        )
        .unwrap();
        // a and b cannot overlap on one operator: makespan = 20 us.
        assert_eq!(r.makespan, TimePs::from_us(20));
    }

    #[test]
    fn parallel_operators_overlap_independent_work() {
        let mut arch = ArchGraph::new("dual");
        let c1 = arch.add_operator("cpu1", OperatorKind::Processor).unwrap();
        let c2 = arch.add_operator("cpu2", OperatorKind::Processor).unwrap();
        let m = arch
            .add_medium("bus", MediumKind::Bus, 1_000_000_000, TimePs::ZERO)
            .unwrap();
        arch.link(c1, m).unwrap();
        arch.link(c2, m).unwrap();
        let mut algo = AlgorithmGraph::new("fork");
        let s = algo.add_op("s", pdr_graph::OpKind::Source).unwrap();
        let a = algo.add_compute("a").unwrap();
        let b = algo.add_compute("b").unwrap();
        let k = algo.add_op("k", pdr_graph::OpKind::Sink).unwrap();
        algo.connect(s, a, 8).unwrap();
        algo.connect(s, b, 8).unwrap();
        algo.connect(a, k, 8).unwrap();
        algo.connect(b, k, 8).unwrap();
        let mut chars = Characterization::new();
        for f in ["a", "b"] {
            chars.set_duration(f, "cpu1", TimePs::from_us(10));
            chars.set_duration(f, "cpu2", TimePs::from_us(10));
        }
        let r = adequate(
            &algo,
            &arch,
            &chars,
            &ConstraintsFile::new(),
            &AdequationOptions::default(),
        )
        .unwrap();
        // Transfers are nanoseconds; a and b overlap on two CPUs.
        assert!(r.makespan < TimePs::from_us(12), "makespan {}", r.makespan);
    }

    #[test]
    fn deterministic_output() {
        let (algo, arch, chars, cons) = paper_setup();
        let r1 = adequate(&algo, &arch, &chars, &cons, &paper_options()).unwrap();
        let r2 = adequate(&algo, &arch, &chars, &cons, &paper_options()).unwrap();
        assert_eq!(r1.mapping, r2.mapping);
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.schedule, r2.schedule);
    }

    #[test]
    fn bad_pin_name_errors() {
        let (algo, arch, chars, cons) = paper_setup();
        let opts = AdequationOptions::default().pin("no_such_op", "dsp");
        assert!(adequate(&algo, &arch, &chars, &cons, &opts).is_err());
        let opts = AdequationOptions::default().pin("select", "no_such_operator");
        assert!(adequate(&algo, &arch, &chars, &cons, &opts).is_err());
    }
}
