//! Schedules: timed resource reservations for operators and media.
//!
//! A [`Schedule`] is the output of the adequation heuristic: per-operator
//! timelines of computations and reconfigurations, and per-medium timelines
//! of data transfers. It carries enough structure for
//!
//! * validation ([`Schedule::validate`]): items on one resource never
//!   overlap, every item ends after it starts, timelines are sorted;
//! * statistics: makespan, per-resource busy time, reconfiguration count and
//!   stall accounting (the quantities benched by the prefetch study).

use crate::error::AdequationError;
use pdr_fabric::TimePs;
use pdr_graph::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What a scheduled item does.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ItemKind {
    /// Execute `function` for operation `op` (iteration-stamped).
    Compute {
        /// Operation executed.
        op: OpId,
        /// Concrete function symbol (the active alternative for conditioned
        /// operations).
        function: String,
        /// Iteration index (0 for single-iteration schedules).
        iteration: u32,
    },
    /// Move `bits` of the edge `from → to` across one medium.
    Transfer {
        /// Producer operation.
        from: OpId,
        /// Consumer operation.
        to: OpId,
        /// Payload bits.
        bits: u64,
        /// Iteration index.
        iteration: u32,
    },
    /// Reconfigure a dynamic operator to `function`.
    Reconfigure {
        /// Function (module) being loaded.
        function: String,
        /// Iteration whose computation required the load.
        iteration: u32,
        /// True when the bitstream fetch leg was prefetched (overlapped);
        /// the item then covers only the port-load leg.
        prefetched: bool,
    },
}

impl ItemKind {
    /// Is this a reconfiguration?
    pub fn is_reconfigure(&self) -> bool {
        matches!(self, ItemKind::Reconfigure { .. })
    }
}

/// A half-open time interval `[start, end)` of work on one resource.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledItem {
    /// What happens.
    pub kind: ItemKind,
    /// Start time.
    pub start: TimePs,
    /// End time (exclusive).
    pub end: TimePs,
}

impl ScheduledItem {
    /// Item duration.
    pub fn duration(&self) -> TimePs {
        self.end - self.start
    }
}

/// A complete schedule over an architecture.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Computations + reconfigurations per operator.
    pub operator_items: BTreeMap<OperatorId, Vec<ScheduledItem>>,
    /// Transfers per medium.
    pub medium_items: BTreeMap<MediumId, Vec<ScheduledItem>>,
}

impl Schedule {
    /// Empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an item to an operator timeline (kept sorted by caller
    /// discipline; [`Schedule::validate`] checks).
    pub fn push_operator_item(&mut self, op: OperatorId, item: ScheduledItem) {
        self.operator_items.entry(op).or_default().push(item);
    }

    /// Append an item to a medium timeline.
    pub fn push_medium_item(&mut self, med: MediumId, item: ScheduledItem) {
        self.medium_items.entry(med).or_default().push(item);
    }

    /// End of the last item anywhere (the schedule length).
    pub fn makespan(&self) -> TimePs {
        self.operator_items
            .values()
            .chain(self.medium_items.values())
            .flat_map(|v| v.iter())
            .map(|i| i.end)
            .max()
            .unwrap_or(TimePs::ZERO)
    }

    /// Items on one operator.
    pub fn of_operator(&self, op: OperatorId) -> &[ScheduledItem] {
        self.operator_items
            .get(&op)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Items on one medium.
    pub fn of_medium(&self, med: MediumId) -> &[ScheduledItem] {
        self.medium_items
            .get(&med)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Total busy time of an operator.
    pub fn busy_time(&self, op: OperatorId) -> TimePs {
        self.of_operator(op).iter().map(|i| i.duration()).sum()
    }

    /// Utilization of an operator over the makespan (0 when empty).
    pub fn utilization(&self, op: OperatorId) -> f64 {
        let span = self.makespan();
        if span.is_zero() {
            return 0.0;
        }
        self.busy_time(op).as_ps() as f64 / span.as_ps() as f64
    }

    /// All reconfiguration items (operator, item) in time order.
    pub fn reconfigurations(&self) -> Vec<(OperatorId, &ScheduledItem)> {
        let mut v: Vec<(OperatorId, &ScheduledItem)> = self
            .operator_items
            .iter()
            .flat_map(|(&op, items)| {
                items
                    .iter()
                    .filter(|i| i.kind.is_reconfigure())
                    .map(move |i| (op, i))
            })
            .collect();
        v.sort_by_key(|(_, i)| i.start);
        v
    }

    /// Number of reconfigurations.
    pub fn reconfiguration_count(&self) -> usize {
        self.operator_items
            .values()
            .flat_map(|v| v.iter())
            .filter(|i| i.kind.is_reconfigure())
            .count()
    }

    /// Total time spent reconfiguring (sum of reconfigure item durations).
    pub fn reconfiguration_time(&self) -> TimePs {
        self.operator_items
            .values()
            .flat_map(|v| v.iter())
            .filter(|i| i.kind.is_reconfigure())
            .map(|i| i.duration())
            .sum()
    }

    /// Consistency check: on every resource, items are sorted by start and
    /// non-overlapping, and every item has `end > start` (zero-length items
    /// are tolerated for zero-bit bookkeeping only — we reject them here to
    /// keep invariants crisp).
    pub fn validate(&self) -> Result<(), AdequationError> {
        let check = |items: &[ScheduledItem], what: &str| -> Result<(), AdequationError> {
            for w in items.windows(2) {
                if w[1].start < w[0].start {
                    return Err(AdequationError::InvalidSchedule(format!(
                        "{what}: items not sorted by start time"
                    )));
                }
                if w[1].start < w[0].end {
                    return Err(AdequationError::InvalidSchedule(format!(
                        "{what}: items overlap ({} < {})",
                        w[1].start, w[0].end
                    )));
                }
            }
            for i in items {
                if i.end <= i.start {
                    return Err(AdequationError::InvalidSchedule(format!(
                        "{what}: empty or negative item [{}, {})",
                        i.start, i.end
                    )));
                }
            }
            Ok(())
        };
        for (op, items) in &self.operator_items {
            check(items, &format!("operator {op}"))?;
        }
        for (med, items) in &self.medium_items {
            check(items, &format!("medium {med}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(start_us: u64, end_us: u64) -> ScheduledItem {
        ScheduledItem {
            kind: ItemKind::Compute {
                op: OpId(0),
                function: "f".into(),
                iteration: 0,
            },
            start: TimePs::from_us(start_us),
            end: TimePs::from_us(end_us),
        }
    }

    fn reconf(start_us: u64, end_us: u64, prefetched: bool) -> ScheduledItem {
        ScheduledItem {
            kind: ItemKind::Reconfigure {
                function: "m".into(),
                iteration: 0,
                prefetched,
            },
            start: TimePs::from_us(start_us),
            end: TimePs::from_us(end_us),
        }
    }

    #[test]
    fn makespan_and_busy() {
        let mut s = Schedule::new();
        s.push_operator_item(OperatorId(0), item(0, 5));
        s.push_operator_item(OperatorId(0), item(7, 10));
        s.push_medium_item(MediumId(0), item(5, 12));
        assert_eq!(s.makespan(), TimePs::from_us(12));
        assert_eq!(s.busy_time(OperatorId(0)), TimePs::from_us(8));
        let u = s.utilization(OperatorId(0));
        assert!((u - 8.0 / 12.0).abs() < 1e-12);
        assert_eq!(s.utilization(OperatorId(9)), 0.0);
    }

    #[test]
    fn empty_schedule() {
        let s = Schedule::new();
        assert_eq!(s.makespan(), TimePs::ZERO);
        assert_eq!(s.reconfiguration_count(), 0);
        s.validate().unwrap();
    }

    #[test]
    fn overlap_detected() {
        let mut s = Schedule::new();
        s.push_operator_item(OperatorId(0), item(0, 5));
        s.push_operator_item(OperatorId(0), item(4, 8));
        assert!(s.validate().is_err());
    }

    #[test]
    fn unsorted_detected() {
        let mut s = Schedule::new();
        s.push_operator_item(OperatorId(0), item(5, 6));
        s.push_operator_item(OperatorId(0), item(0, 1));
        assert!(s.validate().is_err());
    }

    #[test]
    fn empty_item_detected() {
        let mut s = Schedule::new();
        s.push_operator_item(OperatorId(0), item(5, 5));
        assert!(s.validate().is_err());
    }

    #[test]
    fn adjacent_items_are_fine() {
        let mut s = Schedule::new();
        s.push_operator_item(OperatorId(0), item(0, 5));
        s.push_operator_item(OperatorId(0), item(5, 9));
        s.validate().unwrap();
    }

    #[test]
    fn reconfiguration_accounting() {
        let mut s = Schedule::new();
        s.push_operator_item(OperatorId(1), reconf(0, 4000, false));
        s.push_operator_item(OperatorId(1), item(4000, 4002));
        s.push_operator_item(OperatorId(1), reconf(5000, 6000, true));
        assert_eq!(s.reconfiguration_count(), 2);
        assert_eq!(s.reconfiguration_time(), TimePs::from_us(5000));
        let rs = s.reconfigurations();
        assert_eq!(rs.len(), 2);
        assert!(rs[0].1.start <= rs[1].1.start);
    }
}
