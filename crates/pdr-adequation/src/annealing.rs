//! Simulated-annealing mapping: a second adequation strategy.
//!
//! §7 of the paper: *"SynDEx's heuristic needs additional developments to
//! optimize time reconfiguration."* The greedy list scheduler
//! ([`crate::heuristic`]) is fast but myopic — each operation is placed by
//! local earliest-finish-time with no lookahead. This module implements
//! the classical global alternative: anneal over complete mappings,
//! evaluating each candidate with a deterministic fixed-mapping scheduler,
//! with the same reconfiguration-expectation term in the objective.
//!
//! The experiment harness uses it as the quality ablation: on graphs where
//! greedy placement is provably suboptimal, annealing recovers the better
//! mapping at (much) higher search cost — quantifying what "additional
//! developments" buy.

use crate::error::AdequationError;
use crate::heuristic::AdequationOptions;
use crate::index::AdequationIndex;
use crate::mapping::Mapping;
use crate::schedule::{ItemKind, Schedule, ScheduledItem};
use pdr_fabric::bitstream::SplitMix64;
use pdr_fabric::TimePs;
use pdr_graph::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Annealing parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnealOptions {
    /// Scheduling options shared with the greedy heuristic (pins,
    /// reconfiguration awareness, switch probability).
    pub base: AdequationOptions,
    /// Annealing moves to attempt.
    pub moves: u32,
    /// Initial temperature, in picoseconds of makespan (accept worsenings
    /// of ~this size at the start).
    pub initial_temp_ps: f64,
    /// Geometric cooling factor per move.
    pub cooling: f64,
    /// RNG seed (deterministic).
    pub seed: u64,
}

impl Default for AnnealOptions {
    fn default() -> Self {
        AnnealOptions {
            base: AdequationOptions::default(),
            moves: 2_000,
            initial_temp_ps: 50_000_000.0, // 50 us
            cooling: 0.997,
            seed: 0xA11EA1,
        }
    }
}

/// Schedule `algo` under a *fixed* mapping: operations in topological
/// order, each starting when its operator is free and its transfers have
/// arrived. Returns the schedule; it validates by construction.
///
/// Builds a one-shot [`AdequationIndex`]; the annealing loop shares a
/// single index across all moves via the internal variant instead.
pub fn schedule_with_mapping(
    algo: &AlgorithmGraph,
    arch: &ArchGraph,
    chars: &Characterization,
    mapping: &Mapping,
) -> Result<(Schedule, TimePs), AdequationError> {
    let index = AdequationIndex::build(algo, arch, chars)?;
    let mut schedule = Schedule::new();
    let makespan = run_fixed_mapping(algo, arch, chars, &index, mapping, Some(&mut schedule))?;
    Ok((schedule, makespan))
}

/// The fixed-mapping list walk over the index. With `record` the full
/// schedule is materialized; without, only the makespan is tracked — the
/// annealing objective needs nothing else, and every item's end is folded
/// into the running maximum exactly where the item would have been pushed,
/// so both modes return the same makespan.
fn run_fixed_mapping(
    algo: &AlgorithmGraph,
    arch: &ArchGraph,
    chars: &Characterization,
    index: &AdequationIndex,
    mapping: &Mapping,
    mut record: Option<&mut Schedule>,
) -> Result<TimePs, AdequationError> {
    let mut makespan = TimePs::ZERO;
    let mut finish = vec![TimePs::ZERO; algo.len()];
    let mut operator_free = vec![TimePs::ZERO; arch.operator_count()];
    let mut medium_free = vec![TimePs::ZERO; arch.medium_count()];
    for &id in index.topo() {
        let op = algo.op(id);
        let opr = mapping
            .operator_of(id)
            .ok_or_else(|| AdequationError::Unmappable {
                operation: op.name.clone(),
                reason: "not assigned".into(),
            })?;
        // WCET across the vertex's functions — last function attaining the
        // max, like the pre-index `d >= dur` loop kept.
        let entry = index
            .wcet(id, opr)
            .ok_or_else(|| infeasible_on(op, &arch.operator(opr).name, chars))?;
        let dur = entry.dur;
        let mut data_ready = TimePs::ZERO;
        for e in algo.in_edges(id) {
            let src = mapping.operator_of(e.from).expect("topological order");
            let route = index.route(src, opr).ok_or_else(|| {
                AdequationError::Graph(GraphError::NoRoute {
                    from: arch.operator(src).name.clone(),
                    to: arch.operator(opr).name.clone(),
                })
            })?;
            let mut t = finish[e.from.0];
            for &m in &route.media {
                let start = t.max(medium_free[m.0]);
                let end = start + arch.medium(m).transfer_time(e.bits);
                if let Some(schedule) = record.as_deref_mut() {
                    schedule.push_medium_item(
                        m,
                        ScheduledItem {
                            kind: ItemKind::Transfer {
                                from: e.from,
                                to: e.to,
                                bits: e.bits,
                                iteration: 0,
                            },
                            start,
                            end,
                        },
                    );
                }
                makespan = makespan.max(end);
                medium_free[m.0] = end;
                t = end;
            }
            data_ready = data_ready.max(t);
        }
        let start = data_ready.max(operator_free[opr.0]);
        let end = start + dur;
        if !dur.is_zero() {
            if let Some(schedule) = record.as_deref_mut() {
                schedule.push_operator_item(
                    opr,
                    ScheduledItem {
                        kind: ItemKind::Compute {
                            op: id,
                            function: index.fn_name(algo, id, entry.last_fn()),
                            iteration: 0,
                        },
                        start,
                        end,
                    },
                );
            }
            makespan = makespan.max(end);
            operator_free[opr.0] = end;
        }
        finish[id.0] = end;
    }
    Ok(makespan)
}

/// Reconstruct the pre-index infeasibility error: name the first function
/// whose characterization entry is missing (the matrix only records *that*
/// the pair is infeasible). Error path only — never hot.
fn infeasible_on(op: &Operation, opr_name: &str, chars: &Characterization) -> AdequationError {
    let f = op
        .kind
        .functions()
        .iter()
        .find(|f| chars.duration(f, opr_name).is_none())
        .cloned()
        .unwrap_or_default();
    AdequationError::Unmappable {
        operation: op.name.clone(),
        reason: format!("`{f}` infeasible on `{opr_name}`"),
    }
}

/// Objective: makespan plus the expected reconfiguration penalty of
/// conditioned operations placed on dynamic operators.
fn objective(
    algo: &AlgorithmGraph,
    arch: &ArchGraph,
    chars: &Characterization,
    index: &AdequationIndex,
    mapping: &Mapping,
    options: &AdequationOptions,
) -> Result<TimePs, AdequationError> {
    let makespan = run_fixed_mapping(algo, arch, chars, index, mapping, None)?;
    let mut total = makespan;
    if options.reconfig_aware {
        for cond in algo.conditioned_ops() {
            let opr = mapping.operator_of(cond).expect("complete mapping");
            if index.is_dynamic(opr) {
                let worst = index.reconfig_worst(cond, opr);
                total += TimePs::from_ps(
                    (worst.as_ps() as f64 * options.switch_probability).round() as u64,
                );
            }
        }
    }
    Ok(total)
}

/// Feasible operators per operation (same rules as the greedy heuristic).
fn feasible_sets(
    algo: &AlgorithmGraph,
    arch: &ArchGraph,
    chars: &Characterization,
    constraints: &ConstraintsFile,
    options: &AdequationOptions,
) -> Result<Vec<Vec<OperatorId>>, AdequationError> {
    let mut pins: HashMap<&str, OperatorId> = HashMap::new();
    for (op_name, opr_name) in &options.pins {
        let opr = arch
            .operator_by_name(opr_name)
            .ok_or_else(|| AdequationError::Graph(GraphError::UnknownVertex(opr_name.clone())))?;
        pins.insert(op_name.as_str(), opr);
    }
    let mut sets = Vec::with_capacity(algo.len());
    for (_, op) in algo.ops() {
        if let Some(&p) = pins.get(op.name.as_str()) {
            sets.push(vec![p]);
            continue;
        }
        let constrained: Option<&str> = op
            .kind
            .functions()
            .iter()
            .find_map(|f| constraints.module(f).map(|m| m.region.as_str()));
        let set: Vec<OperatorId> = arch
            .operators()
            .filter(|(_, o)| {
                if let Some(region) = constrained {
                    return o.name == region;
                }
                op.kind.functions().is_empty()
                    || op
                        .kind
                        .functions()
                        .iter()
                        .all(|f| chars.feasible(f, &o.name))
            })
            .map(|(id, _)| id)
            .collect();
        if set.is_empty() {
            return Err(AdequationError::Unmappable {
                operation: op.name.clone(),
                reason: "no feasible operator".into(),
            });
        }
        sets.push(set);
    }
    Ok(sets)
}

/// Run simulated annealing; returns the best mapping found, its schedule,
/// and the number of accepted moves (diagnostics).
pub fn anneal(
    algo: &AlgorithmGraph,
    arch: &ArchGraph,
    chars: &Characterization,
    constraints: &ConstraintsFile,
    options: &AnnealOptions,
) -> Result<(Mapping, Schedule, TimePs, u32), AdequationError> {
    algo.validate()?;
    constraints.validate()?;
    let sets = feasible_sets(algo, arch, chars, constraints, &options.base)?;
    // One index shared across every move: the per-evaluation cost is pure
    // table arithmetic.
    let index = AdequationIndex::build(algo, arch, chars)?;
    let mut rng = SplitMix64::new(options.seed);

    // Initial mapping: first feasible operator each.
    let mut current = Mapping::new();
    for (i, (id, _)) in algo.ops().enumerate() {
        current.assign(id, sets[i][0]);
    }
    let mut current_cost = objective(algo, arch, chars, &index, &current, &options.base)?;
    let mut best = current.clone();
    let mut best_cost = current_cost;
    let mut accepted = 0u32;
    let mut temp = options.initial_temp_ps;

    let movable: Vec<usize> = (0..algo.len()).filter(|&i| sets[i].len() > 1).collect();
    if movable.is_empty() {
        current.validate(algo, arch, chars, constraints)?;
        let mut schedule = Schedule::new();
        let makespan = run_fixed_mapping(algo, arch, chars, &index, &current, Some(&mut schedule))?;
        return Ok((current, schedule, makespan, 0));
    }

    for _ in 0..options.moves {
        let slot = movable[(rng.next_u64() % movable.len() as u64) as usize];
        let id = OpId(slot);
        let old = current.operator_of(id).expect("assigned");
        let choices = &sets[slot];
        let candidate = choices[(rng.next_u64() % choices.len() as u64) as usize];
        if candidate == old {
            temp *= options.cooling;
            continue;
        }
        current.assign(id, candidate);
        let cost = objective(algo, arch, chars, &index, &current, &options.base)?;
        let delta = cost.as_ps() as f64 - current_cost.as_ps() as f64;
        let accept = if delta <= 0.0 {
            true
        } else if temp > 0.0 {
            let p = (-delta / temp).exp();
            (rng.next_u64() as f64 / u64::MAX as f64) < p
        } else {
            false
        };
        if accept {
            current_cost = cost;
            accepted += 1;
            if cost < best_cost {
                best_cost = cost;
                best = current.clone();
            }
        } else {
            current.assign(id, old);
        }
        temp *= options.cooling;
    }

    best.validate(algo, arch, chars, constraints)?;
    let mut schedule = Schedule::new();
    let makespan = run_fixed_mapping(algo, arch, chars, &index, &best, Some(&mut schedule))?;
    Ok((best, schedule, makespan, accepted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::quality_ratio;
    use crate::heuristic::adequate;
    use pdr_graph::paper;

    fn paper_setup() -> (AlgorithmGraph, ArchGraph, Characterization, ConstraintsFile) {
        (
            paper::mccdma_algorithm(),
            paper::sundance_architecture(),
            paper::mccdma_characterization(),
            paper::mccdma_constraints(),
        )
    }

    fn paper_pins() -> AdequationOptions {
        AdequationOptions::default()
            .pin("interface_in", "dsp")
            .pin("select", "dsp")
            .pin("interface_out", "fpga_static")
    }

    #[test]
    fn annealed_mapping_is_valid_and_bounded() {
        let (algo, arch, chars, cons) = paper_setup();
        let opts = AnnealOptions {
            base: paper_pins(),
            moves: 500,
            ..Default::default()
        };
        let (mapping, schedule, makespan, _) = anneal(&algo, &arch, &chars, &cons, &opts).unwrap();
        mapping.validate(&algo, &arch, &chars, &cons).unwrap();
        schedule.validate().unwrap();
        let q = quality_ratio(makespan, &algo, &arch, &chars).unwrap();
        assert!(q >= 1.0);
        assert!(q < 2.0, "quality ratio {q}");
    }

    #[test]
    fn annealing_matches_or_beats_greedy_on_the_case_study() {
        let (algo, arch, chars, cons) = paper_setup();
        let greedy = adequate(&algo, &arch, &chars, &cons, &paper_pins()).unwrap();
        let opts = AnnealOptions {
            base: paper_pins(),
            moves: 1_500,
            ..Default::default()
        };
        let (_, _, annealed_makespan, _) = anneal(&algo, &arch, &chars, &cons, &opts).unwrap();
        // Annealing may not beat greedy on a near-chain graph, but must be
        // within 10 % of it (it explores the same space globally).
        let ratio = annealed_makespan.as_ps() as f64 / greedy.makespan.as_ps() as f64;
        assert!(ratio < 1.1, "annealed/greedy = {ratio}");
    }

    #[test]
    fn annealing_fixes_a_greedy_trap() {
        // Two parallel chains and two identical processors connected by a
        // slow bus. Greedy EFT places the first chain's head on cpu1, then
        // the second chain's head *also* on cpu1 (its EFT there is equal —
        // transfers make cpu2 look no better, and the tie breaks low).
        // The balanced split is strictly better; annealing finds it.
        let mut arch = ArchGraph::new("dual");
        let c1 = arch.add_operator("cpu1", OperatorKind::Processor).unwrap();
        let c2 = arch.add_operator("cpu2", OperatorKind::Processor).unwrap();
        let bus = arch
            .add_medium("bus", MediumKind::Bus, 1_000_000_000, TimePs::from_ns(100))
            .unwrap();
        arch.link(c1, bus).unwrap();
        arch.link(c2, bus).unwrap();

        let mut g = AlgorithmGraph::new("two_chains");
        let mut chars = Characterization::new();
        let s = g.add_op("s", OpKind::Source).unwrap();
        let k = g.add_op("k", OpKind::Sink).unwrap();
        for chain in 0..2 {
            let mut prev = s;
            for step in 0..3 {
                let name = format!("c{chain}_{step}");
                let id = g.add_compute(&name).unwrap();
                chars.set_duration(&name, "cpu1", TimePs::from_us(100));
                chars.set_duration(&name, "cpu2", TimePs::from_us(100));
                g.connect(prev, id, 8).unwrap();
                prev = id;
            }
            g.connect(prev, k, 8).unwrap();
        }

        let opts = AnnealOptions {
            moves: 3_000,
            initial_temp_ps: 200_000_000.0,
            ..Default::default()
        };
        let (_, _, annealed, _) =
            anneal(&g, &arch, &chars, &ConstraintsFile::new(), &opts).unwrap();
        // Balanced: 300 us (+ negligible transfers). Serialized: 600 us.
        assert!(
            annealed < TimePs::from_us(320),
            "annealing should balance the chains: {annealed}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let (algo, arch, chars, cons) = paper_setup();
        let opts = AnnealOptions {
            base: paper_pins(),
            moves: 300,
            ..Default::default()
        };
        let a = anneal(&algo, &arch, &chars, &cons, &opts).unwrap();
        let b = anneal(&algo, &arch, &chars, &cons, &opts).unwrap();
        assert_eq!(a.0, b.0);
        assert_eq!(a.2, b.2);
        let other = AnnealOptions { seed: 999, ..opts };
        // Different seed may land elsewhere but must stay valid.
        let c = anneal(&algo, &arch, &chars, &cons, &other).unwrap();
        c.0.validate(&algo, &arch, &chars, &cons).unwrap();
    }

    #[test]
    fn reconfig_aware_objective_avoids_dynamic_region() {
        let (algo, arch, mut chars, _) = paper_setup();
        // Make op_dyn tempting for makespan...
        chars.set_duration("mod_qpsk", "op_dyn", TimePs::from_us(1));
        chars.set_duration("mod_qam16", "op_dyn", TimePs::from_us(1));
        let free = ConstraintsFile::new();
        let opts = AnnealOptions {
            base: AdequationOptions {
                reconfig_aware: true,
                switch_probability: 0.9,
                ..paper_pins()
            },
            moves: 2_000,
            ..Default::default()
        };
        let (mapping, ..) = anneal(&algo, &arch, &chars, &free, &opts).unwrap();
        let cond = algo.by_name("modulation").unwrap();
        let placed = &arch.operator(mapping.operator_of(cond).unwrap()).name;
        assert_ne!(placed, "op_dyn", "0.9 switch probability must repel");
    }
}
