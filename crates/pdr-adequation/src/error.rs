//! Error type for the adequation step.

use pdr_graph::GraphError;
use std::fmt;

/// Errors raised while mapping, scheduling, or generating executives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdequationError {
    /// An operation has no operator it can execute on (empty feasible set,
    /// possibly after constraints filtering).
    Unmappable {
        /// Operation name.
        operation: String,
        /// Why the feasible set is empty.
        reason: String,
    },
    /// The constraints file contradicts the mapping (e.g. a module pinned to
    /// a region that is not a dynamic operator of the architecture).
    ConstraintConflict(String),
    /// A selector trace entry is out of range for the conditioned operation.
    BadSelector {
        /// Conditioned operation name.
        operation: String,
        /// Offending selector value.
        value: usize,
        /// Number of alternatives.
        alternatives: usize,
    },
    /// Underlying graph error (validation, missing characterization, routing).
    Graph(GraphError),
    /// Schedule failed an internal consistency check.
    InvalidSchedule(String),
}

impl fmt::Display for AdequationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdequationError::Unmappable { operation, reason } => {
                write!(f, "operation `{operation}` cannot be mapped: {reason}")
            }
            AdequationError::ConstraintConflict(msg) => {
                write!(f, "constraints conflict: {msg}")
            }
            AdequationError::BadSelector {
                operation,
                value,
                alternatives,
            } => write!(
                f,
                "selector value {value} out of range for `{operation}` \
                 ({alternatives} alternatives)"
            ),
            AdequationError::Graph(e) => write!(f, "{e}"),
            AdequationError::InvalidSchedule(msg) => write!(f, "invalid schedule: {msg}"),
        }
    }
}

impl std::error::Error for AdequationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AdequationError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for AdequationError {
    fn from(e: GraphError) -> Self {
        AdequationError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = AdequationError::Unmappable {
            operation: "ifft".into(),
            reason: "no feasible operator".into(),
        };
        assert!(e.to_string().contains("ifft"));

        let g: AdequationError = GraphError::UnknownVertex("x".into()).into();
        assert!(std::error::Error::source(&g).is_some());
        assert!(g.to_string().contains("`x`"));
    }
}
