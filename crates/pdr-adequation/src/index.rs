//! `AdequationIndex` — the precomputation layer behind the fast scheduler.
//!
//! The adequation inner loops probe four things over and over: the WCET of
//! an operation on a candidate operator (a max over function symbols, each
//! a string-keyed characterization lookup), the media route between two
//! operators (a BFS in the seed), the graph neighbourhoods, and the
//! critical-path bottom levels. All four are functions of the *inputs*
//! only — not of scheduling state — so one pass can compute them into
//! dense, index-addressed tables:
//!
//! * a **WCET matrix** (`n_ops × n_operators`): per cell the worst-case
//!   duration plus which function symbol attains it, under both tie-break
//!   conventions the crate uses (see [`WcetEntry`]);
//! * an **all-pairs route table** (`n_operators × n_operators`): one full
//!   BFS per operator via [`ArchGraph::routes_from`], yielding routes
//!   identical to the pairwise [`ArchGraph::route`] queries;
//! * the **topological order** and per-operation **bottom levels** (the
//!   list scheduler's priority function);
//! * the worst **reconfiguration time** per (conditioned op, operator),
//!   feeding the expected-penalty term of the reconfiguration-aware cost
//!   model.
//!
//! The index is built once per `adequate()` call and once per annealing
//! *run* (shared across all moves). Everything it returns is what the
//! pre-index code computed on the fly — `tests/adequation_equivalence.rs`
//! and `pdr-bench`'s `adequation_perf` study hold the two paths to
//! byte-identical results.

use crate::error::AdequationError;
use pdr_fabric::TimePs;
use pdr_graph::prelude::*;

/// Sentinel function index for operations with no function symbols
/// (sources and sinks): they cost zero everywhere and schedule items never
/// name a function for them.
const NO_FN: u32 = u32::MAX;

/// One cell of the WCET matrix: the worst-case duration of an operation on
/// an operator, and which of the operation's functions attains it.
///
/// Two tie-break conventions coexist in the crate and both are preserved:
/// the greedy heuristic's `wcet_on` kept the *first* function reaching the
/// max (strict `>` update), while the annealing scheduler kept the *last*
/// (`>=` update from zero). A cell stores both so either caller reproduces
/// its seed behaviour exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WcetEntry {
    /// Worst-case duration across the operation's functions.
    pub dur: TimePs,
    /// Index (into `op.kind.functions()`) of the first function attaining
    /// `dur`; `NO_FN` for sources/sinks.
    first_fn: u32,
    /// Index of the last function attaining `dur`; `NO_FN` for
    /// sources/sinks.
    last_fn: u32,
}

impl WcetEntry {
    /// Function index under the greedy heuristic's first-max convention.
    pub fn first_fn(&self) -> Option<usize> {
        (self.first_fn != NO_FN).then_some(self.first_fn as usize)
    }

    /// Function index under the annealing scheduler's last-max convention.
    pub fn last_fn(&self) -> Option<usize> {
        (self.last_fn != NO_FN).then_some(self.last_fn as usize)
    }
}

/// Precomputed tables shared by the indexed schedulers. Borrowing nothing:
/// build once, use against the same `(algo, arch, chars)` triple.
#[derive(Debug, Clone)]
pub struct AdequationIndex {
    n_oprs: usize,
    /// `n_ops × n_oprs`, row-major by operation: WCET or infeasibility.
    wcet: Vec<Option<WcetEntry>>,
    /// `n_oprs × n_oprs`, row-major by source: cached routes (`None` when
    /// unreachable).
    routes: Vec<Option<Route>>,
    /// Topological order of the operations.
    topo: Vec<OpId>,
    /// Critical-path bottom level per operation (indexed by `OpId`).
    bottom_levels: Vec<TimePs>,
    /// `n_ops × n_oprs`: worst reconfiguration time across the operation's
    /// functions (filled for conditioned operations only; zero elsewhere).
    reconfig_worst: Vec<TimePs>,
    /// Per operator: is it runtime-reconfigurable?
    dynamic: Vec<bool>,
    /// Per operation: is it conditioned?
    conditioned: Vec<bool>,
}

impl AdequationIndex {
    /// Build every table. Fails only on a cyclic algorithm graph (the
    /// topological sort propagates the same [`GraphError::Cycle`] the
    /// pre-index path produced).
    pub fn build(
        algo: &AlgorithmGraph,
        arch: &ArchGraph,
        chars: &Characterization,
    ) -> Result<Self, AdequationError> {
        let n_ops = algo.len();
        let n_oprs = arch.operator_count();

        // WCET matrix. One pass over (op, operator, function) — the last
        // time these string lookups happen.
        let mut wcet = Vec::with_capacity(n_ops * n_oprs);
        for (_, op) in algo.ops() {
            let funcs = op.kind.functions();
            for (_, o) in arch.operators() {
                wcet.push(Self::wcet_cell(funcs, &o.name, chars));
            }
        }

        // All-pairs route table: one full BFS per operator.
        let mut routes = Vec::with_capacity(n_oprs * n_oprs);
        for (from, _) in arch.operators() {
            routes.extend(arch.routes_from(from));
        }

        let topo = algo.topo_order()?;

        // Bottom levels over the matrix: best-case duration plus the max
        // successor level, walked in reverse topological order.
        let mut bottom_levels = vec![TimePs::ZERO; n_ops];
        for &id in topo.iter().rev() {
            let best = wcet[id.0 * n_oprs..(id.0 + 1) * n_oprs]
                .iter()
                .filter_map(|c| c.as_ref().map(|e| e.dur))
                .min()
                .unwrap_or(TimePs::ZERO);
            let succ_max = algo
                .out_edges(id)
                .map(|e| bottom_levels[e.to.0])
                .max()
                .unwrap_or(TimePs::ZERO);
            bottom_levels[id.0] = best + succ_max;
        }

        let dynamic: Vec<bool> = arch.operators().map(|(_, o)| o.kind.is_dynamic()).collect();
        let conditioned: Vec<bool> = algo.ops().map(|(_, o)| o.kind.is_conditioned()).collect();

        // Worst reconfiguration time per (conditioned op, operator).
        let mut reconfig_worst = vec![TimePs::ZERO; n_ops * n_oprs];
        for (id, op) in algo.ops() {
            if !op.kind.is_conditioned() {
                continue;
            }
            for (opr, o) in arch.operators() {
                reconfig_worst[id.0 * n_oprs + opr.0] = op
                    .kind
                    .functions()
                    .iter()
                    .filter_map(|f| chars.reconfig_time(f, &o.name).ok())
                    .max()
                    .unwrap_or(TimePs::ZERO);
            }
        }

        Ok(AdequationIndex {
            n_oprs,
            wcet,
            routes,
            topo,
            bottom_levels,
            reconfig_worst,
            dynamic,
            conditioned,
        })
    }

    /// One WCET cell: max duration over `funcs` on `operator`, tracking
    /// first- and last-max function indices; `None` when any function is
    /// infeasible there (matching the seed's `wcet_on` semantics).
    fn wcet_cell(funcs: &[String], operator: &str, chars: &Characterization) -> Option<WcetEntry> {
        if funcs.is_empty() {
            return Some(WcetEntry {
                dur: TimePs::ZERO,
                first_fn: NO_FN,
                last_fn: NO_FN,
            });
        }
        let mut entry: Option<WcetEntry> = None;
        for (i, f) in funcs.iter().enumerate() {
            let d = chars.duration(f, operator)?;
            match &mut entry {
                None => {
                    entry = Some(WcetEntry {
                        dur: d,
                        first_fn: i as u32,
                        last_fn: i as u32,
                    });
                }
                Some(e) if d > e.dur => {
                    e.dur = d;
                    e.first_fn = i as u32;
                    e.last_fn = i as u32;
                }
                Some(e) if d == e.dur => e.last_fn = i as u32,
                Some(_) => {}
            }
        }
        entry
    }

    /// Operator count the matrix was built for.
    pub fn operator_count(&self) -> usize {
        self.n_oprs
    }

    /// WCET cell of (operation, operator); `None` means infeasible.
    #[inline]
    pub fn wcet(&self, op: OpId, opr: OperatorId) -> Option<&WcetEntry> {
        self.wcet[op.0 * self.n_oprs + opr.0].as_ref()
    }

    /// Cached route between two operators (`None` when unreachable).
    #[inline]
    pub fn route(&self, from: OperatorId, to: OperatorId) -> Option<&Route> {
        self.routes[from.0 * self.n_oprs + to.0].as_ref()
    }

    /// The topological order computed at build time.
    pub fn topo(&self) -> &[OpId] {
        &self.topo
    }

    /// Critical-path bottom level of an operation.
    #[inline]
    pub fn bottom_level(&self, op: OpId) -> TimePs {
        self.bottom_levels[op.0]
    }

    /// Worst reconfiguration time across the functions of a conditioned
    /// operation on an operator (zero for unconditioned operations).
    #[inline]
    pub fn reconfig_worst(&self, op: OpId, opr: OperatorId) -> TimePs {
        self.reconfig_worst[op.0 * self.n_oprs + opr.0]
    }

    /// Is the operator runtime-reconfigurable?
    #[inline]
    pub fn is_dynamic(&self, opr: OperatorId) -> bool {
        self.dynamic[opr.0]
    }

    /// Is the operation conditioned?
    #[inline]
    pub fn is_conditioned(&self, op: OpId) -> bool {
        self.conditioned[op.0]
    }

    /// Resolve a stored function index back to its symbol, cloning for
    /// schedule items (`String::new()` for the source/sink sentinel, as
    /// the seed produced).
    pub fn fn_name(&self, algo: &AlgorithmGraph, op: OpId, fn_idx: Option<usize>) -> String {
        match fn_idx {
            Some(i) => algo.op(op).kind.functions()[i].clone(),
            None => String::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_graph::paper;

    fn paper_index() -> (AlgorithmGraph, ArchGraph, Characterization, AdequationIndex) {
        let algo = paper::mccdma_algorithm();
        let arch = paper::sundance_architecture();
        let chars = paper::mccdma_characterization();
        let index = AdequationIndex::build(&algo, &arch, &chars).unwrap();
        (algo, arch, chars, index)
    }

    #[test]
    fn matrix_agrees_with_direct_probes() {
        let (algo, arch, chars, index) = paper_index();
        for (id, op) in algo.ops() {
            for (opr, o) in arch.operators() {
                let direct: Option<TimePs> = if op.kind.functions().is_empty() {
                    Some(TimePs::ZERO)
                } else {
                    op.kind
                        .functions()
                        .iter()
                        .map(|f| chars.duration(f, &o.name))
                        .collect::<Option<Vec<_>>>()
                        .map(|ds| ds.into_iter().max().unwrap())
                };
                assert_eq!(index.wcet(id, opr).map(|e| e.dur), direct);
            }
        }
    }

    #[test]
    fn route_table_agrees_with_pairwise_bfs() {
        let (_, arch, _, index) = paper_index();
        for (a, _) in arch.operators() {
            for (b, _) in arch.operators() {
                assert_eq!(index.route(a, b), arch.route(a, b).ok().as_ref());
            }
        }
    }

    #[test]
    fn tie_breaks_track_first_and_last_max() {
        // Two alternatives with equal durations on one operator: first-max
        // must pick index 0, last-max index 1.
        let mut algo = AlgorithmGraph::new("t");
        let s = algo.add_op("s", OpKind::Source).unwrap();
        let c = algo
            .add_op(
                "c",
                OpKind::Conditioned {
                    alternatives: vec!["f0".into(), "f1".into()],
                },
            )
            .unwrap();
        let k = algo.add_op("k", OpKind::Sink).unwrap();
        algo.connect(s, c, 8).unwrap();
        algo.connect(c, k, 8).unwrap();
        let mut arch = ArchGraph::new("t");
        let cpu = arch.add_operator("cpu", OperatorKind::Processor).unwrap();
        let mut chars = Characterization::new();
        chars.set_duration("f0", "cpu", TimePs::from_us(5));
        chars.set_duration("f1", "cpu", TimePs::from_us(5));
        let index = AdequationIndex::build(&algo, &arch, &chars).unwrap();
        let e = index.wcet(c, cpu).unwrap();
        assert_eq!(e.first_fn(), Some(0));
        assert_eq!(e.last_fn(), Some(1));
        assert_eq!(index.fn_name(&algo, c, e.first_fn()), "f0");
        assert_eq!(index.fn_name(&algo, c, e.last_fn()), "f1");
        // Sources carry the sentinel.
        let se = index.wcet(s, cpu).unwrap();
        assert_eq!(se.first_fn(), None);
        assert_eq!(index.fn_name(&algo, s, se.first_fn()), "");
    }

    #[test]
    fn bottom_levels_match_reference_recursion() {
        let (algo, arch, chars, index) = paper_index();
        // Recompute with the pre-index recursion and compare.
        let order = algo.topo_order().unwrap();
        let mut bl = std::collections::HashMap::new();
        for &id in order.iter().rev() {
            let op = algo.op(id);
            let best = arch
                .operators()
                .filter_map(|(_, o)| {
                    if op.kind.functions().is_empty() {
                        Some(TimePs::ZERO)
                    } else {
                        op.kind
                            .functions()
                            .iter()
                            .map(|f| chars.duration(f, &o.name))
                            .collect::<Option<Vec<_>>>()
                            .map(|ds| ds.into_iter().max().unwrap())
                    }
                })
                .min()
                .unwrap_or(TimePs::ZERO);
            let succ_max = algo
                .successors(id)
                .into_iter()
                .map(|s| bl[&s])
                .max()
                .unwrap_or(TimePs::ZERO);
            bl.insert(id, best + succ_max);
        }
        for (id, _) in algo.ops() {
            assert_eq!(index.bottom_level(id), bl[&id], "{}", algo.op(id).name);
        }
    }

    #[test]
    fn conditioned_reconfig_worst_is_filled() {
        let (algo, arch, _, index) = paper_index();
        let modu = algo.by_name("modulation").unwrap();
        let dynop = arch.operator_by_name("op_dyn").unwrap();
        assert!(index.is_conditioned(modu));
        assert!(index.is_dynamic(dynop));
        assert!(index.reconfig_worst(modu, dynop) > TimePs::ZERO);
        let ifft = algo.by_name("ifft64").unwrap();
        assert_eq!(index.reconfig_worst(ifft, dynop), TimePs::ZERO);
    }

    #[test]
    fn cycle_propagates_build_error() {
        let mut algo = AlgorithmGraph::new("t");
        let a = algo.add_compute("a").unwrap();
        let b = algo.add_compute("b").unwrap();
        algo.connect(a, b, 8).unwrap();
        algo.connect(b, a, 8).unwrap();
        let arch = ArchGraph::new("t");
        let chars = Characterization::new();
        assert!(matches!(
            AdequationIndex::build(&algo, &arch, &chars),
            Err(AdequationError::Graph(GraphError::Cycle { .. }))
        ));
    }
}
