//! `AdequationIndex` — the precomputation layer behind the fast scheduler.
//!
//! The adequation inner loops probe four things over and over: the WCET of
//! an operation on a candidate operator (a max over function symbols, each
//! a string-keyed characterization lookup), the media route between two
//! operators (a BFS in the seed), the graph neighbourhoods, and the
//! critical-path bottom levels. All four are functions of the *inputs*
//! only — not of scheduling state — so one pass can compute them into
//! dense, index-addressed tables:
//!
//! * a **WCET matrix** (`n_ops × n_operators`): per cell the worst-case
//!   duration plus which function symbol attains it, under both tie-break
//!   conventions the crate uses (see [`WcetEntry`]);
//! * an **all-pairs route table** (`n_operators × n_operators`): one full
//!   BFS per operator via [`ArchGraph::routes_from`], yielding routes
//!   identical to the pairwise [`ArchGraph::route`] queries;
//! * the **topological order** and per-operation **bottom levels** (the
//!   list scheduler's priority function);
//! * the worst **reconfiguration time** per (conditioned op, operator),
//!   feeding the expected-penalty term of the reconfiguration-aware cost
//!   model.
//!
//! The index is built once per `adequate()` call and once per annealing
//! *run* (shared across all moves). Everything it returns is what the
//! pre-index code computed on the fly — `tests/adequation_equivalence.rs`
//! and `pdr-bench`'s `adequation_perf` study hold the two paths to
//! byte-identical results.

use crate::error::AdequationError;
use pdr_fabric::TimePs;
use pdr_graph::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Sentinel function index for operations with no function symbols
/// (sources and sinks): they cost zero everywhere and schedule items never
/// name a function for them.
const NO_FN: u32 = u32::MAX;

/// One cell of the WCET matrix: the worst-case duration of an operation on
/// an operator, and which of the operation's functions attains it.
///
/// Two tie-break conventions coexist in the crate and both are preserved:
/// the greedy heuristic's `wcet_on` kept the *first* function reaching the
/// max (strict `>` update), while the annealing scheduler kept the *last*
/// (`>=` update from zero). A cell stores both so either caller reproduces
/// its seed behaviour exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WcetEntry {
    /// Worst-case duration across the operation's functions.
    pub dur: TimePs,
    /// Index (into `op.kind.functions()`) of the first function attaining
    /// `dur`; `NO_FN` for sources/sinks.
    first_fn: u32,
    /// Index of the last function attaining `dur`; `NO_FN` for
    /// sources/sinks.
    last_fn: u32,
}

impl WcetEntry {
    /// Function index under the greedy heuristic's first-max convention.
    pub fn first_fn(&self) -> Option<usize> {
        (self.first_fn != NO_FN).then_some(self.first_fn as usize)
    }

    /// Function index under the annealing scheduler's last-max convention.
    pub fn last_fn(&self) -> Option<usize> {
        (self.last_fn != NO_FN).then_some(self.last_fn as usize)
    }
}

/// Knobs for [`AdequationIndex::build_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexOptions {
    /// Worker threads for the build. `0` or `1` selects the sequential
    /// reference build; anything higher fans the matrix rows across a
    /// worker pool and memoizes the characterization probes (see
    /// [`AdequationIndex::build_with`]).
    pub threads: usize,
}

impl Default for IndexOptions {
    fn default() -> Self {
        IndexOptions { threads: 1 }
    }
}

/// Precomputed tables shared by the indexed schedulers. Borrowing nothing:
/// build once, use against the same `(algo, arch, chars)` triple.
#[derive(Debug, Clone, PartialEq)]
pub struct AdequationIndex {
    n_oprs: usize,
    /// `n_ops × n_oprs`, row-major by operation: WCET or infeasibility.
    wcet: Vec<Option<WcetEntry>>,
    /// `n_oprs × n_oprs`, row-major by source: cached routes (`None` when
    /// unreachable).
    routes: Vec<Option<Route>>,
    /// Topological order of the operations.
    topo: Vec<OpId>,
    /// Critical-path bottom level per operation (indexed by `OpId`).
    bottom_levels: Vec<TimePs>,
    /// `n_ops × n_oprs`: worst reconfiguration time across the operation's
    /// functions (filled for conditioned operations only; zero elsewhere).
    reconfig_worst: Vec<TimePs>,
    /// Per operator: is it runtime-reconfigurable?
    dynamic: Vec<bool>,
    /// Per operation: is it conditioned?
    conditioned: Vec<bool>,
}

impl AdequationIndex {
    /// Build every table. Fails only on a cyclic algorithm graph (the
    /// topological sort propagates the same [`GraphError::Cycle`] the
    /// pre-index path produced).
    pub fn build(
        algo: &AlgorithmGraph,
        arch: &ArchGraph,
        chars: &Characterization,
    ) -> Result<Self, AdequationError> {
        let n_ops = algo.len();
        let n_oprs = arch.operator_count();

        // WCET matrix. One pass over (op, operator, function) — the last
        // time these string lookups happen.
        let mut wcet = Vec::with_capacity(n_ops * n_oprs);
        for (_, op) in algo.ops() {
            let funcs = op.kind.functions();
            for (_, o) in arch.operators() {
                wcet.push(Self::wcet_cell(funcs, &o.name, chars));
            }
        }

        // All-pairs route table: one full BFS per operator.
        let mut routes = Vec::with_capacity(n_oprs * n_oprs);
        for (from, _) in arch.operators() {
            routes.extend(arch.routes_from(from));
        }

        let topo = algo.topo_order()?;

        // Bottom levels over the matrix: best-case duration plus the max
        // successor level, walked in reverse topological order.
        let mut bottom_levels = vec![TimePs::ZERO; n_ops];
        for &id in topo.iter().rev() {
            let best = wcet[id.0 * n_oprs..(id.0 + 1) * n_oprs]
                .iter()
                .filter_map(|c| c.as_ref().map(|e| e.dur))
                .min()
                .unwrap_or(TimePs::ZERO);
            let succ_max = algo
                .out_edges(id)
                .map(|e| bottom_levels[e.to.0])
                .max()
                .unwrap_or(TimePs::ZERO);
            bottom_levels[id.0] = best + succ_max;
        }

        let dynamic: Vec<bool> = arch.operators().map(|(_, o)| o.kind.is_dynamic()).collect();
        let conditioned: Vec<bool> = algo.ops().map(|(_, o)| o.kind.is_conditioned()).collect();

        // Worst reconfiguration time per (conditioned op, operator).
        let mut reconfig_worst = vec![TimePs::ZERO; n_ops * n_oprs];
        for (id, op) in algo.ops() {
            if !op.kind.is_conditioned() {
                continue;
            }
            for (opr, o) in arch.operators() {
                reconfig_worst[id.0 * n_oprs + opr.0] = op
                    .kind
                    .functions()
                    .iter()
                    .filter_map(|f| chars.reconfig_time(f, &o.name).ok())
                    .max()
                    .unwrap_or(TimePs::ZERO);
            }
        }

        Ok(AdequationIndex {
            n_oprs,
            wcet,
            routes,
            topo,
            bottom_levels,
            reconfig_worst,
            dynamic,
            conditioned,
        })
    }

    /// [`AdequationIndex::build`] with an explicit thread count.
    ///
    /// With `threads <= 1` this *is* the sequential build. With more, the
    /// per-operation WCET/reconfiguration rows and the per-operator BFS
    /// route rows are fanned across a scoped worker pool, and the
    /// string-keyed characterization probes are resolved once per
    /// *(function symbol, operator)* pair into dense tables first —
    /// operations sharing function symbols (every generated flow, and any
    /// realistic workspace) stop re-hashing the same strings per row. Rows
    /// land in preallocated per-row slots and are concatenated in
    /// operation/operator order, so the result compares equal to the
    /// sequential build cell for cell regardless of thread count.
    pub fn build_with(
        algo: &AlgorithmGraph,
        arch: &ArchGraph,
        chars: &Characterization,
        options: &IndexOptions,
    ) -> Result<Self, AdequationError> {
        if options.threads <= 1 {
            return Self::build(algo, arch, chars);
        }
        let n_ops = algo.len();
        let n_oprs = arch.operator_count();

        // Fail on cycles before spending any work (same error the
        // sequential build surfaces after its matrix pass).
        let topo = algo.topo_order()?;

        // Intern every function symbol to a dense id and resolve each
        // (symbol, operator) characterization probe exactly once.
        let opr_ids: Vec<OperatorId> = arch.operators().map(|(id, _)| id).collect();
        let opr_names: Vec<&str> = arch.operators().map(|(_, o)| o.name.as_str()).collect();
        let mut fn_ids: HashMap<&str, u32> = HashMap::new();
        let mut fn_names: Vec<&str> = Vec::new();
        // CSR layout: function ids of operation `i` live at
        // `fns_flat[fns_off[i]..fns_off[i + 1]]`.
        let mut fns_flat: Vec<u32> = Vec::new();
        let mut fns_off: Vec<u32> = Vec::with_capacity(n_ops + 1);
        fns_off.push(0);
        for (_, op) in algo.ops() {
            for f in op.kind.functions() {
                let id = *fn_ids.entry(f.as_str()).or_insert_with(|| {
                    fn_names.push(f.as_str());
                    (fn_names.len() - 1) as u32
                });
                fns_flat.push(id);
            }
            fns_off.push(fns_flat.len() as u32);
        }
        let mut durations: Vec<Option<TimePs>> = Vec::with_capacity(fn_names.len() * n_oprs);
        let mut reconfigs: Vec<Option<TimePs>> = Vec::with_capacity(fn_names.len() * n_oprs);
        for f in &fn_names {
            for o in &opr_names {
                durations.push(chars.duration(f, o));
                reconfigs.push(chars.reconfig_time(f, o).ok());
            }
        }

        let conditioned: Vec<bool> = algo.ops().map(|(_, o)| o.kind.is_conditioned()).collect();

        // Preallocated output tables, pre-split into per-block slots:
        // workers claim contiguous blocks of operation rows off a shared
        // cursor and write each block straight into its final position, so
        // the assembly is just dropping the slot vectors — no per-block
        // buffer allocation, no concatenation copy — while every cell
        // still lands where the sequential build would have put it. The
        // per-row feasible-duration minimum (the bottom-level base) is
        // captured on the way while the row is cache-hot.
        const ROW_BLOCK: usize = 64;
        let mut wcet: Vec<Option<WcetEntry>> = vec![None; n_ops * n_oprs];
        let mut reconfig_worst: Vec<TimePs> = vec![TimePs::ZERO; n_ops * n_oprs];
        let mut row_best: Vec<TimePs> = vec![TimePs::ZERO; n_ops];
        let mut routes: Vec<Option<Route>> = vec![None; n_oprs * n_oprs];
        {
            let wcet_slots: Vec<Mutex<&mut [Option<WcetEntry>]>> = wcet
                .chunks_mut((ROW_BLOCK * n_oprs).max(1))
                .map(Mutex::new)
                .collect();
            let reconfig_slots: Vec<Mutex<&mut [TimePs]>> = reconfig_worst
                .chunks_mut((ROW_BLOCK * n_oprs).max(1))
                .map(Mutex::new)
                .collect();
            let best_slots: Vec<Mutex<&mut [TimePs]>> =
                row_best.chunks_mut(ROW_BLOCK).map(Mutex::new).collect();
            let route_slots: Vec<Mutex<&mut [Option<Route>]>> =
                routes.chunks_mut(n_oprs.max(1)).map(Mutex::new).collect();
            // Zero operators leaves zero matrix slots while blocks of
            // (empty) operation rows remain: size the cursor range off the
            // actual slot count so the two stay in step.
            let n_blocks = wcet_slots.len();
            let block_cursor = AtomicUsize::new(0);
            let route_cursor = AtomicUsize::new(0);

            crossbeam::thread::scope(|s| {
                for _ in 0..options.threads {
                    s.spawn(|_| {
                        loop {
                            let blk = block_cursor.fetch_add(1, Ordering::Relaxed);
                            if blk >= n_blocks {
                                break;
                            }
                            let mut wrow = wcet_slots[blk].lock().unwrap();
                            let mut rrow = reconfig_slots[blk].lock().unwrap();
                            let mut brow = best_slots[blk].lock().unwrap();
                            let lo = blk * ROW_BLOCK;
                            let hi = (lo + ROW_BLOCK).min(n_ops);
                            for i in lo..hi {
                                let fids = &fns_flat[fns_off[i] as usize..fns_off[i + 1] as usize];
                                let out = &mut wrow[(i - lo) * n_oprs..(i - lo + 1) * n_oprs];
                                let mut best: Option<TimePs> = None;
                                if let [f] = fids {
                                    // Single-function fast path (the
                                    // overwhelmingly common row shape):
                                    // the row is the function's dense
                                    // probe row, verbatim.
                                    let base = *f as usize * n_oprs;
                                    let drow = &durations[base..base + n_oprs];
                                    for (cell, d) in out.iter_mut().zip(drow) {
                                        *cell = d.map(|dur| WcetEntry {
                                            dur,
                                            first_fn: 0,
                                            last_fn: 0,
                                        });
                                        if let Some(dur) = *d {
                                            best = Some(best.map_or(dur, |b: TimePs| b.min(dur)));
                                        }
                                    }
                                } else {
                                    for (opr, cell) in out.iter_mut().enumerate() {
                                        *cell =
                                            Self::wcet_cell_interned(fids, opr, n_oprs, &durations);
                                        if let Some(e) = cell {
                                            let d = e.dur;
                                            best = Some(best.map_or(d, |b: TimePs| b.min(d)));
                                        }
                                    }
                                }
                                brow[i - lo] = best.unwrap_or(TimePs::ZERO);
                                if conditioned[i] {
                                    let row = &mut rrow[(i - lo) * n_oprs..(i - lo + 1) * n_oprs];
                                    for (opr, cell) in row.iter_mut().enumerate() {
                                        *cell = fids
                                            .iter()
                                            .filter_map(|&f| reconfigs[f as usize * n_oprs + opr])
                                            .max()
                                            .unwrap_or(TimePs::ZERO);
                                    }
                                }
                            }
                        }
                        loop {
                            let i = route_cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n_oprs {
                                break;
                            }
                            let mut row = route_slots[i].lock().unwrap();
                            for (dst, src) in row.iter_mut().zip(arch.routes_from(opr_ids[i])) {
                                *dst = src;
                            }
                        }
                    });
                }
            })
            .expect("index build worker panicked");
        }

        // Bottom levels: same recursion as the sequential build, with the
        // per-row minima already in hand.
        let mut bottom_levels = vec![TimePs::ZERO; n_ops];
        for &id in topo.iter().rev() {
            let succ_max = algo
                .out_edges(id)
                .map(|e| bottom_levels[e.to.0])
                .max()
                .unwrap_or(TimePs::ZERO);
            bottom_levels[id.0] = row_best[id.0] + succ_max;
        }

        let dynamic: Vec<bool> = arch.operators().map(|(_, o)| o.kind.is_dynamic()).collect();

        Ok(AdequationIndex {
            n_oprs,
            wcet,
            routes,
            topo,
            bottom_levels,
            reconfig_worst,
            dynamic,
            conditioned,
        })
    }

    /// [`AdequationIndex::wcet_cell`] over interned function ids and the
    /// dense probe table — the same max/tie-break recurrence over the same
    /// duration sequence, so the cells are identical.
    fn wcet_cell_interned(
        fids: &[u32],
        opr: usize,
        n_oprs: usize,
        durations: &[Option<TimePs>],
    ) -> Option<WcetEntry> {
        if fids.is_empty() {
            return Some(WcetEntry {
                dur: TimePs::ZERO,
                first_fn: NO_FN,
                last_fn: NO_FN,
            });
        }
        let mut entry: Option<WcetEntry> = None;
        for (i, &f) in fids.iter().enumerate() {
            let d = durations[f as usize * n_oprs + opr]?;
            match &mut entry {
                None => {
                    entry = Some(WcetEntry {
                        dur: d,
                        first_fn: i as u32,
                        last_fn: i as u32,
                    });
                }
                Some(e) if d > e.dur => {
                    e.dur = d;
                    e.first_fn = i as u32;
                    e.last_fn = i as u32;
                }
                Some(e) if d == e.dur => e.last_fn = i as u32,
                Some(_) => {}
            }
        }
        entry
    }

    /// One WCET cell: max duration over `funcs` on `operator`, tracking
    /// first- and last-max function indices; `None` when any function is
    /// infeasible there (matching the seed's `wcet_on` semantics).
    fn wcet_cell(funcs: &[String], operator: &str, chars: &Characterization) -> Option<WcetEntry> {
        if funcs.is_empty() {
            return Some(WcetEntry {
                dur: TimePs::ZERO,
                first_fn: NO_FN,
                last_fn: NO_FN,
            });
        }
        let mut entry: Option<WcetEntry> = None;
        for (i, f) in funcs.iter().enumerate() {
            let d = chars.duration(f, operator)?;
            match &mut entry {
                None => {
                    entry = Some(WcetEntry {
                        dur: d,
                        first_fn: i as u32,
                        last_fn: i as u32,
                    });
                }
                Some(e) if d > e.dur => {
                    e.dur = d;
                    e.first_fn = i as u32;
                    e.last_fn = i as u32;
                }
                Some(e) if d == e.dur => e.last_fn = i as u32,
                Some(_) => {}
            }
        }
        entry
    }

    /// Operator count the matrix was built for.
    pub fn operator_count(&self) -> usize {
        self.n_oprs
    }

    /// WCET cell of (operation, operator); `None` means infeasible.
    #[inline]
    pub fn wcet(&self, op: OpId, opr: OperatorId) -> Option<&WcetEntry> {
        self.wcet[op.0 * self.n_oprs + opr.0].as_ref()
    }

    /// The full WCET row of an operation (`n_oprs` cells, indexed by
    /// operator). Hot loops hoist the row once per operation instead of
    /// paying the row-base multiply per candidate probe.
    #[inline]
    pub fn wcet_row(&self, op: OpId) -> &[Option<WcetEntry>] {
        &self.wcet[op.0 * self.n_oprs..(op.0 + 1) * self.n_oprs]
    }

    /// Cached route between two operators (`None` when unreachable).
    #[inline]
    pub fn route(&self, from: OperatorId, to: OperatorId) -> Option<&Route> {
        self.routes[from.0 * self.n_oprs + to.0].as_ref()
    }

    /// The raw all-pairs route table, row-major by source operator
    /// (`n_oprs × n_oprs`). Hot loops hoist a source's row base
    /// (`src.0 * operator_count()`) once per operation and index the
    /// slice per candidate, instead of paying the multiply-and-lookup
    /// per probe.
    #[inline]
    pub fn route_table(&self) -> &[Option<Route>] {
        &self.routes
    }

    /// The topological order computed at build time.
    pub fn topo(&self) -> &[OpId] {
        &self.topo
    }

    /// Critical-path bottom level of an operation.
    #[inline]
    pub fn bottom_level(&self, op: OpId) -> TimePs {
        self.bottom_levels[op.0]
    }

    /// Worst reconfiguration time across the functions of a conditioned
    /// operation on an operator (zero for unconditioned operations).
    #[inline]
    pub fn reconfig_worst(&self, op: OpId, opr: OperatorId) -> TimePs {
        self.reconfig_worst[op.0 * self.n_oprs + opr.0]
    }

    /// Is the operator runtime-reconfigurable?
    #[inline]
    pub fn is_dynamic(&self, opr: OperatorId) -> bool {
        self.dynamic[opr.0]
    }

    /// Is the operation conditioned?
    #[inline]
    pub fn is_conditioned(&self, op: OpId) -> bool {
        self.conditioned[op.0]
    }

    /// Resolve a stored function index back to its symbol, cloning for
    /// schedule items (`String::new()` for the source/sink sentinel, as
    /// the seed produced).
    pub fn fn_name(&self, algo: &AlgorithmGraph, op: OpId, fn_idx: Option<usize>) -> String {
        match fn_idx {
            Some(i) => algo.op(op).kind.functions()[i].clone(),
            None => String::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_graph::paper;

    fn paper_index() -> (AlgorithmGraph, ArchGraph, Characterization, AdequationIndex) {
        let algo = paper::mccdma_algorithm();
        let arch = paper::sundance_architecture();
        let chars = paper::mccdma_characterization();
        let index = AdequationIndex::build(&algo, &arch, &chars).unwrap();
        (algo, arch, chars, index)
    }

    #[test]
    fn matrix_agrees_with_direct_probes() {
        let (algo, arch, chars, index) = paper_index();
        for (id, op) in algo.ops() {
            for (opr, o) in arch.operators() {
                let direct: Option<TimePs> = if op.kind.functions().is_empty() {
                    Some(TimePs::ZERO)
                } else {
                    op.kind
                        .functions()
                        .iter()
                        .map(|f| chars.duration(f, &o.name))
                        .collect::<Option<Vec<_>>>()
                        .map(|ds| ds.into_iter().max().unwrap())
                };
                assert_eq!(index.wcet(id, opr).map(|e| e.dur), direct);
            }
        }
    }

    #[test]
    fn route_table_agrees_with_pairwise_bfs() {
        let (_, arch, _, index) = paper_index();
        for (a, _) in arch.operators() {
            for (b, _) in arch.operators() {
                assert_eq!(index.route(a, b), arch.route(a, b).ok().as_ref());
            }
        }
    }

    #[test]
    fn tie_breaks_track_first_and_last_max() {
        // Two alternatives with equal durations on one operator: first-max
        // must pick index 0, last-max index 1.
        let mut algo = AlgorithmGraph::new("t");
        let s = algo.add_op("s", OpKind::Source).unwrap();
        let c = algo
            .add_op(
                "c",
                OpKind::Conditioned {
                    alternatives: vec!["f0".into(), "f1".into()],
                },
            )
            .unwrap();
        let k = algo.add_op("k", OpKind::Sink).unwrap();
        algo.connect(s, c, 8).unwrap();
        algo.connect(c, k, 8).unwrap();
        let mut arch = ArchGraph::new("t");
        let cpu = arch.add_operator("cpu", OperatorKind::Processor).unwrap();
        let mut chars = Characterization::new();
        chars.set_duration("f0", "cpu", TimePs::from_us(5));
        chars.set_duration("f1", "cpu", TimePs::from_us(5));
        let index = AdequationIndex::build(&algo, &arch, &chars).unwrap();
        let e = index.wcet(c, cpu).unwrap();
        assert_eq!(e.first_fn(), Some(0));
        assert_eq!(e.last_fn(), Some(1));
        assert_eq!(index.fn_name(&algo, c, e.first_fn()), "f0");
        assert_eq!(index.fn_name(&algo, c, e.last_fn()), "f1");
        // Sources carry the sentinel.
        let se = index.wcet(s, cpu).unwrap();
        assert_eq!(se.first_fn(), None);
        assert_eq!(index.fn_name(&algo, s, se.first_fn()), "");
    }

    #[test]
    fn bottom_levels_match_reference_recursion() {
        let (algo, arch, chars, index) = paper_index();
        // Recompute with the pre-index recursion and compare.
        let order = algo.topo_order().unwrap();
        let mut bl = std::collections::HashMap::new();
        for &id in order.iter().rev() {
            let op = algo.op(id);
            let best = arch
                .operators()
                .filter_map(|(_, o)| {
                    if op.kind.functions().is_empty() {
                        Some(TimePs::ZERO)
                    } else {
                        op.kind
                            .functions()
                            .iter()
                            .map(|f| chars.duration(f, &o.name))
                            .collect::<Option<Vec<_>>>()
                            .map(|ds| ds.into_iter().max().unwrap())
                    }
                })
                .min()
                .unwrap_or(TimePs::ZERO);
            let succ_max = algo
                .successors(id)
                .into_iter()
                .map(|s| bl[&s])
                .max()
                .unwrap_or(TimePs::ZERO);
            bl.insert(id, best + succ_max);
        }
        for (id, _) in algo.ops() {
            assert_eq!(index.bottom_level(id), bl[&id], "{}", algo.op(id).name);
        }
    }

    #[test]
    fn conditioned_reconfig_worst_is_filled() {
        let (algo, arch, _, index) = paper_index();
        let modu = algo.by_name("modulation").unwrap();
        let dynop = arch.operator_by_name("op_dyn").unwrap();
        assert!(index.is_conditioned(modu));
        assert!(index.is_dynamic(dynop));
        assert!(index.reconfig_worst(modu, dynop) > TimePs::ZERO);
        let ifft = algo.by_name("ifft64").unwrap();
        assert_eq!(index.reconfig_worst(ifft, dynop), TimePs::ZERO);
    }

    #[test]
    fn parallel_build_equals_sequential() {
        let (algo, arch, chars, index) = paper_index();
        for threads in [0, 1, 2, 4] {
            let par = AdequationIndex::build_with(&algo, &arch, &chars, &IndexOptions { threads })
                .unwrap();
            assert_eq!(par, index, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_build_propagates_cycle_error() {
        let mut algo = AlgorithmGraph::new("t");
        let a = algo.add_compute("a").unwrap();
        let b = algo.add_compute("b").unwrap();
        algo.connect(a, b, 8).unwrap();
        algo.connect(b, a, 8).unwrap();
        let arch = ArchGraph::new("t");
        let chars = Characterization::new();
        assert!(matches!(
            AdequationIndex::build_with(&algo, &arch, &chars, &IndexOptions { threads: 4 }),
            Err(AdequationError::Graph(GraphError::Cycle { .. }))
        ));
    }

    #[test]
    fn cycle_propagates_build_error() {
        let mut algo = AlgorithmGraph::new("t");
        let a = algo.add_compute("a").unwrap();
        let b = algo.add_compute("b").unwrap();
        algo.connect(a, b, 8).unwrap();
        algo.connect(b, a, 8).unwrap();
        let arch = ArchGraph::new("t");
        let chars = Characterization::new();
        assert!(matches!(
            AdequationIndex::build(&algo, &arch, &chars),
            Err(AdequationError::Graph(GraphError::Cycle { .. }))
        ));
    }
}
