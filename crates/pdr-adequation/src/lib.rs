//! # pdr-adequation — the AAA adequation step
//!
//! §3 of the paper: *"Adequation consists in performing the mapping and
//! scheduling of the operations and data transfers onto the operators and
//! the communication media. It is carried out by a heuristic which takes
//! into account durations of computations and inter-component
//! communications. The result is a synchronized executive represented by a
//! macro-code for each vertex of the architecture."*
//!
//! This crate implements that step, plus the paper's runtime-reconfiguration
//! extensions (§4):
//!
//! * [`heuristic`] — a greedy list-scheduling heuristic (critical-path
//!   priorities, earliest-finish-time operator selection) producing a
//!   [`Mapping`] and a single-iteration [`Schedule`]. With
//!   [`AdequationOptions::reconfig_aware`] the cost model charges dynamic
//!   operators the *expected* reconfiguration penalty of conditioned
//!   operations, which is the paper's "heuristic needs additional
//!   developments to optimize time reconfiguration" made concrete;
//!   the oblivious variant is retained as the ablation baseline.
//! * [`trace`] — multi-iteration scheduling against a concrete selector
//!   trace (e.g. the per-OFDM-symbol modulation choices): inserts
//!   `Reconfigure` items whenever the active alternative of a conditioned
//!   operation changes on a dynamic operator, and models the paper's
//!   *configuration prefetching*: the bitstream fetch leg is overlapped
//!   with foregoing computation so only the port-load leg can stall the
//!   pipeline.
//! * [`executive`] — translation of a schedule into per-operator
//!   *macro-code* (the synchronized executive): `Compute` / `Send` /
//!   `Receive` / `Configure` instructions with rendezvous tags, which
//!   `pdr-codegen` turns into structural designs and `pdr-sim` interprets.

pub mod annealing;
pub mod bounds;
pub mod error;
pub mod executive;
pub mod heuristic;
pub mod index;
pub mod mapping;
pub mod reference;
pub mod schedule;
pub mod trace;

pub use annealing::{anneal, schedule_with_mapping, AnnealOptions};
pub use bounds::{critical_path_bound, lower_bound, quality_ratio, work_bound};
pub use error::AdequationError;
pub use executive::{Executive, MacroInstr};
pub use heuristic::{
    adequate, adequate_with_index, evaluate_makespan, AdequationOptions, AdequationResult,
    EvalWorkspace,
};
pub use index::{AdequationIndex, IndexOptions, WcetEntry};
pub use mapping::Mapping;
pub use reference::{adequate_indexed_reference, adequate_reference};
pub use schedule::{ItemKind, Schedule, ScheduledItem};
pub use trace::{schedule_trace, ReconfigSplit, TraceOptions, TraceResult, TraceStats};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::annealing::{anneal, schedule_with_mapping, AnnealOptions};
    pub use crate::bounds::{critical_path_bound, lower_bound, quality_ratio, work_bound};
    pub use crate::error::AdequationError;
    pub use crate::executive::{Executive, MacroInstr};
    pub use crate::heuristic::{
        adequate, adequate_with_index, evaluate_makespan, AdequationOptions, AdequationResult,
        EvalWorkspace,
    };
    pub use crate::index::{AdequationIndex, IndexOptions, WcetEntry};
    pub use crate::mapping::Mapping;
    pub use crate::schedule::{ItemKind, Schedule, ScheduledItem};
    pub use crate::trace::{schedule_trace, ReconfigSplit, TraceOptions, TraceResult, TraceStats};
}
