//! Synchronized-executive (macro-code) generation.
//!
//! §3: *"The result is a synchronized executive represented by a macro-code
//! for each vertex of the architecture."* §5 then translates each
//! macro-code into VHDL (or C, for processors).
//!
//! The executive of an operator is a straight-line instruction sequence —
//! one iteration's worth, repeated infinitely by the run-time — drawn from:
//!
//! * [`MacroInstr::Compute`] — run a function for a known duration;
//! * [`MacroInstr::Send`] / [`MacroInstr::Receive`] — rendezvous transfers
//!   over a named medium, matched by tag. Multi-hop routes materialize as
//!   receive-then-send pairs on the relay operator (the FPGA static part
//!   relays DSP ↔ dynamic-region traffic in the paper's platform);
//! * [`MacroInstr::Configure`] — (dynamic operators only) ensure the named
//!   module is resident before the following compute; at run time this is a
//!   request to the configuration manager, which may already have satisfied
//!   it by prefetching.
//!
//! Instruction order per operator is the schedule's time order, so a simple
//! in-order interpreter (see `pdr-sim`) reproduces the schedule exactly when
//! nothing varies at run time.

use crate::error::AdequationError;
use crate::mapping::Mapping;
use crate::schedule::{ItemKind, Schedule};
use pdr_fabric::TimePs;
use pdr_graph::prelude::*;
use pdr_ir::{IrBuilder, IrExecutive, SymbolTable};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One macro-code instruction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MacroInstr {
    /// Execute `function` (the operation's WCET-labeled implementation).
    Compute {
        /// Operation name (diagnostic).
        op: String,
        /// Function symbol.
        function: String,
        /// Characterized duration.
        duration: TimePs,
    },
    /// Send `bits` to `to` over `medium`; blocks until the peer receives.
    Send {
        /// Receiving operator name.
        to: String,
        /// Medium name.
        medium: String,
        /// Payload bits.
        bits: u64,
        /// Rendezvous tag (unique per transfer hop).
        tag: u32,
    },
    /// Receive `bits` from `from` over `medium`; blocks until sent.
    Receive {
        /// Sending operator name.
        from: String,
        /// Medium name.
        medium: String,
        /// Payload bits.
        bits: u64,
        /// Rendezvous tag.
        tag: u32,
    },
    /// Ensure `module` is configured on this (dynamic) operator before
    /// proceeding. `worst_case` is the characterized full reconfiguration
    /// time; the runtime may do better (cache hit, prefetch).
    Configure {
        /// Module (function) that must be resident.
        module: String,
        /// Characterized worst-case reconfiguration time.
        worst_case: TimePs,
    },
}

impl MacroInstr {
    /// Is this a communication instruction?
    pub fn is_comm(&self) -> bool {
        matches!(self, MacroInstr::Send { .. } | MacroInstr::Receive { .. })
    }
}

/// Macro-code for every operator of an architecture: the synchronized
/// executive.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Executive {
    /// Instruction streams keyed by operator name (stable order).
    pub per_operator: BTreeMap<String, Vec<MacroInstr>>,
}

impl Executive {
    /// Instruction stream of one operator (empty if none).
    pub fn of(&self, operator: &str) -> &[MacroInstr] {
        self.per_operator
            .get(operator)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Total instruction count.
    pub fn len(&self) -> usize {
        self.per_operator.values().map(Vec::len).sum()
    }

    /// Is the executive empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sanity check: every `Send` has exactly one matching `Receive` with
    /// the same tag, medium, bits, and mirrored endpoints — and no tag is
    /// used twice within one operator's sequence (a send and a receive of
    /// the same tag on one operator is a self-rendezvous that blocks
    /// forever). Cross-operator properties beyond tag matching — deadlock
    /// freedom, reconfiguration safety — are `pdr-lint`'s job.
    pub fn validate(&self) -> Result<(), AdequationError> {
        let mut sends: BTreeMap<u32, (&str, &str, &str, u64)> = BTreeMap::new();
        let mut recvs: BTreeMap<u32, (&str, &str, &str, u64)> = BTreeMap::new();
        for (opr, instrs) in &self.per_operator {
            let mut local_tags: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
            for i in instrs {
                if let MacroInstr::Send { tag, .. } | MacroInstr::Receive { tag, .. } = i {
                    if !local_tags.insert(*tag) {
                        return Err(AdequationError::InvalidSchedule(format!(
                            "operator `{opr}` uses rendezvous tag {tag} more than \
                             once in its sequence"
                        )));
                    }
                }
                match i {
                    MacroInstr::Send {
                        to,
                        medium,
                        bits,
                        tag,
                    } if sends
                        .insert(*tag, (opr.as_str(), to.as_str(), medium.as_str(), *bits))
                        .is_some() =>
                    {
                        return Err(AdequationError::InvalidSchedule(format!(
                            "duplicate send tag {tag}"
                        )));
                    }
                    MacroInstr::Receive {
                        from,
                        medium,
                        bits,
                        tag,
                    } if recvs
                        .insert(*tag, (from.as_str(), opr.as_str(), medium.as_str(), *bits))
                        .is_some() =>
                    {
                        return Err(AdequationError::InvalidSchedule(format!(
                            "duplicate receive tag {tag}"
                        )));
                    }
                    _ => {}
                }
            }
        }
        if sends != recvs {
            let missing: Vec<u32> = sends
                .keys()
                .chain(recvs.keys())
                .filter(|t| sends.get(t) != recvs.get(t))
                .copied()
                .collect();
            return Err(AdequationError::InvalidSchedule(format!(
                "unmatched send/receive pairs for tags {missing:?}"
            )));
        }
        Ok(())
    }

    /// Lower to the interned, fully index-based [`IrExecutive`],
    /// interning every name through `table`. Streams are emitted in this
    /// executive's (alphabetical) operator order, so
    /// `IrExecutive::render` reproduces [`Executive::render`]
    /// byte-for-byte and index order equals name order everywhere
    /// downstream.
    pub fn lower(&self, table: &mut SymbolTable) -> IrExecutive {
        let mut b = IrBuilder::new(table);
        for (opr, instrs) in &self.per_operator {
            b.begin_operator(opr);
            for i in instrs {
                match i {
                    MacroInstr::Compute {
                        op,
                        function,
                        duration,
                    } => b.compute(op, function, *duration),
                    MacroInstr::Send {
                        to,
                        medium,
                        bits,
                        tag,
                    } => b.send(to, medium, *bits, *tag),
                    MacroInstr::Receive {
                        from,
                        medium,
                        bits,
                        tag,
                    } => b.receive(from, medium, *bits, *tag),
                    MacroInstr::Configure { module, worst_case } => {
                        b.configure(module, *worst_case)
                    }
                }
            }
        }
        b.finish()
    }

    /// Pretty-print the executive (one block per operator) — the human
    /// artifact of the §3 "macro-code".
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (opr, instrs) in &self.per_operator {
            out.push_str(&format!("operator {opr}:\n"));
            for i in instrs {
                let line = match i {
                    MacroInstr::Compute {
                        op,
                        function,
                        duration,
                    } => format!("  compute {op} [{function}] ({duration})"),
                    MacroInstr::Send {
                        to,
                        medium,
                        bits,
                        tag,
                    } => format!("  send -> {to} via {medium} ({bits} bits, tag {tag})"),
                    MacroInstr::Receive {
                        from,
                        medium,
                        bits,
                        tag,
                    } => format!("  recv <- {from} via {medium} ({bits} bits, tag {tag})"),
                    MacroInstr::Configure { module, worst_case } => {
                        format!("  configure {module} (wcet {worst_case})")
                    }
                };
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }
}

/// Generate the synchronized executive from a single-iteration schedule.
pub fn generate_executive(
    algo: &AlgorithmGraph,
    arch: &ArchGraph,
    chars: &Characterization,
    mapping: &Mapping,
    schedule: &Schedule,
) -> Result<Executive, AdequationError> {
    // Timed event stream per operator. The sort key must order every
    // operator's events along one consistent global timeline, or two
    // operators can disagree on the order of their shared rendezvous and
    // the executive deadlocks under the synchronous Send/Receive
    // semantics. Key: (time, rank, start, end, seq) where
    //   * time — when the event binds the operator: a Send at the
    //     transfer's start, a Receive at its end, Configure/Compute at
    //     their scheduled start;
    //   * rank — at equal timestamps, complete incoming rendezvous (0)
    //     before initiating outgoing ones (1), then Configure (2) before
    //     the Compute it guards (3). A tie between a Receive ending at t
    //     and a Send starting at t always means the received transfer
    //     finished first, so receive-before-send is the chronological
    //     order; the old insertion-order tie-break could invert it and
    //     cross the rendezvous (a real deadlock the linter caught);
    //   * start/end — the transfer's interval, identical on both
    //     endpoints, so peers break remaining ties identically;
    //   * seq — insertion order, a final deterministic tie-break.
    type EventKey = (TimePs, u8, TimePs, TimePs, u32);
    let mut events: BTreeMap<OperatorId, Vec<(EventKey, MacroInstr)>> = BTreeMap::new();
    let mut seq: u32 = 0;
    let next = |s: &mut u32| {
        *s += 1;
        *s
    };
    const RANK_RECEIVE: u8 = 0;
    const RANK_SEND: u8 = 1;
    const RANK_CONFIGURE: u8 = 2;
    const RANK_COMPUTE: u8 = 3;

    // Transfers: walk each algorithm edge's route; hop k of the medium
    // timeline tells us the times. We re-derive hop endpoints from the
    // route (deterministic, same call the scheduler made).
    let mut tag: u32 = 0;
    for e in algo.edges() {
        let src = mapping
            .operator_of(e.from)
            .ok_or_else(|| AdequationError::Unmappable {
                operation: algo.op(e.from).name.clone(),
                reason: "not assigned".into(),
            })?;
        let dst = mapping
            .operator_of(e.to)
            .ok_or_else(|| AdequationError::Unmappable {
                operation: algo.op(e.to).name.clone(),
                reason: "not assigned".into(),
            })?;
        if src == dst {
            continue;
        }
        let route = arch.route(src, dst)?;
        // Endpoints of each hop: src, relays..., dst. A relay between media
        // m1 and m2 is the (unique, lowest-id) operator on both.
        let mut endpoints = vec![src];
        for w in route.media.windows(2) {
            let relay = arch
                .operators_on(w[0])
                .iter()
                .find(|o| arch.operators_on(w[1]).contains(o))
                .copied()
                .ok_or_else(|| {
                    AdequationError::InvalidSchedule(format!(
                        "no relay operator between media {} and {}",
                        arch.medium(w[0]).name,
                        arch.medium(w[1]).name
                    ))
                })?;
            endpoints.push(relay);
        }
        endpoints.push(dst);

        // Find this edge's hop items in the schedule for timing.
        for (hop, &m) in route.media.iter().enumerate() {
            let item = schedule
                .of_medium(m)
                .iter()
                .find(|i| {
                    matches!(&i.kind, ItemKind::Transfer { from, to, .. }
                        if *from == e.from && *to == e.to)
                })
                .ok_or_else(|| {
                    AdequationError::InvalidSchedule(format!(
                        "edge {} -> {} missing from medium {} timeline",
                        algo.op(e.from).name,
                        algo.op(e.to).name,
                        arch.medium(m).name
                    ))
                })?;
            tag += 1;
            let sender = endpoints[hop];
            let receiver = endpoints[hop + 1];
            let med_name = arch.medium(m).name.clone();
            events.entry(sender).or_default().push((
                (item.start, RANK_SEND, item.start, item.end, next(&mut seq)),
                MacroInstr::Send {
                    to: arch.operator(receiver).name.clone(),
                    medium: med_name.clone(),
                    bits: e.bits,
                    tag,
                },
            ));
            events.entry(receiver).or_default().push((
                (item.end, RANK_RECEIVE, item.start, item.end, next(&mut seq)),
                MacroInstr::Receive {
                    from: arch.operator(sender).name.clone(),
                    medium: med_name,
                    bits: e.bits,
                    tag,
                },
            ));
        }
    }

    // Computations (with Configure prologues on dynamic operators).
    for (&opr, items) in &schedule.operator_items {
        for item in items {
            if let ItemKind::Compute { op, function, .. } = &item.kind {
                let op_name = algo.op(*op).name.clone();
                if algo.op(*op).kind.is_conditioned() && arch.operator(opr).kind.is_dynamic() {
                    let wc = chars.reconfig_time(function, &arch.operator(opr).name)?;
                    events.entry(opr).or_default().push((
                        (
                            item.start,
                            RANK_CONFIGURE,
                            item.start,
                            item.start,
                            next(&mut seq),
                        ),
                        MacroInstr::Configure {
                            module: function.clone(),
                            worst_case: wc,
                        },
                    ));
                }
                events.entry(opr).or_default().push((
                    (
                        item.start,
                        RANK_COMPUTE,
                        item.start,
                        item.start,
                        next(&mut seq),
                    ),
                    MacroInstr::Compute {
                        op: op_name,
                        function: function.clone(),
                        duration: item.duration(),
                    },
                ));
            }
        }
    }

    let mut exec = Executive::default();
    for (opr, mut evs) in events {
        evs.sort_by_key(|a| a.0);
        exec.per_operator.insert(
            arch.operator(opr).name.clone(),
            evs.into_iter().map(|(_, i)| i).collect(),
        );
    }
    exec.validate()?;
    Ok(exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::{adequate, AdequationOptions};
    use pdr_graph::paper;

    fn paper_executive() -> (Executive, ArchGraph) {
        let algo = paper::mccdma_algorithm();
        let arch = paper::sundance_architecture();
        let chars = paper::mccdma_characterization();
        let cons = paper::mccdma_constraints();
        let opts = AdequationOptions::default()
            .pin("interface_in", "dsp")
            .pin("select", "dsp")
            .pin("interface_out", "fpga_static");
        let r = adequate(&algo, &arch, &chars, &cons, &opts).unwrap();
        let e = generate_executive(&algo, &arch, &chars, &r.mapping, &r.schedule).unwrap();
        (e, arch)
    }

    #[test]
    fn executive_validates_and_covers_operators() {
        let (e, _) = paper_executive();
        e.validate().unwrap();
        assert!(!e.is_empty());
        // DSP sends, FPGA static computes, op_dyn configures+computes.
        assert!(e
            .of("dsp")
            .iter()
            .any(|i| matches!(i, MacroInstr::Send { .. })));
        assert!(e
            .of("fpga_static")
            .iter()
            .any(|i| matches!(i, MacroInstr::Compute { .. })));
        assert!(e
            .of("op_dyn")
            .iter()
            .any(|i| matches!(i, MacroInstr::Configure { .. })));
    }

    #[test]
    fn configure_precedes_the_conditioned_compute() {
        let (e, _) = paper_executive();
        let stream = e.of("op_dyn");
        let cfg = stream
            .iter()
            .position(|i| matches!(i, MacroInstr::Configure { .. }))
            .expect("configure present");
        let cmp = stream
            .iter()
            .position(|i| matches!(i, MacroInstr::Compute { op, .. } if op == "modulation"))
            .expect("modulation compute present");
        assert!(cfg < cmp);
    }

    #[test]
    fn relay_operator_receives_then_sends() {
        // DSP -> op_dyn traffic relays through fpga_static: its stream must
        // contain a Receive from dsp and a Send to op_dyn.
        let (e, _) = paper_executive();
        let fs = e.of("fpga_static");
        assert!(fs
            .iter()
            .any(|i| matches!(i, MacroInstr::Receive { from, .. } if from == "dsp")));
        assert!(fs
            .iter()
            .any(|i| matches!(i, MacroInstr::Send { to, .. } if to == "op_dyn")));
    }

    #[test]
    fn render_is_readable() {
        let (e, _) = paper_executive();
        let text = e.render();
        assert!(text.contains("operator dsp:"));
        assert!(text.contains("configure"));
        assert!(text.contains("compute"));
    }

    #[test]
    fn lowering_renders_byte_identically() {
        let (e, arch) = paper_executive();
        let mut table = arch.symbols().clone();
        let ir = e.lower(&mut table);
        assert_eq!(ir.render(&table), e.render());
        assert_eq!(ir.len(), e.len());
        assert_eq!(ir.operator_count(), e.per_operator.len());
        // Stream order equals the string form's alphabetical order.
        for (i, opr) in e.per_operator.keys().enumerate() {
            assert_eq!(ir.operator_sym(i).resolve(&table), opr);
        }
    }

    #[test]
    fn mismatched_tags_fail_validation() {
        let mut e = Executive::default();
        e.per_operator.insert(
            "a".into(),
            vec![MacroInstr::Send {
                to: "b".into(),
                medium: "m".into(),
                bits: 8,
                tag: 1,
            }],
        );
        assert!(e.validate().is_err());
        // Matching receive fixes it.
        e.per_operator.insert(
            "b".into(),
            vec![MacroInstr::Receive {
                from: "a".into(),
                medium: "m".into(),
                bits: 8,
                tag: 1,
            }],
        );
        e.validate().unwrap();
        // Wrong bits breaks it again.
        e.per_operator.insert(
            "b".into(),
            vec![MacroInstr::Receive {
                from: "a".into(),
                medium: "m".into(),
                bits: 9,
                tag: 1,
            }],
        );
        assert!(e.validate().is_err());
    }

    #[test]
    fn per_operator_duplicate_tag_rejected() {
        // A send and a receive of the same tag on ONE operator is a
        // self-rendezvous: globally the tag maps still pair up, so only
        // the per-operator check can reject it.
        let mut e = Executive::default();
        e.per_operator.insert(
            "a".into(),
            vec![
                MacroInstr::Send {
                    to: "a".into(),
                    medium: "m".into(),
                    bits: 8,
                    tag: 7,
                },
                MacroInstr::Receive {
                    from: "a".into(),
                    medium: "m".into(),
                    bits: 8,
                    tag: 7,
                },
            ],
        );
        let err = e.validate().unwrap_err();
        assert!(err.to_string().contains("more than"), "{err}");
    }

    #[test]
    fn is_comm_classifier() {
        assert!(MacroInstr::Send {
            to: "x".into(),
            medium: "m".into(),
            bits: 1,
            tag: 0
        }
        .is_comm());
        assert!(!MacroInstr::Compute {
            op: "o".into(),
            function: "f".into(),
            duration: TimePs::ZERO
        }
        .is_comm());
    }
}
