//! The interned-executive interpreter: [`IrSimSystem`].
//!
//! Semantically identical to [`crate::system::SimSystem`] — same event
//! ordering, same rendezvous/contention model, same reports, same error
//! messages — but it interprets the lowered
//! [`IrExecutive`] instead of the string
//! `Executive`, with **zero per-event allocation** on the hot path:
//!
//! * instructions are `Copy` values read by index from one flat array
//!   (the string interpreter clones a heap-string-carrying `MacroInstr`
//!   per executed instruction);
//! * media occupancy lives in dense `Vec`s indexed by the executive's
//!   [`MediumRef`], not `BTreeMap<String, _>`;
//! * pending rendezvous are kept in a `HashMap<u64, _>` keyed by packed
//!   `(tag, iteration)` integers;
//! * blocked-state bookkeeping is a small `Copy` enum rather than a
//!   formatted `String` (the strings are produced only if the run ends
//!   in deadlock);
//! * `Configure` goes through the allocation-free indexed
//!   [`RtrEngine`] (attached with [`IrSimSystem::attach_engine`]) or the
//!   reference [`ConfigurationManager::request_at`]; either way the
//!   operator→manager binding is a dense slot array resolved when the
//!   manager is attached, not a `BTreeMap<String, _>` probed per
//!   request. Reconfiguration/trace events are recorded compactly and
//!   materialized to the string-based [`SimReport`] once, after the run.
//!
//! The equivalence suite (`tests/ir_equivalence.rs` at the workspace
//! root) asserts report- and trace-level equality against the string
//! interpreter for every gallery flow and for random graphs.

use crate::engine::EventQueue;
use crate::error::SimError;
use crate::report::{ReconfigEvent, SimReport, TraceEvent, TraceKind};
use crate::system::SimConfig;
use pdr_fabric::TimePs;
use pdr_graph::{ArchGraph, Medium};
use pdr_ir::{IrExecutive, IrInstr, MediumRef, OperatorId, PeerRef, SymbolTable};
use pdr_rtr::{ConfigurationManager, RtrEngine, NO_MODULE};
use std::collections::{BTreeMap, HashMap};

/// Sentinel for "no manager / no engine region bound to this stream".
const NO_SLOT: u32 = u32::MAX;

/// Operator progress state. `Copy`; blocked states carry the rendezvous
/// key and are rendered to the string interpreter's exact wording only
/// on deadlock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IrStatus {
    Ready,
    BlockedSend { tag: u32, iter: u32 },
    BlockedRecv { tag: u32, iter: u32 },
    Done,
}

impl IrStatus {
    fn describe(self) -> String {
        match self {
            IrStatus::BlockedSend { tag, iter } => format!("send tag {tag} iter {iter}"),
            IrStatus::BlockedRecv { tag, iter } => format!("recv tag {tag} iter {iter}"),
            IrStatus::Ready => "Ready".to_string(),
            IrStatus::Done => "Done".to_string(),
        }
    }
}

struct IrOpRuntime<'p> {
    program: &'p [IrInstr],
    /// Per-iteration module selection for this operator, if configured.
    sel: Option<&'p [String]>,
    /// The selection pre-resolved to engine module ids (engine-backed
    /// operators only; unknown names carry [`NO_MODULE`] and fall back to
    /// the by-name path for the exact reference error).
    sel_ids: Option<Vec<u32>>,
    pc: u32,
    iteration: u32,
    status: IrStatus,
    busy: TimePs,
}

/// Compactly recorded reconfiguration; materialized after the run.
#[derive(Clone, Copy)]
struct RawReconfig {
    stream: u32,
    pc: u32,
    iteration: u32,
    requested_at: TimePs,
    ready_at: TimePs,
    fetch_hidden: bool,
}

/// Compactly recorded trace event; materialized after the run.
#[derive(Clone, Copy)]
enum RawTraceKind {
    Compute {
        stream: u32,
        pc: u32,
    },
    Transfer {
        from: PeerRef,
        to: PeerRef,
        medium: MediumRef,
        bits: u64,
    },
    Reconfigure {
        stream: u32,
        pc: u32,
        fetch_hidden: bool,
    },
}

#[derive(Clone, Copy)]
struct RawTrace {
    iteration: u32,
    start: TimePs,
    end: TimePs,
    kind: RawTraceKind,
}

#[inline]
fn rv_key(tag: u32, iter: u32) -> u64 {
    (u64::from(tag) << 32) | u64::from(iter)
}

/// A runnable system over the lowered executive: architecture +
/// [`IrExecutive`] + the symbol table that interned it + configuration
/// managers. Accepts the same [`SimConfig`] as the string interpreter
/// and produces the same [`SimReport`].
pub struct IrSimSystem<'a> {
    arch: &'a ArchGraph,
    ir: &'a IrExecutive,
    table: &'a SymbolTable,
    /// Reference managers in attach order; `manager_slot` binds streams to
    /// entries here, so the hot loop never probes a map by name.
    managers: Vec<(String, ConfigurationManager)>,
    /// stream index → index into `managers` ([`NO_SLOT`] when unbound),
    /// resolved once at [`IrSimSystem::add_manager`] time.
    manager_slot: Vec<u32>,
    /// The indexed engine serving all engine-backed streams, if attached.
    engine: Option<RtrEngine>,
    /// stream index → engine region id ([`NO_SLOT`] when unbound).
    engine_slot: Vec<u32>,
    /// (operator name, engine region id) of every binding — for the
    /// report's `manager_stats`, keyed by operator like the managers.
    engine_bindings: Vec<(String, u32)>,
    /// symbol index → engine module id (for default `Configure` targets).
    sym_to_mod: Vec<u32>,
}

impl<'a> IrSimSystem<'a> {
    /// Build a system; attach managers with [`IrSimSystem::add_manager`]
    /// or an indexed engine with [`IrSimSystem::attach_engine`].
    /// `table` must be the table the executive was lowered through (or a
    /// superset of it, e.g. the one carried by `pdr-core`'s artifacts).
    pub fn new(arch: &'a ArchGraph, ir: &'a IrExecutive, table: &'a SymbolTable) -> Self {
        let n = ir.operator_count();
        IrSimSystem {
            arch,
            ir,
            table,
            managers: Vec::new(),
            manager_slot: vec![NO_SLOT; n],
            engine: None,
            engine_slot: vec![NO_SLOT; n],
            engine_bindings: Vec::new(),
            sym_to_mod: Vec::new(),
        }
    }

    /// Attach the configuration manager serving the named dynamic
    /// operator, replacing any previous manager for it. The operator's
    /// stream slot is resolved here, once, not per request.
    pub fn add_manager(&mut self, operator: &str, manager: ConfigurationManager) -> &mut Self {
        if let Some(pos) = self.managers.iter().position(|(n, _)| n == operator) {
            self.managers[pos].1 = manager;
            return self;
        }
        let idx = self.managers.len() as u32;
        self.managers.push((operator.to_string(), manager));
        if let Some(sym) = self.table.lookup(operator) {
            if let Some(i) = self.ir.operator_index(OperatorId::new(sym)) {
                self.manager_slot[i] = idx;
            }
        }
        self
    }

    /// Attach the indexed [`RtrEngine`] with its `(operator, region)`
    /// bindings. Engine-backed operators take precedence over reference
    /// managers attached for the same operator; bindings naming regions
    /// the engine does not manage are ignored. All name→id resolution
    /// (bindings, selection entries, default `Configure` modules) happens
    /// here and at run start — never per request.
    pub fn attach_engine(&mut self, engine: RtrEngine, bindings: &[(&str, &str)]) -> &mut Self {
        self.sym_to_mod = vec![NO_MODULE; self.table.len()];
        for (sym, name) in self.table.iter() {
            if let Some(mid) = engine.module_index(name) {
                self.sym_to_mod[sym.index()] = mid;
            }
        }
        self.engine_bindings.clear();
        self.engine_slot.iter_mut().for_each(|s| *s = NO_SLOT);
        for (op, region) in bindings {
            let Some(rid) = engine.region_index(region) else {
                continue;
            };
            self.engine_bindings.push((op.to_string(), rid));
            if let Some(sym) = self.table.lookup(op) {
                if let Some(i) = self.ir.operator_index(OperatorId::new(sym)) {
                    self.engine_slot[i] = rid;
                }
            }
        }
        self.engine = Some(engine);
        self
    }

    /// The attached engine, if any (for post-run statistics probes).
    pub fn engine(&self) -> Option<&RtrEngine> {
        self.engine.as_ref()
    }

    /// Run the system and produce a report.
    pub fn run(&mut self, config: &SimConfig) -> Result<SimReport, SimError> {
        let ir = self.ir;
        let table = self.table;
        let arch = self.arch;
        let managers = &mut self.managers;
        let manager_slot = &self.manager_slot;
        let engine = &mut self.engine;
        let engine_slot = &self.engine_slot;
        let engine_bindings = &self.engine_bindings;
        let sym_to_mod = &self.sym_to_mod;

        // Validate selections (same order and messages as the string
        // interpreter: unknown operator first, then length).
        for (opr, mods) in &config.selections {
            if arch.operator_by_name(opr).is_none() {
                return Err(SimError::BadSelection(format!("unknown operator `{opr}`")));
            }
            if mods.len() != config.iterations as usize {
                return Err(SimError::BadSelection(format!(
                    "selection for `{opr}` has {} entries, expected {}",
                    mods.len(),
                    config.iterations
                )));
            }
        }

        // Dense per-stream runtimes. Stream order is the executive's
        // lowering order (alphabetical for lowered string executives).
        let n = ir.operator_count();
        let mut op_names: Vec<&str> = Vec::with_capacity(n);
        let mut ops: Vec<IrOpRuntime<'_>> = Vec::with_capacity(n);
        for (i, slot) in engine_slot.iter().enumerate().take(n) {
            let name = ir.operator_sym(i).resolve(table);
            if arch.operator_by_name(name).is_none() {
                return Err(SimError::UnknownName(name.to_string()));
            }
            op_names.push(name);
            let sel = config.selections.get(name).map(Vec::as_slice);
            let sel_ids = match (sel, engine.as_ref()) {
                (Some(mods), Some(e)) if *slot != NO_SLOT => Some(
                    mods.iter()
                        .map(|m| e.module_index(m).unwrap_or(NO_MODULE))
                        .collect(),
                ),
                _ => None,
            };
            ops.push(IrOpRuntime {
                program: ir.program(i),
                sel,
                sel_ids,
                pc: 0,
                iteration: 0,
                status: if config.iterations == 0 {
                    IrStatus::Done
                } else {
                    IrStatus::Ready
                },
                busy: TimePs::ZERO,
            });
        }

        // Dense medium tables indexed by the executive's MediumRef. A ref
        // that does not resolve to an architecture medium only errors when
        // a transfer over it completes, matching the string interpreter's
        // lazy name resolution.
        let med_arch: Vec<Option<&Medium>> = ir
            .media()
            .iter()
            .map(|m| {
                arch.medium_by_name(m.resolve(table))
                    .map(|id| arch.medium(id))
            })
            .collect();
        let mut medium_free = vec![TimePs::ZERO; med_arch.len()];
        let mut medium_busy = vec![TimePs::ZERO; med_arch.len()];
        let mut medium_touched = vec![false; med_arch.len()];

        let mut queue: EventQueue<usize> = EventQueue::new();
        for i in 0..ops.len() {
            queue.schedule(TimePs::ZERO, i);
        }

        // Rendezvous bookkeeping: packed (tag, iteration) -> (op, arrival).
        let mut pending_send: HashMap<u64, (u32, TimePs)> = HashMap::new();
        let mut pending_recv: HashMap<u64, (u32, TimePs)> = HashMap::new();
        let mut reconfigs: Vec<RawReconfig> = Vec::new();
        let mut trace: Vec<RawTrace> = Vec::new();
        let mut makespan = TimePs::ZERO;
        let mut iteration_ends = vec![TimePs::ZERO; config.iterations as usize];

        while let Some((now, i)) = queue.pop() {
            makespan = makespan.max(now);
            if ops[i].status == IrStatus::Done {
                continue;
            }
            ops[i].status = IrStatus::Ready;
            // Step instructions until the operator blocks or finishes.
            'step: loop {
                if ops[i].pc as usize >= ops[i].program.len() {
                    if !ops[i].program.is_empty() {
                        let done = ops[i].iteration as usize;
                        if done < iteration_ends.len() {
                            iteration_ends[done] = iteration_ends[done].max(now);
                        }
                    }
                    ops[i].iteration += 1;
                    ops[i].pc = 0;
                    if ops[i].iteration >= config.iterations {
                        ops[i].status = IrStatus::Done;
                        break 'step;
                    }
                    if ops[i].program.is_empty() {
                        ops[i].iteration = config.iterations;
                        ops[i].status = IrStatus::Done;
                        break 'step;
                    }
                    continue 'step;
                }
                let pc = ops[i].pc;
                let instr = ops[i].program[pc as usize];
                let iter = ops[i].iteration;
                match instr {
                    IrInstr::Compute { duration, .. } => {
                        ops[i].pc += 1;
                        ops[i].busy += duration;
                        if config.capture_trace {
                            trace.push(RawTrace {
                                iteration: iter,
                                start: now,
                                end: now + duration,
                                kind: RawTraceKind::Compute {
                                    stream: i as u32,
                                    pc,
                                },
                            });
                        }
                        if duration.is_zero() {
                            continue 'step;
                        }
                        queue.schedule(now + duration, i);
                        break 'step;
                    }
                    IrInstr::Configure { module, worst_case } => {
                        let chosen: &str = match ops[i].sel {
                            Some(mods) => {
                                mods.get(iter as usize).map(String::as_str).ok_or_else(|| {
                                    SimError::BadSelection(format!(
                                        "selection for `{}` has no entry for iteration {iter}",
                                        op_names[i]
                                    ))
                                })?
                            }
                            None => module.resolve(table),
                        };
                        let (ready_at, hidden) = if engine_slot[i] != NO_SLOT {
                            let eng = engine.as_mut().expect("engine slot without engine");
                            let mid = match &ops[i].sel_ids {
                                Some(ids) => ids[iter as usize],
                                None => sym_to_mod
                                    .get(module.sym().index())
                                    .copied()
                                    .unwrap_or(NO_MODULE),
                            };
                            let t = if mid != NO_MODULE {
                                eng.request(engine_slot[i], mid, now)
                            } else {
                                // Unknown to the engine: resolve by name so
                                // the error (and request accounting) matches
                                // the reference manager exactly.
                                eng.request_in(engine_slot[i], chosen, now)
                            }
                            .map_err(|e| SimError::Manager(e.to_string()))?;
                            if t.already_loaded {
                                ops[i].pc += 1;
                                continue 'step;
                            }
                            (t.ready_at, t.fetch_hidden)
                        } else if manager_slot[i] != NO_SLOT {
                            let mgr = &mut managers[manager_slot[i] as usize].1;
                            let t = mgr
                                .request_at(chosen, now)
                                .map_err(|e| SimError::Manager(e.to_string()))?;
                            if t.already_loaded {
                                ops[i].pc += 1;
                                continue 'step;
                            }
                            (t.ready_at, t.fetch_hidden)
                        } else {
                            // No manager: charge the characterized worst case
                            // (see the string interpreter for the rationale).
                            (now + worst_case, false)
                        };
                        ops[i].pc += 1;
                        ops[i].busy += ready_at - now;
                        reconfigs.push(RawReconfig {
                            stream: i as u32,
                            pc,
                            iteration: iter,
                            requested_at: now,
                            ready_at,
                            fetch_hidden: hidden,
                        });
                        if config.capture_trace {
                            trace.push(RawTrace {
                                iteration: iter,
                                start: now,
                                end: ready_at,
                                kind: RawTraceKind::Reconfigure {
                                    stream: i as u32,
                                    pc,
                                    fetch_hidden: hidden,
                                },
                            });
                        }
                        if ready_at == now {
                            continue 'step;
                        }
                        queue.schedule(ready_at, i);
                        break 'step;
                    }
                    IrInstr::Send {
                        to,
                        medium,
                        bits,
                        tag,
                    } => {
                        let key = rv_key(tag, iter);
                        if let Some((j, _)) = pending_recv.remove(&key) {
                            let j = j as usize;
                            let m = medium.0 as usize;
                            let med = med_arch[m].ok_or_else(|| {
                                SimError::UnknownName(
                                    ir.medium_sym(medium).resolve(table).to_string(),
                                )
                            })?;
                            let start = now.max(medium_free[m]);
                            let end = start + med.transfer_time(bits);
                            medium_free[m] = end;
                            medium_busy[m] += end - start;
                            medium_touched[m] = true;
                            if config.capture_trace {
                                trace.push(RawTrace {
                                    iteration: iter,
                                    start,
                                    end,
                                    kind: RawTraceKind::Transfer {
                                        from: ir.operator_ref(i),
                                        to,
                                        medium,
                                        bits,
                                    },
                                });
                            }
                            ops[i].pc += 1;
                            ops[j].pc += 1;
                            ops[j].status = IrStatus::Ready;
                            queue.schedule(end, i);
                            queue.schedule(end, j);
                            break 'step;
                        }
                        pending_send.insert(key, (i as u32, now));
                        ops[i].status = IrStatus::BlockedSend { tag, iter };
                        break 'step;
                    }
                    IrInstr::Receive {
                        from,
                        medium,
                        bits,
                        tag,
                    } => {
                        let key = rv_key(tag, iter);
                        if let Some((j, _)) = pending_send.remove(&key) {
                            let j = j as usize;
                            let m = medium.0 as usize;
                            let med = med_arch[m].ok_or_else(|| {
                                SimError::UnknownName(
                                    ir.medium_sym(medium).resolve(table).to_string(),
                                )
                            })?;
                            let start = now.max(medium_free[m]);
                            let end = start + med.transfer_time(bits);
                            medium_free[m] = end;
                            medium_busy[m] += end - start;
                            medium_touched[m] = true;
                            if config.capture_trace {
                                trace.push(RawTrace {
                                    iteration: iter,
                                    start,
                                    end,
                                    kind: RawTraceKind::Transfer {
                                        from,
                                        to: ir.operator_ref(i),
                                        medium,
                                        bits,
                                    },
                                });
                            }
                            ops[i].pc += 1;
                            ops[j].pc += 1;
                            ops[j].status = IrStatus::Ready;
                            queue.schedule(end, i);
                            queue.schedule(end, j);
                            break 'step;
                        }
                        pending_recv.insert(key, (i as u32, now));
                        ops[i].status = IrStatus::BlockedRecv { tag, iter };
                        break 'step;
                    }
                }
            }
        }

        // Every operator must have finished.
        let blocked: Vec<(String, String)> = ops
            .iter()
            .enumerate()
            .filter(|(_, o)| o.status != IrStatus::Done)
            .map(|(i, o)| (op_names[i].to_string(), o.status.describe()))
            .collect();
        if !blocked.is_empty() {
            return Err(SimError::Deadlock {
                at_ps: makespan.as_ps(),
                blocked,
            });
        }

        // Materialize the report's string-keyed views once, after the run.
        let chosen_module = |stream: u32, pc: u32, iteration: u32| -> String {
            let i = stream as usize;
            if let Some(mods) = ops[i].sel {
                return mods[iteration as usize].clone();
            }
            match ops[i].program[pc as usize] {
                IrInstr::Configure { module, .. } => module.resolve(table).to_string(),
                _ => unreachable!("reconfiguration recorded on a non-Configure instruction"),
            }
        };
        let mut operator_busy = BTreeMap::new();
        for (i, o) in ops.iter().enumerate() {
            operator_busy.insert(op_names[i].to_string(), o.busy);
        }
        let mut medium_busy_map: BTreeMap<String, TimePs> = BTreeMap::new();
        for (m, &touched) in medium_touched.iter().enumerate() {
            if touched {
                let name = ir.media()[m].resolve(table).to_string();
                medium_busy_map.insert(name, medium_busy[m]);
            }
        }
        let reconfigs: Vec<ReconfigEvent> = reconfigs
            .into_iter()
            .map(|r| ReconfigEvent {
                operator: op_names[r.stream as usize].to_string(),
                module: chosen_module(r.stream, r.pc, r.iteration),
                iteration: r.iteration,
                requested_at: r.requested_at,
                ready_at: r.ready_at,
                fetch_hidden: r.fetch_hidden,
            })
            .collect();
        let trace: Vec<TraceEvent> = trace
            .into_iter()
            .map(|t| {
                let (site, kind) = match t.kind {
                    RawTraceKind::Compute { stream, pc } => {
                        let (op, function) = match ops[stream as usize].program[pc as usize] {
                            IrInstr::Compute { op, function, .. } => (
                                op.resolve(table).to_string(),
                                function.resolve(table).to_string(),
                            ),
                            _ => unreachable!("compute trace on a non-Compute instruction"),
                        };
                        (
                            op_names[stream as usize].to_string(),
                            TraceKind::Compute { op, function },
                        )
                    }
                    RawTraceKind::Transfer {
                        from,
                        to,
                        medium,
                        bits,
                    } => {
                        let medium = ir.medium_sym(medium).resolve(table).to_string();
                        (
                            medium.clone(),
                            TraceKind::Transfer {
                                from: ir.peer_sym(from).resolve(table).to_string(),
                                to: ir.peer_sym(to).resolve(table).to_string(),
                                medium,
                                bits,
                            },
                        )
                    }
                    RawTraceKind::Reconfigure {
                        stream,
                        pc,
                        fetch_hidden,
                    } => (
                        op_names[stream as usize].to_string(),
                        TraceKind::Reconfigure {
                            module: chosen_module(stream, pc, t.iteration),
                            fetch_hidden,
                        },
                    ),
                };
                TraceEvent {
                    site,
                    iteration: t.iteration,
                    start: t.start,
                    end: t.end,
                    kind,
                }
            })
            .collect();
        let mut manager_stats: BTreeMap<String, pdr_rtr::ManagerStats> = managers
            .iter()
            .map(|(k, m)| (k.clone(), m.stats()))
            .collect();
        if let Some(e) = engine.as_ref() {
            for (op, rid) in engine_bindings {
                manager_stats.insert(op.clone(), e.stats(*rid));
            }
        }
        Ok(SimReport {
            makespan,
            iterations: config.iterations,
            operator_busy,
            medium_busy: medium_busy_map,
            reconfigs,
            manager_stats,
            iteration_ends,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SimSystem;
    use pdr_adequation::executive::generate_executive;
    use pdr_adequation::{adequate, AdequationOptions, Executive};
    use pdr_fabric::{Bitstream, Device, PortProfile, ReconfigRegion};
    use pdr_graph::paper;
    use pdr_rtr::{BitstreamCache, BitstreamStore, MemoryModel, ProtocolBuilder};

    struct Setup {
        arch: ArchGraph,
        executive: Executive,
        table: SymbolTable,
        ir: IrExecutive,
    }

    fn paper_setup() -> Setup {
        let algo = paper::mccdma_algorithm();
        let arch = paper::sundance_architecture();
        let chars = paper::mccdma_characterization();
        let cons = paper::mccdma_constraints();
        let opts = AdequationOptions::default()
            .pin("interface_in", "dsp")
            .pin("select", "dsp")
            .pin("interface_out", "fpga_static");
        let r = adequate(&algo, &arch, &chars, &cons, &opts).unwrap();
        let executive = generate_executive(&algo, &arch, &chars, &r.mapping, &r.schedule).unwrap();
        let mut table = arch.symbols().clone();
        let ir = executive.lower(&mut table);
        Setup {
            arch,
            executive,
            table,
            ir,
        }
    }

    fn paper_manager() -> ConfigurationManager {
        let d = Device::xc2v2000();
        let region = ReconfigRegion::new("op_dyn", 20, 4).unwrap();
        let mut store = BitstreamStore::new();
        let qpsk = Bitstream::partial_for_region(&d, &region, 1);
        let bytes = qpsk.len_bytes();
        store.insert("mod_qpsk", qpsk);
        store.insert("mod_qam16", Bitstream::partial_for_region(&d, &region, 2));
        let builder = ProtocolBuilder::new(d, PortProfile::icap_virtex2());
        let mut mgr = ConfigurationManager::new(
            builder,
            store,
            BitstreamCache::sized_for(2, bytes),
            MemoryModel::paper_flash(),
            "op_dyn",
        );
        mgr.preload("mod_qpsk").unwrap();
        mgr
    }

    fn alternating(n: u32) -> Vec<String> {
        (0..n)
            .map(|i| {
                if (i / 4) % 2 == 0 {
                    "mod_qpsk".to_string()
                } else {
                    "mod_qam16".to_string()
                }
            })
            .collect()
    }

    fn both_reports(s: &Setup, cfg: &SimConfig, with_manager: bool) -> (SimReport, SimReport) {
        let mut sys = SimSystem::new(&s.arch, &s.executive);
        let mut ir_sys = IrSimSystem::new(&s.arch, &s.ir, &s.table);
        if with_manager {
            sys.add_manager("op_dyn", paper_manager());
            ir_sys.add_manager("op_dyn", paper_manager());
        }
        (sys.run(cfg).unwrap(), ir_sys.run(cfg).unwrap())
    }

    #[test]
    fn reports_match_string_interpreter_with_selections() {
        let s = paper_setup();
        let cfg = SimConfig::iterations(16)
            .with_selection("op_dyn", alternating(16))
            .with_trace();
        let (a, b) = both_reports(&s, &cfg, true);
        assert_eq!(a, b);
    }

    #[test]
    fn reports_match_without_manager() {
        let s = paper_setup();
        let cfg = SimConfig::iterations(4).with_trace();
        let (a, b) = both_reports(&s, &cfg, false);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_iterations_match() {
        let s = paper_setup();
        let (a, b) = both_reports(&s, &SimConfig::iterations(0), false);
        assert_eq!(a, b);
    }

    #[test]
    fn selection_errors_match() {
        let s = paper_setup();
        let mut sys = SimSystem::new(&s.arch, &s.executive);
        let mut ir_sys = IrSimSystem::new(&s.arch, &s.ir, &s.table);
        for cfg in [
            SimConfig::iterations(4).with_selection("op_dyn", vec!["mod_qpsk".to_string(); 3]),
            SimConfig::iterations(1).with_selection("ghost", vec!["mod_qpsk".to_string()]),
        ] {
            let a = sys.run(&cfg).unwrap_err();
            let b = ir_sys.run(&cfg).unwrap_err();
            assert_eq!(a.to_string(), b.to_string());
        }
    }

    #[test]
    fn manager_errors_match() {
        let s = paper_setup();
        let cfg = SimConfig::iterations(1).with_selection("op_dyn", vec!["mod_ghost".to_string()]);
        let mut sys = SimSystem::new(&s.arch, &s.executive);
        sys.add_manager("op_dyn", paper_manager());
        let mut ir_sys = IrSimSystem::new(&s.arch, &s.ir, &s.table);
        ir_sys.add_manager("op_dyn", paper_manager());
        let a = sys.run(&cfg).unwrap_err();
        let b = ir_sys.run(&cfg).unwrap_err();
        assert!(matches!(b, SimError::Manager(_)));
        assert_eq!(a.to_string(), b.to_string());
    }

    #[test]
    fn deadlock_errors_match() {
        let mut arch = ArchGraph::new("t");
        arch.add_operator("a", pdr_graph::OperatorKind::Processor)
            .unwrap();
        arch.add_operator("b", pdr_graph::OperatorKind::Processor)
            .unwrap();
        let a_id = arch.operator_by_name("a").unwrap();
        let b_id = arch.operator_by_name("b").unwrap();
        let m = arch
            .add_medium("m", pdr_graph::MediumKind::Bus, 1_000_000, TimePs::ZERO)
            .unwrap();
        arch.link(a_id, m).unwrap();
        arch.link(b_id, m).unwrap();
        let mut exec = Executive::default();
        exec.per_operator.insert(
            "a".into(),
            vec![pdr_adequation::MacroInstr::Send {
                to: "b".into(),
                medium: "m".into(),
                bits: 8,
                tag: 1,
            }],
        );
        exec.per_operator.insert("b".into(), vec![]);
        let mut table = arch.symbols().clone();
        let ir = exec.lower(&mut table);
        let mut sys = SimSystem::new(&arch, &exec);
        let mut ir_sys = IrSimSystem::new(&arch, &ir, &table);
        let ea = sys.run(&SimConfig::iterations(1)).unwrap_err();
        let eb = ir_sys.run(&SimConfig::iterations(1)).unwrap_err();
        assert_eq!(ea.to_string(), eb.to_string());
        assert!(eb.to_string().contains("send tag 1"));
    }

    fn paper_engine() -> RtrEngine {
        use pdr_rtr::{RegionSpec, RtrEngineBuilder};
        let d = Device::xc2v2000();
        let region = ReconfigRegion::new("op_dyn", 20, 4).unwrap();
        let qpsk = Bitstream::partial_for_region(&d, &region, 1);
        let bytes = qpsk.len_bytes();
        let mut e = RtrEngineBuilder::new(
            d.clone(),
            PortProfile::icap_virtex2(),
            MemoryModel::paper_flash(),
        )
        .region(
            RegionSpec::new("op_dyn", 2 * bytes)
                .module("mod_qpsk", qpsk)
                .module("mod_qam16", Bitstream::partial_for_region(&d, &region, 2)),
        )
        .build()
        .unwrap();
        let qpsk_id = e.module_index("mod_qpsk").unwrap();
        e.preload(0, qpsk_id).unwrap();
        e
    }

    #[test]
    fn engine_backend_matches_reference_managers() {
        let s = paper_setup();
        for iters in [1u32, 4, 16] {
            let cfg = SimConfig::iterations(iters)
                .with_selection("op_dyn", alternating(iters))
                .with_trace();
            let mut mgr_sys = IrSimSystem::new(&s.arch, &s.ir, &s.table);
            mgr_sys.add_manager("op_dyn", paper_manager());
            let mut eng_sys = IrSimSystem::new(&s.arch, &s.ir, &s.table);
            eng_sys.attach_engine(paper_engine(), &[("op_dyn", "op_dyn")]);
            let a = mgr_sys.run(&cfg).unwrap();
            let b = eng_sys.run(&cfg).unwrap();
            assert_eq!(a, b, "engine-backed report diverged at {iters} iterations");
        }
    }

    #[test]
    fn engine_backend_error_matches_reference() {
        let s = paper_setup();
        let cfg = SimConfig::iterations(1).with_selection("op_dyn", vec!["mod_ghost".to_string()]);
        let mut mgr_sys = IrSimSystem::new(&s.arch, &s.ir, &s.table);
        mgr_sys.add_manager("op_dyn", paper_manager());
        let mut eng_sys = IrSimSystem::new(&s.arch, &s.ir, &s.table);
        eng_sys.attach_engine(paper_engine(), &[("op_dyn", "op_dyn")]);
        let a = mgr_sys.run(&cfg).unwrap_err();
        let b = eng_sys.run(&cfg).unwrap_err();
        assert_eq!(a.to_string(), b.to_string());
    }

    #[test]
    fn engine_takes_precedence_over_manager() {
        let s = paper_setup();
        let cfg = SimConfig::iterations(8).with_selection("op_dyn", alternating(8));
        let mut sys = IrSimSystem::new(&s.arch, &s.ir, &s.table);
        sys.add_manager("op_dyn", paper_manager());
        sys.attach_engine(paper_engine(), &[("op_dyn", "op_dyn")]);
        let report = sys.run(&cfg).unwrap();
        // The reported stats are the engine's (the idle manager saw zero
        // requests).
        let st = &report.manager_stats["op_dyn"];
        assert_eq!(st.requests, 8);
        assert_eq!(sys.engine().unwrap().stats(0).requests, 8);
    }

    #[test]
    fn determinism_across_runs() {
        let s = paper_setup();
        let run = || {
            let mut sys = IrSimSystem::new(&s.arch, &s.ir, &s.table);
            sys.add_manager("op_dyn", paper_manager());
            let cfg = SimConfig::iterations(12).with_selection("op_dyn", alternating(12));
            sys.run(&cfg).unwrap()
        };
        assert_eq!(run(), run());
    }
}
