//! Simulation reports: traces, reconfiguration events, aggregates.

use pdr_fabric::TimePs;
use pdr_rtr::ManagerStats;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What a trace event records.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A computation ran on an operator.
    Compute {
        /// Operation name.
        op: String,
        /// Function executed.
        function: String,
    },
    /// A transfer completed on a medium.
    Transfer {
        /// Sender operator.
        from: String,
        /// Receiver operator.
        to: String,
        /// Medium crossed.
        medium: String,
        /// Payload bits.
        bits: u64,
    },
    /// A reconfiguration completed on a dynamic operator.
    Reconfigure {
        /// Module loaded.
        module: String,
        /// Whether the fetch leg was hidden (cache/prefetch).
        fetch_hidden: bool,
    },
}

/// One timed trace event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Operator (or medium host) the event belongs to.
    pub site: String,
    /// Iteration index.
    pub iteration: u32,
    /// Start time.
    pub start: TimePs,
    /// End time.
    pub end: TimePs,
    /// Payload.
    pub kind: TraceKind,
}

/// One reconfiguration, with its latency decomposition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReconfigEvent {
    /// Dynamic operator reconfigured.
    pub operator: String,
    /// Module loaded.
    pub module: String,
    /// Iteration that demanded it.
    pub iteration: u32,
    /// Request time.
    pub requested_at: TimePs,
    /// Region-ready time.
    pub ready_at: TimePs,
    /// Whether the fetch leg was hidden.
    pub fetch_hidden: bool,
}

impl ReconfigEvent {
    /// Observed request→ready latency (the `In_Reconf` assertion window).
    /// Saturates like [`SimReport::iteration_periods`] so a malformed
    /// event (ready before request) reads as zero rather than panicking.
    pub fn latency(&self) -> TimePs {
        self.ready_at.saturating_sub(self.requested_at)
    }
}

/// Aggregate simulation report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// End of the last event.
    pub makespan: TimePs,
    /// Iterations executed.
    pub iterations: u32,
    /// Busy time per operator.
    pub operator_busy: BTreeMap<String, TimePs>,
    /// Busy time per medium.
    pub medium_busy: BTreeMap<String, TimePs>,
    /// All reconfigurations, in completion order.
    pub reconfigs: Vec<ReconfigEvent>,
    /// Per-region configuration-manager statistics.
    pub manager_stats: BTreeMap<String, ManagerStats>,
    /// Completion time of each iteration (when the last operator finished
    /// it) — the per-symbol latency series behind the jitter metrics.
    pub iteration_ends: Vec<TimePs>,
    /// Full event trace (present when tracing was enabled).
    pub trace: Vec<TraceEvent>,
}

impl SimReport {
    /// Total time `In_Reconf` was asserted (sum of reconfiguration
    /// latencies) — the §6 lock-up metric.
    pub fn lockup_time(&self) -> TimePs {
        self.reconfigs.iter().map(ReconfigEvent::latency).sum()
    }

    /// Number of reconfigurations.
    pub fn reconfig_count(&self) -> usize {
        self.reconfigs.len()
    }

    /// Reconfigurations whose fetch leg was hidden.
    pub fn hidden_fetches(&self) -> usize {
        self.reconfigs.iter().filter(|r| r.fetch_hidden).count()
    }

    /// Utilization of an operator over the makespan.
    pub fn utilization(&self, operator: &str) -> f64 {
        if self.makespan.is_zero() {
            return 0.0;
        }
        self.operator_busy
            .get(operator)
            .map(|b| b.as_ps() as f64 / self.makespan.as_ps() as f64)
            .unwrap_or(0.0)
    }

    /// Iterations per second achieved over the run.
    pub fn throughput_per_sec(&self) -> f64 {
        if self.makespan.is_zero() {
            0.0
        } else {
            self.iterations as f64 / self.makespan.as_secs_f64()
        }
    }

    /// Average iteration period.
    pub fn avg_period(&self) -> TimePs {
        if self.iterations == 0 {
            TimePs::ZERO
        } else {
            self.makespan / self.iterations as u64
        }
    }

    /// Per-iteration periods (difference of consecutive completion times;
    /// the first period is measured from time zero). Empty when iteration
    /// completion was not recorded.
    pub fn iteration_periods(&self) -> Vec<TimePs> {
        let mut out = Vec::with_capacity(self.iteration_ends.len());
        let mut prev = TimePs::ZERO;
        for &end in &self.iteration_ends {
            out.push(end.saturating_sub(prev));
            prev = end;
        }
        out
    }

    /// The `p`-th percentile (0–100) of the iteration-period distribution
    /// (nearest-rank). `None` when no periods were recorded.
    pub fn period_percentile(&self, p: f64) -> Option<TimePs> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        let mut periods = self.iteration_periods();
        if periods.is_empty() {
            return None;
        }
        periods.sort_unstable();
        let rank = ((p / 100.0 * periods.len() as f64).ceil() as usize).clamp(1, periods.len());
        Some(periods[rank - 1])
    }

    /// Render a short human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} iterations in {} ({:.1} it/s); {} reconfigurations ({} fetch-hidden), \
             lock-up {}",
            self.iterations,
            self.makespan,
            self.throughput_per_sec(),
            self.reconfig_count(),
            self.hidden_fetches(),
            self.lockup_time()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            makespan: TimePs::from_ms(10),
            iterations: 100,
            operator_busy: [("fpga".to_string(), TimePs::from_ms(5))].into(),
            medium_busy: BTreeMap::new(),
            reconfigs: vec![
                ReconfigEvent {
                    operator: "op_dyn".into(),
                    module: "mod_qam16".into(),
                    iteration: 3,
                    requested_at: TimePs::from_ms(1),
                    ready_at: TimePs::from_ms(5),
                    fetch_hidden: false,
                },
                ReconfigEvent {
                    operator: "op_dyn".into(),
                    module: "mod_qpsk".into(),
                    iteration: 9,
                    requested_at: TimePs::from_ms(7),
                    ready_at: TimePs::from_ms(8),
                    fetch_hidden: true,
                },
            ],
            manager_stats: BTreeMap::new(),
            iteration_ends: (1..=100).map(|i| TimePs::from_us(i * 100)).collect(),
            trace: Vec::new(),
        }
    }

    #[test]
    fn lockup_and_counts() {
        let r = report();
        assert_eq!(r.lockup_time(), TimePs::from_ms(5));
        assert_eq!(r.reconfig_count(), 2);
        assert_eq!(r.hidden_fetches(), 1);
    }

    #[test]
    fn utilization_and_throughput() {
        let r = report();
        assert!((r.utilization("fpga") - 0.5).abs() < 1e-12);
        assert_eq!(r.utilization("ghost"), 0.0);
        assert!((r.throughput_per_sec() - 10_000.0).abs() < 1e-6);
        assert_eq!(r.avg_period(), TimePs::from_us(100));
    }

    #[test]
    fn iteration_periods_and_percentiles() {
        let r = report();
        let periods = r.iteration_periods();
        assert_eq!(periods.len(), 100);
        assert!(periods.iter().all(|&p| p == TimePs::from_us(100)));
        assert_eq!(r.period_percentile(50.0), Some(TimePs::from_us(100)));
        assert_eq!(r.period_percentile(99.0), Some(TimePs::from_us(100)));
        let mut empty = report();
        empty.iteration_ends.clear();
        assert_eq!(empty.period_percentile(50.0), None);
        assert!(empty.iteration_periods().is_empty());
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_out_of_range_panics() {
        let _ = report().period_percentile(101.0);
    }

    #[test]
    fn summary_mentions_the_numbers() {
        let s = report().summary();
        assert!(s.contains("100 iterations"));
        assert!(s.contains("2 reconfigurations"));
        assert!(s.contains("1 fetch-hidden"));
    }
}
