//! The discrete-event core: a time-ordered queue with deterministic ties.
//!
//! Determinism matters: every experiment in `EXPERIMENTS.md` must reproduce
//! bit-for-bit. Events at equal times pop in insertion order (a
//! monotonically increasing sequence number breaks ties), so simulation
//! results never depend on heap internals.

use pdr_fabric::TimePs;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic time-ordered event queue carrying payloads of type `T`.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<(TimePs, u64)>>,
    payloads: Vec<Option<(TimePs, T)>>,
    seq: u64,
    now: TimePs,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            payloads: Vec::new(),
            seq: 0,
            now: TimePs::ZERO,
        }
    }

    /// Current simulated time (the time of the last popped event).
    pub fn now(&self) -> TimePs {
        self.now
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current time (causality).
    pub fn schedule(&mut self, at: TimePs, payload: T) {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        let idx = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((at, idx)));
        // payloads is indexed by sequence number.
        let i = idx as usize;
        if self.payloads.len() <= i {
            self.payloads.resize_with(i + 1, || None);
        }
        self.payloads[i] = Some((at, payload));
    }

    /// Schedule `payload` after a delay from now.
    pub fn schedule_in(&mut self, delay: TimePs, payload: T) {
        let at = self.now + delay;
        self.schedule(at, payload);
    }

    /// Pop the next event, advancing the clock. `None` when empty.
    pub fn pop(&mut self) -> Option<(TimePs, T)> {
        while let Some(Reverse((at, idx))) = self.heap.pop() {
            if let Some((t, payload)) = self.payloads[idx as usize].take() {
                debug_assert_eq!(t, at);
                self.now = at;
                return Some((at, payload));
            }
        }
        None
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(TimePs::from_ns(30), "c");
        q.schedule(TimePs::from_ns(10), "a");
        q.schedule(TimePs::from_ns(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..16 {
            q.schedule(TimePs::from_ns(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(TimePs::from_us(3), ());
        assert_eq!(q.now(), TimePs::ZERO);
        q.pop();
        assert_eq!(q.now(), TimePs::from_us(3));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(TimePs::from_us(1), "first");
        q.pop();
        q.schedule_in(TimePs::from_us(2), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, TimePs::from_us(3));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(TimePs::from_us(5), ());
        q.pop();
        q.schedule(TimePs::from_us(1), ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(TimePs::from_ns(1), ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
