//! The synchronized-executive interpreter.
//!
//! [`SimSystem`] executes one [`Executive`] on one [`ArchGraph`]:
//! every operator steps through its macro-code in order; `Send`/`Receive`
//! pairs rendezvous by (tag, iteration) and occupy their medium for the
//! characterized transfer time (FCFS contention); `Configure` instructions
//! are served by the attached per-region
//! [`ConfigurationManager`] — or, when none is attached, by the
//! instruction's characterized worst case. The whole program repeats for
//! [`SimConfig::iterations`] iterations.
//!
//! Per-iteration module *selections* (the DSP writing the `Select`
//! register in §6) override the statically-labeled `Configure` module, so
//! one executive serves every selector trace. Compute durations remain the
//! executive's WCET labels — the synchronized-executive contract (§3) is
//! that timing is validated against worst cases.
//!
//! The interpreter is deterministic: the event queue breaks time ties by
//! insertion order and all map iterations are over ordered containers.

use crate::engine::EventQueue;
use crate::error::SimError;
use crate::report::{ReconfigEvent, SimReport, TraceEvent, TraceKind};
use pdr_adequation::{Executive, MacroInstr};
use pdr_fabric::TimePs;
use pdr_graph::{ArchGraph, MediumId};
use pdr_rtr::ConfigurationManager;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Simulation parameters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of executive iterations to run.
    pub iterations: u32,
    /// Capture the full event trace (costs memory on long runs).
    pub capture_trace: bool,
    /// Per dynamic operator: the module to configure at each iteration
    /// (overrides the executive's static `Configure` label). Length must
    /// equal `iterations`.
    pub selections: BTreeMap<String, Vec<String>>,
}

impl SimConfig {
    /// Config for `iterations` iterations, no overrides, no trace.
    pub fn iterations(iterations: u32) -> Self {
        SimConfig {
            iterations,
            ..Default::default()
        }
    }

    /// Attach a per-iteration module selection for a dynamic operator.
    pub fn with_selection(mut self, operator: &str, modules: Vec<String>) -> Self {
        self.selections.insert(operator.to_string(), modules);
        self
    }

    /// Enable trace capture.
    pub fn with_trace(mut self) -> Self {
        self.capture_trace = true;
        self
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Status {
    /// Schedulable at the operator's next wakeup.
    Ready,
    /// Blocked waiting for a rendezvous partner.
    Blocked(String),
    /// All iterations executed.
    Done,
}

struct OpRuntime {
    name: String,
    program: Vec<MacroInstr>,
    pc: usize,
    iteration: u32,
    status: Status,
    busy: TimePs,
}

/// A runnable system: architecture + executive + configuration managers.
pub struct SimSystem<'a> {
    arch: &'a ArchGraph,
    executive: &'a Executive,
    managers: BTreeMap<String, ConfigurationManager>,
}

impl<'a> SimSystem<'a> {
    /// Build a system; attach managers with [`SimSystem::add_manager`].
    pub fn new(arch: &'a ArchGraph, executive: &'a Executive) -> Self {
        SimSystem {
            arch,
            executive,
            managers: BTreeMap::new(),
        }
    }

    /// Attach the configuration manager serving the named dynamic operator.
    pub fn add_manager(&mut self, operator: &str, manager: ConfigurationManager) -> &mut Self {
        self.managers.insert(operator.to_string(), manager);
        self
    }

    /// Run the system and produce a report.
    pub fn run(&mut self, config: &SimConfig) -> Result<SimReport, SimError> {
        // Validate selections.
        for (opr, mods) in &config.selections {
            if self.arch.operator_by_name(opr).is_none() {
                return Err(SimError::BadSelection(format!("unknown operator `{opr}`")));
            }
            if mods.len() != config.iterations as usize {
                return Err(SimError::BadSelection(format!(
                    "selection for `{opr}` has {} entries, expected {}",
                    mods.len(),
                    config.iterations
                )));
            }
        }
        // Build operator runtimes (every operator with a program; operators
        // without macro-code are trivially done).
        let mut ops: Vec<OpRuntime> = Vec::new();
        for (opr, program) in &self.executive.per_operator {
            if self.arch.operator_by_name(opr).is_none() {
                return Err(SimError::UnknownName(opr.clone()));
            }
            ops.push(OpRuntime {
                name: opr.clone(),
                program: program.clone(),
                pc: 0,
                iteration: 0,
                status: if config.iterations == 0 {
                    Status::Done
                } else {
                    Status::Ready
                },
                busy: TimePs::ZERO,
            });
        }
        let medium_id_of = |name: &str| -> Result<MediumId, SimError> {
            self.arch
                .medium_by_name(name)
                .ok_or_else(|| SimError::UnknownName(name.to_string()))
        };

        let mut queue: EventQueue<usize> = EventQueue::new();
        for i in 0..ops.len() {
            queue.schedule(TimePs::ZERO, i);
        }

        // Rendezvous bookkeeping: (tag, iteration) -> (op index, arrival).
        let mut pending_send: HashMap<(u32, u32), (usize, TimePs)> = HashMap::new();
        let mut pending_recv: HashMap<(u32, u32), (usize, TimePs)> = HashMap::new();
        let mut medium_free: BTreeMap<String, TimePs> = BTreeMap::new();
        let mut medium_busy: BTreeMap<String, TimePs> = BTreeMap::new();
        let mut reconfigs: Vec<ReconfigEvent> = Vec::new();
        let mut trace: Vec<TraceEvent> = Vec::new();
        let mut makespan = TimePs::ZERO;
        let mut iteration_ends = vec![TimePs::ZERO; config.iterations as usize];

        while let Some((now, i)) = queue.pop() {
            makespan = makespan.max(now);
            if ops[i].status == Status::Done {
                continue;
            }
            ops[i].status = Status::Ready;
            // Step instructions until the operator blocks or finishes.
            'step: loop {
                if ops[i].pc >= ops[i].program.len() {
                    if !ops[i].program.is_empty() {
                        let done = ops[i].iteration as usize;
                        if done < iteration_ends.len() {
                            iteration_ends[done] = iteration_ends[done].max(now);
                        }
                    }
                    ops[i].iteration += 1;
                    ops[i].pc = 0;
                    if ops[i].iteration >= config.iterations {
                        ops[i].status = Status::Done;
                        break 'step;
                    }
                    if ops[i].program.is_empty() {
                        ops[i].iteration = config.iterations;
                        ops[i].status = Status::Done;
                        break 'step;
                    }
                    continue 'step;
                }
                let instr = ops[i].program[ops[i].pc].clone();
                let iter = ops[i].iteration;
                match instr {
                    MacroInstr::Compute {
                        op,
                        function,
                        duration,
                        ..
                    } => {
                        ops[i].pc += 1;
                        ops[i].busy += duration;
                        if config.capture_trace {
                            trace.push(TraceEvent {
                                site: ops[i].name.clone(),
                                iteration: iter,
                                start: now,
                                end: now + duration,
                                kind: TraceKind::Compute { op, function },
                            });
                        }
                        if duration.is_zero() {
                            continue 'step;
                        }
                        queue.schedule(now + duration, i);
                        break 'step;
                    }
                    MacroInstr::Configure { module, worst_case } => {
                        // Selection vectors are validated against the
                        // iteration count up front, but index defensively:
                        // a short vector is a typed error, not a panic.
                        let chosen = match config.selections.get(&ops[i].name) {
                            Some(mods) => mods.get(iter as usize).cloned().ok_or_else(|| {
                                SimError::BadSelection(format!(
                                    "selection for `{}` has no entry for iteration {iter}",
                                    ops[i].name
                                ))
                            })?,
                            None => module,
                        };
                        let (ready_at, hidden) = match self.managers.get_mut(&ops[i].name) {
                            Some(mgr) => {
                                let out = mgr
                                    .request(&chosen, now)
                                    .map_err(|e| SimError::Manager(e.to_string()))?;
                                if out.already_loaded {
                                    ops[i].pc += 1;
                                    continue 'step;
                                }
                                (out.ready_at, out.fetch_hidden)
                            }
                            // No manager: charge the characterized worst case
                            // on first touch and every change (we cannot know
                            // residency without a manager, so be pessimistic).
                            None => (now + worst_case, false),
                        };
                        ops[i].pc += 1;
                        ops[i].busy += ready_at - now;
                        reconfigs.push(ReconfigEvent {
                            operator: ops[i].name.clone(),
                            module: chosen.clone(),
                            iteration: iter,
                            requested_at: now,
                            ready_at,
                            fetch_hidden: hidden,
                        });
                        if config.capture_trace {
                            trace.push(TraceEvent {
                                site: ops[i].name.clone(),
                                iteration: iter,
                                start: now,
                                end: ready_at,
                                kind: TraceKind::Reconfigure {
                                    module: chosen,
                                    fetch_hidden: hidden,
                                },
                            });
                        }
                        if ready_at == now {
                            continue 'step;
                        }
                        queue.schedule(ready_at, i);
                        break 'step;
                    }
                    MacroInstr::Send {
                        to,
                        medium,
                        bits,
                        tag,
                    } => {
                        let key = (tag, iter);
                        if let Some((j, _)) = pending_recv.remove(&key) {
                            let med = medium_id_of(&medium)?;
                            let free = medium_free.get(&medium).copied().unwrap_or(TimePs::ZERO);
                            let start = now.max(free);
                            let end = start + self.arch.medium(med).transfer_time(bits);
                            medium_free.insert(medium.clone(), end);
                            *medium_busy.entry(medium.clone()).or_default() += end - start;
                            if config.capture_trace {
                                trace.push(TraceEvent {
                                    site: medium.clone(),
                                    iteration: iter,
                                    start,
                                    end,
                                    kind: TraceKind::Transfer {
                                        from: ops[i].name.clone(),
                                        to: to.clone(),
                                        medium: medium.clone(),
                                        bits,
                                    },
                                });
                            }
                            ops[i].pc += 1;
                            ops[j].pc += 1;
                            ops[j].status = Status::Ready;
                            queue.schedule(end, i);
                            queue.schedule(end, j);
                            break 'step;
                        }
                        pending_send.insert(key, (i, now));
                        ops[i].status = Status::Blocked(format!("send tag {tag} iter {iter}"));
                        break 'step;
                    }
                    MacroInstr::Receive {
                        tag,
                        medium,
                        bits,
                        from,
                    } => {
                        let key = (tag, iter);
                        if let Some((j, _)) = pending_send.remove(&key) {
                            let med = medium_id_of(&medium)?;
                            let free = medium_free.get(&medium).copied().unwrap_or(TimePs::ZERO);
                            let start = now.max(free);
                            let end = start + self.arch.medium(med).transfer_time(bits);
                            medium_free.insert(medium.clone(), end);
                            *medium_busy.entry(medium.clone()).or_default() += end - start;
                            if config.capture_trace {
                                trace.push(TraceEvent {
                                    site: medium.clone(),
                                    iteration: iter,
                                    start,
                                    end,
                                    kind: TraceKind::Transfer {
                                        from,
                                        to: ops[i].name.clone(),
                                        medium: medium.clone(),
                                        bits,
                                    },
                                });
                            }
                            ops[i].pc += 1;
                            ops[j].pc += 1;
                            ops[j].status = Status::Ready;
                            queue.schedule(end, i);
                            queue.schedule(end, j);
                            break 'step;
                        }
                        pending_recv.insert(key, (i, now));
                        ops[i].status = Status::Blocked(format!("recv tag {tag} iter {iter}"));
                        break 'step;
                    }
                }
            }
        }

        // Every operator must have finished.
        let blocked: Vec<(String, String)> = ops
            .iter()
            .filter(|o| o.status != Status::Done)
            .map(|o| {
                let why = match &o.status {
                    Status::Blocked(w) => w.clone(),
                    s => format!("{s:?}"),
                };
                (o.name.clone(), why)
            })
            .collect();
        if !blocked.is_empty() {
            return Err(SimError::Deadlock {
                at_ps: makespan.as_ps(),
                blocked,
            });
        }

        let mut operator_busy = BTreeMap::new();
        for o in &ops {
            operator_busy.insert(o.name.clone(), o.busy);
        }
        let manager_stats = self
            .managers
            .iter()
            .map(|(k, m)| (k.clone(), m.stats()))
            .collect();
        Ok(SimReport {
            makespan,
            iterations: config.iterations,
            operator_busy,
            medium_busy,
            reconfigs,
            manager_stats,
            iteration_ends,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_adequation::executive::generate_executive;
    use pdr_adequation::{adequate, AdequationOptions};
    use pdr_fabric::{Bitstream, Device, PortProfile, ReconfigRegion};
    use pdr_graph::paper;
    use pdr_rtr::{BitstreamCache, BitstreamStore, MemoryModel, ProtocolBuilder, ScheduleDriven};

    struct Setup {
        arch: ArchGraph,
        executive: Executive,
    }

    fn paper_setup() -> Setup {
        let algo = paper::mccdma_algorithm();
        let arch = paper::sundance_architecture();
        let chars = paper::mccdma_characterization();
        let cons = paper::mccdma_constraints();
        let opts = AdequationOptions::default()
            .pin("interface_in", "dsp")
            .pin("select", "dsp")
            .pin("interface_out", "fpga_static");
        let r = adequate(&algo, &arch, &chars, &cons, &opts).unwrap();
        let executive = generate_executive(&algo, &arch, &chars, &r.mapping, &r.schedule).unwrap();
        Setup { arch, executive }
    }

    fn paper_manager_with_cache(
        cache_modules: usize,
        prefetch_seq: Option<Vec<String>>,
    ) -> ConfigurationManager {
        let d = Device::xc2v2000();
        let region = ReconfigRegion::new("op_dyn", 20, 4).unwrap();
        let mut store = BitstreamStore::new();
        let qpsk = Bitstream::partial_for_region(&d, &region, 1);
        let bytes = qpsk.len_bytes();
        store.insert("mod_qpsk", qpsk);
        store.insert("mod_qam16", Bitstream::partial_for_region(&d, &region, 2));
        let builder = ProtocolBuilder::new(d, PortProfile::icap_virtex2());
        let mut mgr = ConfigurationManager::new(
            builder,
            store,
            BitstreamCache::sized_for(cache_modules, bytes),
            MemoryModel::paper_flash(),
            "op_dyn",
        );
        if let Some(seq) = prefetch_seq {
            mgr = mgr.with_predictor(Box::new(ScheduleDriven::new(seq)));
        }
        mgr.preload("mod_qpsk").unwrap();
        mgr
    }

    fn paper_manager(prefetch_seq: Option<Vec<String>>) -> ConfigurationManager {
        paper_manager_with_cache(2, prefetch_seq)
    }

    fn alternating(n: u32) -> Vec<String> {
        (0..n)
            .map(|i| {
                if (i / 4) % 2 == 0 {
                    "mod_qpsk".to_string()
                } else {
                    "mod_qam16".to_string()
                }
            })
            .collect()
    }

    #[test]
    fn steady_state_runs_without_reconfiguration() {
        let s = paper_setup();
        let mut sys = SimSystem::new(&s.arch, &s.executive);
        sys.add_manager("op_dyn", paper_manager(None));
        let cfg =
            SimConfig::iterations(16).with_selection("op_dyn", vec!["mod_qpsk".to_string(); 16]);
        let report = sys.run(&cfg).unwrap();
        assert_eq!(report.reconfig_count(), 0);
        assert_eq!(report.iterations, 16);
        assert!(report.makespan > TimePs::ZERO);
        // Symbol period is tens of microseconds: 16 iterations < 2 ms.
        assert!(report.makespan < TimePs::from_ms(2), "{}", report.makespan);
    }

    #[test]
    fn switching_triggers_reconfigurations_with_4ms_latency() {
        let s = paper_setup();
        let mut sys = SimSystem::new(&s.arch, &s.executive);
        // 1-module cache: every switch evicts the other module, so each
        // reconfiguration is cold — the paper's request-to-ready path.
        sys.add_manager("op_dyn", paper_manager_with_cache(1, None));
        let cfg = SimConfig::iterations(16).with_selection("op_dyn", alternating(16));
        let report = sys.run(&cfg).unwrap();
        // Switches at iterations 4, 8, 12 → 3 reconfigurations.
        assert_eq!(report.reconfig_count(), 3);
        // Cold fetch (~3 ms) + ICAP load (~1 ms) ≈ 4 ms each: §6's number.
        for rc in &report.reconfigs {
            let ms = rc.latency().as_millis_f64();
            assert!((3.5..4.6).contains(&ms), "latency {ms} ms");
        }
        assert!(report.lockup_time() > TimePs::from_ms(10));
    }

    #[test]
    fn warm_cache_cuts_repeat_switches_to_load_only() {
        let s = paper_setup();
        let mut sys = SimSystem::new(&s.arch, &s.executive);
        sys.add_manager("op_dyn", paper_manager(None)); // 2-module cache
        let cfg = SimConfig::iterations(16).with_selection("op_dyn", alternating(16));
        let report = sys.run(&cfg).unwrap();
        assert_eq!(report.reconfig_count(), 3);
        // The first two switches fetch cold (the preloaded module was never
        // staged in the cache); once both modules are cached, the third
        // switch pays only the ~1 ms ICAP load.
        for rc in &report.reconfigs[..2] {
            let ms = rc.latency().as_millis_f64();
            assert!((3.5..4.6).contains(&ms), "cold {ms} ms");
        }
        let warm = report.reconfigs[2].latency().as_millis_f64();
        assert!((0.8..1.3).contains(&warm), "warm {warm} ms");
        assert!(report.reconfigs[2].fetch_hidden);
    }

    #[test]
    fn prefetching_cuts_lockup_time() {
        let s = paper_setup();
        // Baseline: no predictor, tiny cache (no reuse): every switch pays
        // the fetch.
        let mut base_sys = SimSystem::new(&s.arch, &s.executive);
        let d = Device::xc2v2000();
        let region = ReconfigRegion::new("op_dyn", 20, 4).unwrap();
        let mut store = BitstreamStore::new();
        let qpsk = Bitstream::partial_for_region(&d, &region, 1);
        let bytes = qpsk.len_bytes();
        store.insert("mod_qpsk", qpsk);
        store.insert("mod_qam16", Bitstream::partial_for_region(&d, &region, 2));
        let mut tiny = ConfigurationManager::new(
            ProtocolBuilder::new(d, PortProfile::icap_virtex2()),
            store,
            BitstreamCache::sized_for(1, bytes),
            MemoryModel::paper_flash(),
            "op_dyn",
        );
        tiny.preload("mod_qpsk").unwrap();
        base_sys.add_manager("op_dyn", tiny);
        let cfg = SimConfig::iterations(24).with_selection("op_dyn", alternating(24));
        let base = base_sys.run(&cfg).unwrap();

        // Prefetching: schedule-driven predictor + 2-module cache.
        let loads: Vec<String> = {
            // The switch sequence after the preloaded qpsk.
            let mut seq = Vec::new();
            let sel = alternating(24);
            let mut cur = "mod_qpsk".to_string();
            for m in sel {
                if m != cur {
                    seq.push(m.clone());
                    cur = m;
                }
            }
            seq
        };
        let mut pf_sys = SimSystem::new(&s.arch, &s.executive);
        pf_sys.add_manager("op_dyn", paper_manager(Some(loads)));
        let pf = pf_sys.run(&cfg).unwrap();

        assert_eq!(base.reconfig_count(), pf.reconfig_count());
        assert!(
            pf.lockup_time() < base.lockup_time(),
            "prefetch lockup {} !< baseline {}",
            pf.lockup_time(),
            base.lockup_time()
        );
        assert!(pf.makespan < base.makespan);
        assert!(pf.hidden_fetches() > 0);
    }

    #[test]
    fn no_manager_uses_worst_case() {
        let s = paper_setup();
        let mut sys = SimSystem::new(&s.arch, &s.executive);
        let cfg = SimConfig::iterations(2);
        let report = sys.run(&cfg).unwrap();
        // Without a manager every Configure is charged the 4 ms WCET.
        assert_eq!(report.reconfig_count(), 2);
        for rc in &report.reconfigs {
            assert_eq!(rc.latency(), TimePs::from_ms(4));
        }
    }

    #[test]
    fn trace_capture_records_events() {
        let s = paper_setup();
        let mut sys = SimSystem::new(&s.arch, &s.executive);
        sys.add_manager("op_dyn", paper_manager(None));
        let cfg = SimConfig::iterations(2)
            .with_selection("op_dyn", vec!["mod_qpsk".into(), "mod_qam16".into()])
            .with_trace();
        let report = sys.run(&cfg).unwrap();
        assert!(!report.trace.is_empty());
        assert!(report
            .trace
            .iter()
            .any(|e| matches!(e.kind, TraceKind::Transfer { .. })));
        assert!(report
            .trace
            .iter()
            .any(|e| matches!(e.kind, TraceKind::Compute { .. })));
        assert!(report
            .trace
            .iter()
            .any(|e| matches!(e.kind, TraceKind::Reconfigure { .. })));
        // Trace events are well-formed.
        for e in &report.trace {
            assert!(e.end >= e.start);
        }
    }

    #[test]
    fn bad_selection_length_rejected() {
        let s = paper_setup();
        let mut sys = SimSystem::new(&s.arch, &s.executive);
        let cfg =
            SimConfig::iterations(4).with_selection("op_dyn", vec!["mod_qpsk".to_string(); 3]);
        assert!(matches!(sys.run(&cfg), Err(SimError::BadSelection(_))));
        let cfg = SimConfig::iterations(1).with_selection("ghost", vec!["mod_qpsk".to_string()]);
        assert!(matches!(sys.run(&cfg), Err(SimError::BadSelection(_))));
    }

    #[test]
    fn unknown_module_in_selection_surfaces_manager_error() {
        let s = paper_setup();
        let mut sys = SimSystem::new(&s.arch, &s.executive);
        sys.add_manager("op_dyn", paper_manager(None));
        let cfg = SimConfig::iterations(1).with_selection("op_dyn", vec!["mod_ghost".to_string()]);
        assert!(matches!(sys.run(&cfg), Err(SimError::Manager(_))));
    }

    #[test]
    fn deadlock_detected_on_unmatched_rendezvous() {
        let mut arch = ArchGraph::new("t");
        arch.add_operator("a", pdr_graph::OperatorKind::Processor)
            .unwrap();
        arch.add_operator("b", pdr_graph::OperatorKind::Processor)
            .unwrap();
        let a_id = arch.operator_by_name("a").unwrap();
        let b_id = arch.operator_by_name("b").unwrap();
        let m = arch
            .add_medium("m", pdr_graph::MediumKind::Bus, 1_000_000, TimePs::ZERO)
            .unwrap();
        arch.link(a_id, m).unwrap();
        arch.link(b_id, m).unwrap();
        let mut exec = Executive::default();
        exec.per_operator.insert(
            "a".into(),
            vec![MacroInstr::Send {
                to: "b".into(),
                medium: "m".into(),
                bits: 8,
                tag: 1,
            }],
        );
        // b never receives.
        exec.per_operator.insert("b".into(), vec![]);
        let mut sys = SimSystem::new(&arch, &exec);
        let err = sys.run(&SimConfig::iterations(1)).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
        assert!(err.to_string().contains("send tag 1"));
    }

    #[test]
    fn zero_iterations_is_empty_success() {
        let s = paper_setup();
        let mut sys = SimSystem::new(&s.arch, &s.executive);
        let report = sys.run(&SimConfig::iterations(0)).unwrap();
        assert_eq!(report.makespan, TimePs::ZERO);
        assert_eq!(report.reconfig_count(), 0);
    }

    #[test]
    fn reconfigurations_show_up_as_period_jitter() {
        // Steady state: tight period distribution. Switching every 8
        // symbols: the p99 period carries the ~4 ms reconfiguration spike
        // while the median stays at the steady-state period.
        let s = paper_setup();
        let mut sys = SimSystem::new(&s.arch, &s.executive);
        sys.add_manager("op_dyn", paper_manager_with_cache(1, None));
        let cfg = SimConfig::iterations(64).with_selection("op_dyn", alternating(64));
        let report = sys.run(&cfg).unwrap();
        assert_eq!(report.iteration_ends.len(), 64);
        // Completion times are monotone.
        assert!(report.iteration_ends.windows(2).all(|w| w[0] <= w[1]));
        let p50 = report.period_percentile(50.0).unwrap();
        let p99 = report.period_percentile(99.0).unwrap();
        assert!(
            p99 > p50 * 10,
            "reconfig spikes must dominate the tail: p50 {p50}, p99 {p99}"
        );
        assert!(p99 > TimePs::from_ms(3), "p99 {p99} carries the 4 ms spike");
        assert!(p50 < TimePs::from_us(200), "p50 {p50} is steady-state");
    }

    #[test]
    fn determinism_across_runs() {
        let s = paper_setup();
        let run = || {
            let mut sys = SimSystem::new(&s.arch, &s.executive);
            sys.add_manager("op_dyn", paper_manager(None));
            let cfg = SimConfig::iterations(12).with_selection("op_dyn", alternating(12));
            sys.run(&cfg).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.reconfigs, b.reconfigs);
        assert_eq!(a.operator_busy, b.operator_busy);
    }

    #[test]
    fn pipelining_across_iterations_shrinks_period() {
        // Throughput over many iterations beats the single-iteration
        // latency because independent resources overlap across iterations.
        let s = paper_setup();
        let mut sys = SimSystem::new(&s.arch, &s.executive);
        sys.add_manager("op_dyn", paper_manager(None));
        let one = sys
            .run(&SimConfig::iterations(1).with_selection("op_dyn", alternating(1)))
            .unwrap();
        let mut sys2 = SimSystem::new(&s.arch, &s.executive);
        sys2.add_manager("op_dyn", paper_manager(None));
        let many = sys2
            .run(
                &SimConfig::iterations(64)
                    .with_selection("op_dyn", vec!["mod_qpsk".to_string(); 64]),
            )
            .unwrap();
        assert!(many.avg_period() <= one.makespan);
    }
}
