//! # pdr-sim — discrete-event simulation of reconfigurable systems
//!
//! The paper validates its flow by running the generated design on a real
//! Sundance board. The reproduction's board is this crate: a
//! discrete-event simulator that
//!
//! * interprets each operator's **synchronized executive** (the macro-code
//!   of `pdr-adequation`) instruction by instruction,
//! * resolves **Send/Receive rendezvous** over shared media with the
//!   architecture graph's bandwidth/latency characteristics and
//!   first-come-first-served contention,
//! * services **Configure** instructions through a `pdr-rtr`
//!   [`ConfigurationManager`](pdr_rtr::ConfigurationManager) per dynamic
//!   region — including staging-cache hits and prefetching — and asserts
//!   the `In_Reconf` lock-up for the duration (§6: the static interface's
//!   receive process is locked up during partial reconfigurations),
//! * repeats the executive for a configurable number of iterations with a
//!   per-iteration **module selection** (the DSP writing the `Select`
//!   register),
//! * and reports makespan, utilization, reconfiguration events and stalls
//!   ([`report::SimReport`]).
//!
//! The engine ([`engine`]) is a classic time-ordered event queue with
//! deterministic tie-breaking; the interpreter ([`system`]) builds on it.

pub mod engine;
pub mod error;
pub mod gantt;
pub mod ir;
pub mod report;
pub mod system;

pub use engine::EventQueue;
pub use error::SimError;
pub use ir::IrSimSystem;
pub use report::{ReconfigEvent, SimReport, TraceEvent, TraceKind};
pub use system::{SimConfig, SimSystem};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::engine::EventQueue;
    pub use crate::error::SimError;
    pub use crate::gantt::{to_csv, to_gantt};
    pub use crate::ir::IrSimSystem;
    pub use crate::report::{ReconfigEvent, SimReport, TraceEvent, TraceKind};
    pub use crate::system::{SimConfig, SimSystem};
}
