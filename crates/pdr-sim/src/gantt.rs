//! Trace rendering: ASCII Gantt charts and CSV export.
//!
//! The paper's Fig. 4 discussion reasons about *when* the dynamic part is
//! locked up relative to the data path; these helpers make that visible
//! from a captured [`SimReport`] trace (enable with
//! [`crate::SimConfig::with_trace`]).

use crate::report::{SimReport, TraceEvent, TraceKind};
use pdr_fabric::TimePs;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Render the trace as CSV (`site,iteration,kind,label,start_ps,end_ps`).
pub fn to_csv(report: &SimReport) -> String {
    let mut out = String::from("site,iteration,kind,label,start_ps,end_ps\n");
    for e in &report.trace {
        let (kind, label) = describe(e);
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            e.site,
            e.iteration,
            kind,
            label,
            e.start.as_ps(),
            e.end.as_ps()
        );
    }
    out
}

fn describe(e: &TraceEvent) -> (&'static str, String) {
    match &e.kind {
        TraceKind::Compute { op, function } => ("compute", format!("{op}[{function}]")),
        TraceKind::Transfer { from, to, bits, .. } => ("transfer", format!("{from}->{to}:{bits}b")),
        TraceKind::Reconfigure {
            module,
            fetch_hidden,
        } => (
            "reconfigure",
            format!("{module}{}", if *fetch_hidden { "*" } else { "" }),
        ),
    }
}

/// Render an ASCII Gantt chart of the trace, one row per site, `width`
/// character cells over the full makespan. Cell legend: `#` compute,
/// `=` transfer, `R` reconfigure, `.` idle.
pub fn to_gantt(report: &SimReport, width: usize) -> String {
    assert!(width > 0, "width must be positive");
    let span = report.makespan.max(TimePs::from_ps(1));
    let mut rows: BTreeMap<&str, Vec<char>> = BTreeMap::new();
    for e in &report.trace {
        let row = rows
            .entry(e.site.as_str())
            .or_insert_with(|| vec!['.'; width]);
        let cell = |t: TimePs| -> usize {
            ((t.as_ps() as u128 * width as u128) / span.as_ps() as u128).min(width as u128 - 1)
                as usize
        };
        let (a, b) = (cell(e.start), cell(e.end).max(cell(e.start)));
        let ch = match e.kind {
            TraceKind::Compute { .. } => '#',
            TraceKind::Transfer { .. } => '=',
            TraceKind::Reconfigure { .. } => 'R',
        };
        for c in row.iter_mut().take(b + 1).skip(a) {
            // Reconfiguration marks win (the lock-up is what we look for).
            if *c == '.' || ch == 'R' {
                *c = ch;
            }
        }
    }
    let mut out = String::new();
    let name_w = rows.keys().map(|k| k.len()).max().unwrap_or(4);
    let _ = writeln!(out, "{:>name_w$} |{}| {}", "site", "-".repeat(width), span);
    for (site, cells) in rows {
        let _ = writeln!(
            out,
            "{site:>name_w$} |{}|",
            cells.into_iter().collect::<String>()
        );
    }
    out.push_str("legend: # compute, = transfer, R reconfigure, . idle\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ReconfigEvent;

    fn report_with_trace() -> SimReport {
        SimReport {
            makespan: TimePs::from_us(100),
            iterations: 2,
            operator_busy: BTreeMap::new(),
            medium_busy: BTreeMap::new(),
            reconfigs: vec![ReconfigEvent {
                operator: "op_dyn".into(),
                module: "mod_qam16".into(),
                iteration: 1,
                requested_at: TimePs::from_us(50),
                ready_at: TimePs::from_us(80),
                fetch_hidden: false,
            }],
            manager_stats: BTreeMap::new(),
            iteration_ends: Vec::new(),
            trace: vec![
                TraceEvent {
                    site: "fpga_static".into(),
                    iteration: 0,
                    start: TimePs::from_us(0),
                    end: TimePs::from_us(40),
                    kind: TraceKind::Compute {
                        op: "ifft64".into(),
                        function: "ifft64".into(),
                    },
                },
                TraceEvent {
                    site: "shb".into(),
                    iteration: 0,
                    start: TimePs::from_us(10),
                    end: TimePs::from_us(20),
                    kind: TraceKind::Transfer {
                        from: "dsp".into(),
                        to: "fpga_static".into(),
                        medium: "shb".into(),
                        bits: 128,
                    },
                },
                TraceEvent {
                    site: "op_dyn".into(),
                    iteration: 1,
                    start: TimePs::from_us(50),
                    end: TimePs::from_us(80),
                    kind: TraceKind::Reconfigure {
                        module: "mod_qam16".into(),
                        fetch_hidden: false,
                    },
                },
            ],
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = to_csv(&report_with_trace());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("site,iteration,kind"));
        assert!(csv.contains("compute,ifft64[ifft64]"));
        assert!(csv.contains("transfer,dsp->fpga_static:128b"));
        assert!(csv.contains("reconfigure,mod_qam16"));
    }

    #[test]
    fn gantt_rows_and_symbols() {
        let g = to_gantt(&report_with_trace(), 50);
        assert!(g.contains("fpga_static"));
        assert!(g.contains("op_dyn"));
        assert!(g.contains('#'));
        assert!(g.contains('='));
        assert!(g.contains('R'));
        assert!(g.contains("legend"));
        // Reconfiguration occupies roughly the second half of op_dyn's row.
        let row = g
            .lines()
            .find(|l| l.trim_start().starts_with("op_dyn"))
            .unwrap();
        let bar = &row[row.find('|').unwrap() + 1..row.rfind('|').unwrap()];
        assert!(bar[..20].chars().all(|c| c == '.'));
        assert!(bar[25..40].contains('R'));
    }

    #[test]
    fn empty_trace_renders_empty() {
        let mut r = report_with_trace();
        r.trace.clear();
        let g = to_gantt(&r, 20);
        assert!(g.contains("legend"));
        assert_eq!(to_csv(&r).lines().count(), 1);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_panics() {
        let _ = to_gantt(&report_with_trace(), 0);
    }

    #[test]
    fn end_to_end_gantt_from_real_trace() {
        // Smoke: a real simulated trace renders without panicking and shows
        // a reconfiguration.
        use pdr_adequation::executive::generate_executive;
        use pdr_adequation::{adequate, AdequationOptions};
        use pdr_graph::paper;
        let algo = paper::mccdma_algorithm();
        let arch = paper::sundance_architecture();
        let chars = paper::mccdma_characterization();
        let cons = paper::mccdma_constraints();
        let opts = AdequationOptions::default()
            .pin("interface_in", "dsp")
            .pin("select", "dsp")
            .pin("interface_out", "fpga_static");
        let r = adequate(&algo, &arch, &chars, &cons, &opts).unwrap();
        let exec = generate_executive(&algo, &arch, &chars, &r.mapping, &r.schedule).unwrap();
        let mut sys = crate::SimSystem::new(&arch, &exec);
        let cfg = crate::SimConfig::iterations(4)
            .with_selection(
                "op_dyn",
                vec![
                    "mod_qpsk".into(),
                    "mod_qam16".into(),
                    "mod_qam16".into(),
                    "mod_qpsk".into(),
                ],
            )
            .with_trace();
        let report = sys.run(&cfg).unwrap();
        let g = to_gantt(&report, 80);
        assert!(g.contains('R'));
        assert!(to_csv(&report).contains("reconfigure"));
    }
}
