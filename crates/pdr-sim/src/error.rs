//! Error type for the simulator.

use std::fmt;

/// Errors raised by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The executive references an operator or medium the architecture does
    /// not contain.
    UnknownName(String),
    /// The system stopped making progress before completing (mismatched
    /// rendezvous, a missing peer, or a configuration that never returns).
    Deadlock {
        /// Simulated time of the stall.
        at_ps: u64,
        /// Operators still blocked, with their state description.
        blocked: Vec<(String, String)>,
    },
    /// Configuration manager failure (unknown module, region mismatch...).
    Manager(String),
    /// A selection override names an iteration/operator that does not exist.
    BadSelection(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownName(n) => write!(f, "executive references unknown name `{n}`"),
            SimError::Deadlock { at_ps, blocked } => {
                write!(f, "deadlock at {at_ps} ps; blocked: ")?;
                for (i, (op, why)) in blocked.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "`{op}` ({why})")?;
                }
                Ok(())
            }
            SimError::Manager(msg) => write!(f, "configuration manager: {msg}"),
            SimError::BadSelection(msg) => write!(f, "bad selection override: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlock_display_lists_blocked() {
        let e = SimError::Deadlock {
            at_ps: 42,
            blocked: vec![
                ("dsp".into(), "send tag 3".into()),
                ("fpga".into(), "recv tag 9".into()),
            ],
        };
        let s = e.to_string();
        assert!(s.contains("dsp") && s.contains("recv tag 9"));
    }
}
