//! Block interleaving: burst-error protection between FEC and modulation.
//!
//! Convolutional codes correct scattered errors but die on bursts; deep
//! fades and QAM-16 symbol errors produce exactly bursts. A rows×cols
//! block interleaver (write row-wise, read column-wise) spreads a burst of
//! up to `rows` coded bits across the whole block, turning it into
//! correctable scattered errors — the standard companion of the paper's
//! coding chain.

/// A rows × cols block interleaver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockInterleaver {
    rows: usize,
    cols: usize,
}

impl BlockInterleaver {
    /// Interleaver over blocks of `rows * cols` bits.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "dimensions must be positive");
        BlockInterleaver { rows, cols }
    }

    /// Block size in bits.
    pub fn block_len(&self) -> usize {
        self.rows * self.cols
    }

    /// Interleave a block sequence (length must be a multiple of the
    /// block size): within each block, bit (r, c) moves to (c, r).
    pub fn interleave(&self, bits: &[u8]) -> Vec<u8> {
        self.permute(bits, true)
    }

    /// Inverse permutation.
    pub fn deinterleave(&self, bits: &[u8]) -> Vec<u8> {
        self.permute(bits, false)
    }

    fn permute(&self, bits: &[u8], forward: bool) -> Vec<u8> {
        let n = self.block_len();
        assert!(
            bits.len().is_multiple_of(n),
            "{} bits is not a multiple of the {}-bit block",
            bits.len(),
            n
        );
        let mut out = Vec::with_capacity(bits.len());
        for block in bits.chunks_exact(n) {
            for i in 0..n {
                let j = if forward {
                    // Read column-wise: output position i comes from
                    // (i % rows) * cols + i / rows.
                    (i % self.rows) * self.cols + i / self.rows
                } else {
                    (i % self.cols) * self.rows + i / self.cols
                };
                out.push(block[j]);
            }
        }
        out
    }

    /// The maximum burst length (in interleaved bits) whose errors land at
    /// least `cols` apart after deinterleaving.
    pub fn burst_tolerance(&self) -> usize {
        self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::Prbs;
    use crate::fec::{ConvEncoder, ViterbiDecoder};

    #[test]
    fn roundtrip_identity() {
        let il = BlockInterleaver::new(8, 16);
        let mut prbs = Prbs::new(11);
        let bits = prbs.take_bits(il.block_len() * 3);
        let scrambled = il.interleave(&bits);
        assert_ne!(scrambled, bits);
        assert_eq!(il.deinterleave(&scrambled), bits);
    }

    #[test]
    fn permutation_is_a_bijection() {
        let il = BlockInterleaver::new(4, 6);
        // Tag every position; all tags must survive exactly once.
        let bits: Vec<u8> = (0..24).map(|i| (i % 2) as u8).collect();
        let out = il.interleave(&bits);
        assert_eq!(out.len(), 24);
        let ones_in: usize = bits.iter().map(|&b| b as usize).sum();
        let ones_out: usize = out.iter().map(|&b| b as usize).sum();
        assert_eq!(ones_in, ones_out);
    }

    #[test]
    fn burst_is_spread() {
        let il = BlockInterleaver::new(8, 16);
        // A burst of 8 consecutive errors in the interleaved domain...
        let mut errors = vec![0u8; il.block_len()];
        for e in errors.iter_mut().take(30).skip(22) {
            *e = 1;
        }
        let spread = il.deinterleave(&errors);
        // ...lands with no two errors adjacent after deinterleaving.
        let adjacent = spread.windows(2).filter(|w| w[0] == 1 && w[1] == 1).count();
        assert_eq!(adjacent, 0, "burst not spread: {spread:?}");
    }

    #[test]
    fn interleaving_rescues_fec_from_bursts() {
        // A burst that defeats the bare Viterbi decoder is corrected when
        // the coded stream is interleaved.
        let mut prbs = Prbs::new(5);
        let info = prbs.take_bits(122); // 2*(122+6) = 256 coded bits = 2 blocks
        let coded = ConvEncoder::encode_terminated(&info);
        let il = BlockInterleaver::new(8, 16);
        assert_eq!(coded.len() % il.block_len(), 0);

        let burst = |bits: &mut [u8]| {
            for b in bits.iter_mut().take(60).skip(48) {
                *b ^= 1; // 12 consecutive errors
            }
        };

        // Without interleaving: the burst defeats the code.
        let mut plain = coded.clone();
        burst(&mut plain);
        assert_ne!(ViterbiDecoder::decode(&plain), info);

        // With interleaving: the same channel burst is spread and corrected.
        let mut tx = il.interleave(&coded);
        burst(&mut tx);
        let rx = il.deinterleave(&tx);
        assert_eq!(ViterbiDecoder::decode(&rx), info);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn misaligned_input_panics() {
        let il = BlockInterleaver::new(4, 4);
        let _ = il.interleave(&[0; 15]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_panics() {
        let _ = BlockInterleaver::new(0, 4);
    }

    #[test]
    fn burst_tolerance_reported() {
        assert_eq!(BlockInterleaver::new(8, 16).burst_tolerance(), 8);
    }
}
