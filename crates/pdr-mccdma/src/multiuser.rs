//! Multi-user MC-CDMA: the "CDMA" in the paper's transmitter.
//!
//! MC-CDMA superimposes several users on the same OFDM symbols, separated
//! by orthogonal Walsh codes. The single-user chain of [`crate::tx`] is
//! the paper's implementation granularity (one transmitter board); this
//! module provides the base-station view — many users combined before the
//! IFFT — and the matching per-user receivers, demonstrating that code
//! orthogonality survives the whole OFDM chain and AWGN.

use crate::complex::Cplx;
use crate::modulation::Modulation;
use crate::ofdm::OfdmModem;
use crate::spreading::WalshHadamard;
use crate::tx::TxConfig;

/// A multi-user MC-CDMA downlink transmitter (base station).
#[derive(Debug, Clone)]
pub struct MultiUserTransmitter {
    cfg: TxConfig,
    wh: WalshHadamard,
    ofdm: OfdmModem,
}

impl MultiUserTransmitter {
    /// Build from a [`TxConfig`] (the `user` field is ignored here; each
    /// call names its users explicitly). FEC is per-user and out of scope
    /// of the combiner: pass coded (or raw) bits.
    pub fn new(cfg: TxConfig) -> Self {
        assert!(
            cfg.subcarriers.is_multiple_of(cfg.spread_factor),
            "spreading factor must divide the subcarrier count"
        );
        MultiUserTransmitter {
            cfg,
            wh: WalshHadamard::new(cfg.spread_factor),
            ofdm: OfdmModem::new(cfg.subcarriers, cfg.cp_len),
        }
    }

    /// Bits each user contributes per OFDM symbol at `modulation`.
    pub fn bits_per_user_per_symbol(&self, modulation: Modulation) -> usize {
        (self.cfg.subcarriers / self.cfg.spread_factor) * modulation.bits_per_symbol()
    }

    /// Transmit one OFDM symbol carrying every (user, bits) pair.
    /// All users share one modulation per symbol (the downlink case).
    ///
    /// # Panics
    /// Panics on duplicate users, out-of-range codes, or wrong bit counts.
    pub fn transmit_symbol(&self, users: &[(usize, &[u8])], modulation: Modulation) -> Vec<Cplx> {
        assert!(!users.is_empty(), "at least one user");
        let expected = self.bits_per_user_per_symbol(modulation);
        let mut seen = vec![false; self.cfg.spread_factor];
        let mut streams = Vec::with_capacity(users.len());
        for (user, bits) in users {
            assert!(*user < self.cfg.spread_factor, "user {user} out of range");
            assert!(!seen[*user], "duplicate user {user}");
            seen[*user] = true;
            assert_eq!(bits.len(), expected, "user {user}: wrong bit count");
            let symbols = modulation.modulate(bits);
            streams.push(self.wh.spread(*user, &symbols));
        }
        let combined = WalshHadamard::combine(&streams);
        // Normalize by the active-user count so channel Es stays bounded.
        let k = 1.0 / (users.len() as f64).sqrt();
        let chips: Vec<Cplx> = combined.into_iter().map(|c| c.scale(k)).collect();
        self.ofdm.modulate_symbol(&chips)
    }

    /// Recover one user's bits from one received OFDM symbol.
    pub fn receive_symbol(
        &self,
        user: usize,
        samples: &[Cplx],
        modulation: Modulation,
        active_users: usize,
    ) -> Vec<u8> {
        assert!(active_users > 0);
        let chips = self.ofdm.demodulate_symbol(samples);
        // Undo the power normalization.
        let k = (active_users as f64).sqrt();
        let scaled: Vec<Cplx> = chips.into_iter().map(|c| c.scale(k)).collect();
        let symbols = self.wh.despread(user, &scaled);
        modulation.demodulate(&symbols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::Prbs;
    use crate::channel::AwgnChannel;

    fn setup() -> MultiUserTransmitter {
        MultiUserTransmitter::new(TxConfig {
            use_fec: false,
            ..TxConfig::paper()
        })
    }

    #[test]
    fn users_separate_perfectly_noiseless() {
        let tx = setup();
        let m = Modulation::Qpsk;
        let n = tx.bits_per_user_per_symbol(m);
        let mut prbs = Prbs::new(3);
        let payloads: Vec<Vec<u8>> = (0..4).map(|_| prbs.take_bits(n)).collect();
        let users: Vec<(usize, &[u8])> = [1usize, 7, 13, 30]
            .iter()
            .zip(&payloads)
            .map(|(&u, p)| (u, p.as_slice()))
            .collect();
        let samples = tx.transmit_symbol(&users, m);
        for (i, &(u, _)) in users.iter().enumerate() {
            let rx = tx.receive_symbol(u, &samples, m, users.len());
            assert_eq!(rx, payloads[i], "user {u}");
        }
    }

    #[test]
    fn inactive_code_reads_noise_only() {
        let tx = setup();
        let m = Modulation::Qpsk;
        let n = tx.bits_per_user_per_symbol(m);
        let mut prbs = Prbs::new(9);
        let p = prbs.take_bits(n);
        let samples = tx.transmit_symbol(&[(5, &p)], m);
        // Despreading an unused code yields (near) zero energy.
        let chips = tx.ofdm.demodulate_symbol(&samples);
        let silent = tx.wh.despread(9, &chips);
        for s in silent {
            assert!(s.abs() < 1e-9);
        }
    }

    #[test]
    fn full_code_load_survives_moderate_noise() {
        let tx = setup();
        let m = Modulation::Qpsk;
        let n = tx.bits_per_user_per_symbol(m);
        let mut prbs = Prbs::new(17);
        let payloads: Vec<Vec<u8>> = (0..32).map(|_| prbs.take_bits(n)).collect();
        let users: Vec<(usize, &[u8])> = (0..32).zip(payloads.iter().map(Vec::as_slice)).collect();
        let sent = tx.transmit_symbol(&users, m);
        // At full code load the 1/sqrt(32) power normalization exactly
        // cancels the despreading gain: per-user symbol SNR equals the
        // per-sample channel SNR. 15 dB puts QPSK at BER ~1e-8.
        let received = AwgnChannel::new(15.0, 1).transmit(&sent);
        let mut errors = 0usize;
        for (u, p) in &users {
            let rx = tx.receive_symbol(*u, &received, m, 32);
            errors += rx.iter().zip(*p).filter(|(a, b)| a != b).count();
        }
        assert_eq!(
            errors, 0,
            "orthogonality must survive 15 dB AWGN at full load"
        );
    }

    #[test]
    fn qam16_multiuser_roundtrip() {
        let tx = setup();
        let m = Modulation::Qam16;
        let n = tx.bits_per_user_per_symbol(m);
        assert_eq!(n, 8); // 2 data symbols * 4 bits
        let mut prbs = Prbs::new(23);
        let a = prbs.take_bits(n);
        let b = prbs.take_bits(n);
        let samples = tx.transmit_symbol(&[(0, &a), (31, &b)], m);
        assert_eq!(tx.receive_symbol(0, &samples, m, 2), a);
        assert_eq!(tx.receive_symbol(31, &samples, m, 2), b);
    }

    #[test]
    #[should_panic(expected = "duplicate user")]
    fn duplicate_user_panics() {
        let tx = setup();
        let m = Modulation::Qpsk;
        let bits = vec![0u8; tx.bits_per_user_per_symbol(m)];
        let _ = tx.transmit_symbol(&[(1, &bits), (1, &bits)], m);
    }

    #[test]
    #[should_panic(expected = "wrong bit count")]
    fn wrong_payload_length_panics() {
        let tx = setup();
        let _ = tx.transmit_symbol(&[(1, &[0, 1])], Modulation::Qam16);
    }

    #[test]
    fn channel_power_stays_normalized() {
        // 1 user vs 32 users: transmitted Es per sample stays within 3 dB.
        let tx = setup();
        let m = Modulation::Qpsk;
        let n = tx.bits_per_user_per_symbol(m);
        let mut prbs = Prbs::new(31);
        let one_p = prbs.take_bits(n);
        let one = tx.transmit_symbol(&[(0, &one_p)], m);
        let payloads: Vec<Vec<u8>> = (0..32).map(|_| prbs.take_bits(n)).collect();
        let users: Vec<(usize, &[u8])> = (0..32).zip(payloads.iter().map(Vec::as_slice)).collect();
        let many = tx.transmit_symbol(&users, m);
        let es = |v: &[Cplx]| v.iter().map(|s| s.norm_sq()).sum::<f64>() / v.len() as f64;
        let ratio = es(&many) / es(&one);
        assert!((0.5..2.0).contains(&ratio), "power ratio {ratio}");
    }
}
