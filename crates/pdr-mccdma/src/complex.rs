//! Minimal complex arithmetic (all the baseband needs).

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A complex sample.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Cplx {
    /// Real (in-phase) part.
    pub re: f64,
    /// Imaginary (quadrature) part.
    pub im: f64,
}

impl Cplx {
    /// Zero.
    pub const ZERO: Cplx = Cplx { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Cplx = Cplx { re: 1.0, im: 0.0 };

    /// Construct from rectangular parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Cplx { re, im }
    }

    /// `e^{iθ}`.
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        Cplx::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Cplx::new(self.re, -self.im)
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Cplx::new(self.re * k, self.im * k)
    }
}

impl Add for Cplx {
    type Output = Cplx;
    #[inline]
    fn add(self, o: Cplx) -> Cplx {
        Cplx::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for Cplx {
    #[inline]
    fn add_assign(&mut self, o: Cplx) {
        *self = *self + o;
    }
}

impl Sub for Cplx {
    type Output = Cplx;
    #[inline]
    fn sub(self, o: Cplx) -> Cplx {
        Cplx::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Cplx {
    type Output = Cplx;
    #[inline]
    fn mul(self, o: Cplx) -> Cplx {
        Cplx::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Div<f64> for Cplx {
    type Output = Cplx;
    #[inline]
    fn div(self, k: f64) -> Cplx {
        Cplx::new(self.re / k, self.im / k)
    }
}

impl Neg for Cplx {
    type Output = Cplx;
    #[inline]
    fn neg(self) -> Cplx {
        Cplx::new(-self.re, -self.im)
    }
}

impl Sum for Cplx {
    fn sum<I: Iterator<Item = Cplx>>(iter: I) -> Cplx {
        iter.fold(Cplx::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn arithmetic() {
        let a = Cplx::new(1.0, 2.0);
        let b = Cplx::new(3.0, -1.0);
        assert_eq!(a + b, Cplx::new(4.0, 1.0));
        assert_eq!(a - b, Cplx::new(-2.0, 3.0));
        // (1+2i)(3-i) = 3 - i + 6i - 2i² = 5 + 5i
        assert_eq!(a * b, Cplx::new(5.0, 5.0));
        assert_eq!(-a, Cplx::new(-1.0, -2.0));
        assert_eq!(a / 2.0, Cplx::new(0.5, 1.0));
        assert_eq!(a.scale(3.0), Cplx::new(3.0, 6.0));
    }

    #[test]
    fn conj_and_norm() {
        let a = Cplx::new(3.0, 4.0);
        assert_eq!(a.conj(), Cplx::new(3.0, -4.0));
        assert!((a.norm_sq() - 25.0).abs() < EPS);
        assert!((a.abs() - 5.0).abs() < EPS);
        // z * conj(z) = |z|²
        let p = a * a.conj();
        assert!((p.re - 25.0).abs() < EPS && p.im.abs() < EPS);
    }

    #[test]
    fn from_angle_is_unit() {
        for k in 0..8 {
            let z = Cplx::from_angle(k as f64 * std::f64::consts::FRAC_PI_4);
            assert!((z.abs() - 1.0).abs() < EPS);
        }
        let z = Cplx::from_angle(std::f64::consts::FRAC_PI_2);
        assert!(z.re.abs() < EPS && (z.im - 1.0).abs() < EPS);
    }

    #[test]
    fn sum_over_iter() {
        let s: Cplx = (0..4).map(|i| Cplx::new(i as f64, 1.0)).sum();
        assert_eq!(s, Cplx::new(6.0, 4.0));
    }
}
