//! Gray-mapped QPSK and QAM-16 — the paper's two dynamic alternatives.
//!
//! §6: *"Block modulation performs either a QPSK or QAM-16 modulation.
//! This adaptive modulation is selected by the conditional entry Select
//! which defines the modulation of each OFDM symbol according to the
//! signal to noise ratio."*
//!
//! Both constellations are normalized to unit average symbol energy so the
//! AWGN channel's Eb/N0 accounting is exact, and both are Gray-mapped so
//! adjacent symbols differ in one bit (the standard BER-optimal labeling).

use crate::complex::Cplx;
use serde::{Deserialize, Serialize};

/// The modulation alternatives of the conditioned `modulation` operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Modulation {
    /// 2 bits/symbol.
    Qpsk,
    /// 4 bits/symbol.
    Qam16,
}

impl Modulation {
    /// Bits carried per symbol.
    pub const fn bits_per_symbol(self) -> usize {
        match self {
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
        }
    }

    /// The module (function) name used across the workspace for this
    /// alternative.
    pub const fn module_name(self) -> &'static str {
        match self {
            Modulation::Qpsk => "mod_qpsk",
            Modulation::Qam16 => "mod_qam16",
        }
    }

    /// Selector value (index into the conditioned operation's
    /// alternatives).
    pub const fn selector(self) -> usize {
        match self {
            Modulation::Qpsk => 0,
            Modulation::Qam16 => 1,
        }
    }

    /// Map a bit slice to symbols. Length must be a multiple of
    /// [`Modulation::bits_per_symbol`].
    pub fn modulate(self, bits: &[u8]) -> Vec<Cplx> {
        let mut out = Vec::with_capacity(bits.len() / self.bits_per_symbol().max(1));
        self.modulate_into(bits, &mut out);
        out
    }

    /// [`Modulation::modulate`] appending into a caller-owned buffer, so
    /// per-OFDM-symbol loops can reuse one allocation across a frame.
    pub fn modulate_into(self, bits: &[u8], out: &mut Vec<Cplx>) {
        let bps = self.bits_per_symbol();
        assert!(
            bits.len().is_multiple_of(bps),
            "{} bits is not a multiple of {bps}",
            bits.len()
        );
        out.extend(bits.chunks_exact(bps).map(|chunk| self.map_symbol(chunk)));
    }

    /// Map one symbol's bits.
    pub fn map_symbol(self, bits: &[u8]) -> Cplx {
        match self {
            Modulation::Qpsk => {
                // Gray: bit0 → I sign, bit1 → Q sign; unit energy needs
                // amplitude 1/√2 per axis.
                let a = std::f64::consts::FRAC_1_SQRT_2;
                let i = if bits[0] == 0 { a } else { -a };
                let q = if bits[1] == 0 { a } else { -a };
                Cplx::new(i, q)
            }
            Modulation::Qam16 => {
                // Gray per axis: 00→-3, 01→-1, 11→+1, 10→+3, scaled by
                // 1/√10 for unit average energy.
                let level = |b0: u8, b1: u8| -> f64 {
                    match (b0, b1) {
                        (0, 0) => -3.0,
                        (0, 1) => -1.0,
                        (1, 1) => 1.0,
                        (1, 0) => 3.0,
                        _ => unreachable!("bits are 0/1"),
                    }
                };
                let k = 1.0 / 10f64.sqrt();
                Cplx::new(level(bits[0], bits[1]) * k, level(bits[2], bits[3]) * k)
            }
        }
    }

    /// Hard-decision demap a symbol back to bits.
    pub fn demap_symbol(self, s: Cplx) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.bits_per_symbol());
        self.demap_into(s, &mut out);
        out
    }

    /// [`Modulation::demap_symbol`] appending into a caller-owned buffer —
    /// the allocation-free form the receiver's inner loop runs on.
    pub fn demap_into(self, s: Cplx, out: &mut Vec<u8>) {
        match self {
            Modulation::Qpsk => {
                out.push(u8::from(s.re < 0.0));
                out.push(u8::from(s.im < 0.0));
            }
            Modulation::Qam16 => {
                let k = 1.0 / 10f64.sqrt();
                let axis = |v: f64| -> (u8, u8) {
                    // Decision boundaries at -2k, 0, +2k.
                    if v < -2.0 * k {
                        (0, 0)
                    } else if v < 0.0 {
                        (0, 1)
                    } else if v < 2.0 * k {
                        (1, 1)
                    } else {
                        (1, 0)
                    }
                };
                let (b0, b1) = axis(s.re);
                let (b2, b3) = axis(s.im);
                out.push(b0);
                out.push(b1);
                out.push(b2);
                out.push(b3);
            }
        }
    }

    /// Demodulate a symbol slice to bits.
    pub fn demodulate(self, symbols: &[Cplx]) -> Vec<u8> {
        let mut out = Vec::with_capacity(symbols.len() * self.bits_per_symbol());
        self.demodulate_into(symbols, &mut out);
        out
    }

    /// [`Modulation::demodulate`] appending into a caller-owned buffer.
    pub fn demodulate_into(self, symbols: &[Cplx], out: &mut Vec<u8>) {
        for &s in symbols {
            self.demap_into(s, out);
        }
    }

    /// Average constellation energy (should be 1.0 by construction).
    pub fn avg_energy(self) -> f64 {
        let n = 1usize << self.bits_per_symbol();
        let mut sum = 0.0;
        for v in 0..n {
            let bits = crate::bits::unpack_bits(v as u64, self.bits_per_symbol());
            sum += self.map_symbol(&bits).norm_sq();
        }
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::unpack_bits;

    #[test]
    fn both_constellations_are_unit_energy() {
        for m in [Modulation::Qpsk, Modulation::Qam16] {
            let e = m.avg_energy();
            assert!((e - 1.0).abs() < 1e-12, "{m:?} energy {e}");
        }
    }

    #[test]
    fn modulate_demodulate_roundtrip_noiseless() {
        for m in [Modulation::Qpsk, Modulation::Qam16] {
            let bps = m.bits_per_symbol();
            for v in 0..(1u64 << bps) {
                let bits = unpack_bits(v, bps);
                let sym = m.map_symbol(&bits);
                assert_eq!(m.demap_symbol(sym), bits, "{m:?} value {v}");
            }
        }
    }

    #[test]
    fn gray_mapping_neighbors_differ_by_one_bit_qam16() {
        // Along each axis, adjacent levels differ in exactly one bit.
        let m = Modulation::Qam16;
        let levels = [(0u8, 0u8), (0, 1), (1, 1), (1, 0)]; // -3,-1,+1,+3
        for w in levels.windows(2) {
            let d = (w[0].0 ^ w[1].0) as u32 + (w[0].1 ^ w[1].1) as u32;
            assert_eq!(d, 1);
        }
        // And the mapped points are monotone along the axis.
        let xs: Vec<f64> = levels
            .iter()
            .map(|&(b0, b1)| m.map_symbol(&[b0, b1, 0, 0]).re)
            .collect();
        assert!(xs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn stream_roundtrip() {
        let mut prbs = crate::bits::Prbs::new(7);
        for m in [Modulation::Qpsk, Modulation::Qam16] {
            let bits = prbs.take_bits(m.bits_per_symbol() * 100);
            let syms = m.modulate(&bits);
            assert_eq!(syms.len(), 100);
            assert_eq!(m.demodulate(&syms), bits);
        }
    }

    #[test]
    fn qam16_decisions_are_nearest_neighbor() {
        let m = Modulation::Qam16;
        // A point slightly off a constellation point decodes to it.
        let bits = [1u8, 0, 0, 1];
        let s = m.map_symbol(&bits);
        let noisy = s + Cplx::new(0.05, -0.05);
        assert_eq!(m.demap_symbol(noisy), bits.to_vec());
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn misaligned_bits_panic() {
        Modulation::Qam16.modulate(&[1, 0, 1]);
    }

    #[test]
    fn metadata() {
        assert_eq!(Modulation::Qpsk.bits_per_symbol(), 2);
        assert_eq!(Modulation::Qam16.bits_per_symbol(), 4);
        assert_eq!(Modulation::Qpsk.module_name(), "mod_qpsk");
        assert_eq!(Modulation::Qam16.selector(), 1);
    }
}
