//! Two-path multipath channel and one-tap equalization.
//!
//! The guard interval in Fig. 4 exists because radio channels are
//! dispersive: a delayed echo smears adjacent OFDM symbols into each
//! other. As long as the echo delay stays within the cyclic prefix, the
//! smearing becomes a *circular* convolution, which OFDM turns into one
//! complex gain per subcarrier — undone by a trivial one-tap equalizer.
//! [`TwoPathChannel`] models the canonical two-ray channel;
//! [`equalize`] divides the received subcarriers by the channel's
//! frequency response.

use crate::complex::Cplx;

/// A two-ray channel: direct path plus one delayed, attenuated echo.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoPathChannel {
    /// Echo delay in samples.
    pub delay: usize,
    /// Complex echo tap (|tap| < 1 for a physical channel).
    pub tap: Cplx,
}

impl TwoPathChannel {
    /// Channel with the given echo.
    pub fn new(delay: usize, tap: Cplx) -> Self {
        TwoPathChannel { delay, tap }
    }

    /// A typical urban echo: 5 samples late at −6 dB with a phase twist.
    pub fn typical() -> Self {
        TwoPathChannel::new(5, Cplx::new(0.35, 0.35))
    }

    /// Convolve samples with the channel (zero initial conditions).
    pub fn transmit(&self, samples: &[Cplx]) -> Vec<Cplx> {
        samples
            .iter()
            .enumerate()
            .map(|(n, &x)| {
                let echo = if n >= self.delay {
                    samples[n - self.delay] * self.tap
                } else {
                    Cplx::ZERO
                };
                x + echo
            })
            .collect()
    }

    /// The channel's frequency response over `n` subcarriers:
    /// `H[k] = 1 + tap · e^{-j2πk·delay/n}`.
    pub fn freq_response(&self, n: usize) -> Vec<Cplx> {
        (0..n)
            .map(|k| {
                let theta = -2.0 * std::f64::consts::PI * (k * self.delay) as f64 / n as f64;
                Cplx::ONE + self.tap * Cplx::from_angle(theta)
            })
            .collect()
    }
}

/// One-tap zero-forcing equalization: divide each subcarrier by `h[k]`.
///
/// # Panics
/// Panics on length mismatch or a spectral null (`|h[k]| ≈ 0` — a
/// zero-forcing equalizer cannot recover a nulled carrier).
pub fn equalize(received: &[Cplx], h: &[Cplx]) -> Vec<Cplx> {
    assert_eq!(received.len(), h.len(), "length mismatch");
    received
        .iter()
        .zip(h)
        .map(|(&y, &hk)| {
            let p = hk.norm_sq();
            assert!(p > 1e-12, "spectral null: zero-forcing impossible");
            y * hk.conj() / p
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::Prbs;
    use crate::modulation::Modulation;
    use crate::ofdm::OfdmModem;
    use crate::spreading::WalshHadamard;

    fn chips(n: usize, seed: u32) -> Vec<Cplx> {
        // Unit-magnitude QPSK-like chips.
        let mut prbs = Prbs::new(seed);
        let bits = prbs.take_bits(2 * n);
        Modulation::Qpsk.modulate(&bits)
    }

    #[test]
    fn echo_within_cp_is_fully_equalized() {
        let modem = OfdmModem::paper_64();
        let ch = TwoPathChannel::typical(); // delay 5 < CP 16
        let tx_chips = chips(64, 7);
        let sent = modem.modulate_symbol(&tx_chips);
        let received = ch.transmit(&sent);
        let raw = modem.demodulate_symbol(&received);
        let eq = equalize(&raw, &ch.freq_response(64));
        for (a, b) in tx_chips.iter().zip(&eq) {
            assert!((*a - *b).abs() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn echo_beyond_cp_breaks_orthogonality() {
        // delay 20 > CP 16: the FFT window is no longer circular; even a
        // perfect equalizer cannot restore the chips.
        let modem = OfdmModem::paper_64();
        let ch = TwoPathChannel::new(20, Cplx::new(0.5, 0.0));
        let tx_chips = chips(64, 8);
        let sent = modem.modulate_symbol(&tx_chips);
        let received = ch.transmit(&sent);
        let raw = modem.demodulate_symbol(&received);
        let eq = equalize(&raw, &ch.freq_response(64));
        let worst = tx_chips
            .iter()
            .zip(&eq)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0f64, f64::max);
        assert!(worst > 0.05, "ISI should be visible, worst err {worst}");
    }

    #[test]
    fn full_mc_cdma_symbol_survives_multipath() {
        // Spread + OFDM + echo + equalize + despread: exact recovery.
        let modem = OfdmModem::paper_64();
        let wh = WalshHadamard::new(32);
        let ch = TwoPathChannel::typical();
        let data = [Cplx::new(0.8, -0.4), Cplx::new(-0.6, 0.9)];
        let spread = wh.spread(3, &data);
        let sent = modem.modulate_symbol(&spread);
        let received = ch.transmit(&sent);
        let eq = equalize(&modem.demodulate_symbol(&received), &ch.freq_response(64));
        let back = wh.despread(3, &eq);
        for (a, b) in data.iter().zip(&back) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn frequency_response_matches_fft_of_impulse_response() {
        let ch = TwoPathChannel::new(3, Cplx::new(0.4, -0.2));
        let n = 64;
        // Impulse response through the channel.
        let mut impulse = vec![Cplx::ZERO; n];
        impulse[0] = Cplx::ONE;
        let ir = ch.transmit(&impulse);
        let spectrum = crate::fft::fft_vec(&ir);
        let h = ch.freq_response(n);
        for (a, b) in spectrum.iter().zip(&h) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_delay_echo_is_flat_gain() {
        let ch = TwoPathChannel::new(0, Cplx::new(0.5, 0.0));
        let h = ch.freq_response(16);
        for hk in h {
            assert!((hk - Cplx::new(1.5, 0.0)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn equalize_length_mismatch_panics() {
        let _ = equalize(&[Cplx::ONE], &[Cplx::ONE, Cplx::ONE]);
    }

    #[test]
    #[should_panic(expected = "spectral null")]
    fn spectral_null_panics() {
        // tap = -1, delay 0: H[k] = 0 everywhere.
        let ch = TwoPathChannel::new(0, Cplx::new(-1.0, 0.0));
        let _ = equalize(&[Cplx::ONE; 4], &ch.freq_response(4));
    }
}
