//! OFDM modulation: subcarrier mapping, IFFT, cyclic prefix.
//!
//! Fig. 4's `OFDM mod` + `guard interval` blocks: chips are mapped onto the
//! subcarriers of a 64-point IFFT and a cyclic prefix of a quarter symbol
//! is prepended (the guard interval against multipath).

use crate::complex::Cplx;
use crate::fft::{fft, ifft};

/// An OFDM modulator/demodulator for a fixed subcarrier count.
#[derive(Debug, Clone)]
pub struct OfdmModem {
    subcarriers: usize,
    cp_len: usize,
}

impl OfdmModem {
    /// Modem with `subcarriers` carriers (power of two) and a cyclic prefix
    /// of `cp_len` samples.
    pub fn new(subcarriers: usize, cp_len: usize) -> Self {
        assert!(
            subcarriers.is_power_of_two(),
            "subcarrier count must be a power of two"
        );
        assert!(cp_len < subcarriers, "CP must be shorter than the symbol");
        OfdmModem {
            subcarriers,
            cp_len,
        }
    }

    /// The paper's configuration: 64 carriers, 16-sample guard interval.
    pub fn paper_64() -> Self {
        OfdmModem::new(64, 16)
    }

    /// Subcarrier count.
    pub fn subcarriers(&self) -> usize {
        self.subcarriers
    }

    /// Cyclic-prefix length.
    pub fn cp_len(&self) -> usize {
        self.cp_len
    }

    /// Time-domain samples per OFDM symbol (incl. CP).
    pub fn symbol_len(&self) -> usize {
        self.subcarriers + self.cp_len
    }

    /// Modulate one OFDM symbol: `chips` (one per subcarrier) → time-domain
    /// samples with cyclic prefix.
    pub fn modulate_symbol(&self, chips: &[Cplx]) -> Vec<Cplx> {
        let mut scratch = vec![Cplx::ZERO; self.subcarriers];
        let mut out = Vec::with_capacity(self.symbol_len());
        self.modulate_symbol_into(chips, &mut scratch, &mut out);
        out
    }

    /// [`OfdmModem::modulate_symbol`] through caller-owned buffers: the
    /// IFFT runs in `scratch` (length `subcarriers`) and the CP + body are
    /// appended to `out`. Same float operations in the same order — the
    /// output is bit-identical to the allocating form.
    pub fn modulate_symbol_into(&self, chips: &[Cplx], scratch: &mut [Cplx], out: &mut Vec<Cplx>) {
        assert_eq!(
            chips.len(),
            self.subcarriers,
            "need one chip per subcarrier"
        );
        assert_eq!(scratch.len(), self.subcarriers, "scratch sized to the FFT");
        scratch.copy_from_slice(chips);
        ifft(scratch);
        out.reserve(self.symbol_len());
        out.extend_from_slice(&scratch[self.subcarriers - self.cp_len..]);
        out.extend_from_slice(scratch);
    }

    /// Demodulate one OFDM symbol: strip CP, FFT back to subcarriers.
    pub fn demodulate_symbol(&self, samples: &[Cplx]) -> Vec<Cplx> {
        let mut out = vec![Cplx::ZERO; self.subcarriers];
        self.demodulate_symbol_into(samples, &mut out);
        out
    }

    /// [`OfdmModem::demodulate_symbol`] into a caller-owned buffer of
    /// length `subcarriers` (the FFT runs in place there).
    pub fn demodulate_symbol_into(&self, samples: &[Cplx], out: &mut [Cplx]) {
        assert_eq!(samples.len(), self.symbol_len(), "one full symbol");
        assert_eq!(out.len(), self.subcarriers, "buffer sized to the FFT");
        out.copy_from_slice(&samples[self.cp_len..]);
        fft(out);
    }

    /// Modulate a chip stream (length a multiple of the carrier count).
    pub fn modulate(&self, chips: &[Cplx]) -> Vec<Cplx> {
        assert!(chips.len().is_multiple_of(self.subcarriers));
        let symbols = chips.len() / self.subcarriers;
        let mut scratch = vec![Cplx::ZERO; self.subcarriers];
        let mut out = Vec::with_capacity(symbols * self.symbol_len());
        for sym in chips.chunks_exact(self.subcarriers) {
            self.modulate_symbol_into(sym, &mut scratch, &mut out);
        }
        out
    }

    /// Demodulate a sample stream (length a multiple of the symbol length).
    pub fn demodulate(&self, samples: &[Cplx]) -> Vec<Cplx> {
        assert!(samples.len().is_multiple_of(self.symbol_len()));
        let symbols = samples.len() / self.symbol_len();
        let mut out = vec![Cplx::ZERO; symbols * self.subcarriers];
        for (sym, dst) in samples
            .chunks_exact(self.symbol_len())
            .zip(out.chunks_exact_mut(self.subcarriers))
        {
            self.demodulate_symbol_into(sym, dst);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chips(n: usize) -> Vec<Cplx> {
        (0..n)
            .map(|i| Cplx::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
            .collect()
    }

    #[test]
    fn paper_modem_geometry() {
        let m = OfdmModem::paper_64();
        assert_eq!(m.subcarriers(), 64);
        assert_eq!(m.cp_len(), 16);
        assert_eq!(m.symbol_len(), 80);
    }

    #[test]
    fn roundtrip_is_identity() {
        let m = OfdmModem::paper_64();
        let c = chips(64);
        let samples = m.modulate_symbol(&c);
        assert_eq!(samples.len(), 80);
        let back = m.demodulate_symbol(&samples);
        for (a, b) in c.iter().zip(&back) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn cyclic_prefix_is_a_copy_of_the_tail() {
        let m = OfdmModem::paper_64();
        let samples = m.modulate_symbol(&chips(64));
        for i in 0..16 {
            assert!((samples[i] - samples[64 + i]).abs() < 1e-12);
        }
    }

    #[test]
    fn stream_roundtrip_multiple_symbols() {
        let m = OfdmModem::new(32, 8);
        let c = chips(32 * 5);
        let samples = m.modulate(&c);
        assert_eq!(samples.len(), 40 * 5);
        let back = m.demodulate(&samples);
        for (a, b) in c.iter().zip(&back) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn cp_makes_symbol_robust_to_cyclic_shift() {
        // The point of the guard interval: a delay within the CP keeps the
        // FFT window inside one symbol (up to a per-carrier phase rotation;
        // magnitudes are preserved).
        let m = OfdmModem::paper_64();
        let c = chips(64);
        let samples = m.modulate_symbol(&c);
        let delayed: Vec<Cplx> = samples[..80].to_vec();
        // Take the window shifted 3 samples early (still inside the CP).
        let mut window = Vec::with_capacity(80);
        window.extend_from_slice(&delayed[0..80]);
        let shifted: Vec<Cplx> = window[13..13 + 64].to_vec();
        let mut spec = shifted;
        crate::fft::fft(&mut spec);
        for (a, b) in c.iter().zip(&spec) {
            assert!((a.abs() - b.abs()).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_subcarriers_panics() {
        let _ = OfdmModem::new(48, 8);
    }

    #[test]
    #[should_panic(expected = "shorter")]
    fn oversized_cp_panics() {
        let _ = OfdmModem::new(64, 64);
    }
}
