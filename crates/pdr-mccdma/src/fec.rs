//! Convolutional FEC: K = 7, rate 1/2 encoder and hard-decision Viterbi.
//!
//! The classic (133, 171)₈ code used across wireless standards (and the
//! natural choice for the paper's 4G-oriented transmitter). The encoder is
//! a 6-bit shift register; the decoder is a full 64-state Viterbi with
//! traceback over the whole (terminated) block.

/// Constraint length.
pub const K: usize = 7;
/// Number of trellis states.
pub const STATES: usize = 1 << (K - 1);
/// Generator polynomials (octal 133, 171).
pub const G0: u8 = 0o133;
pub const G1: u8 = 0o171;

/// The rate-1/2 convolutional encoder.
#[derive(Debug, Clone, Default)]
pub struct ConvEncoder {
    state: u8, // 6-bit register
}

impl ConvEncoder {
    /// Fresh encoder (zero state).
    pub fn new() -> Self {
        Self::default()
    }

    /// Encode one bit to two output bits.
    pub fn push(&mut self, bit: u8) -> (u8, u8) {
        debug_assert!(bit <= 1);
        let reg = ((bit << (K - 1)) | self.state) as u32;
        let o0 = (reg & G0 as u32).count_ones() as u8 & 1;
        let o1 = (reg & G1 as u32).count_ones() as u8 & 1;
        self.state = ((reg >> 1) & (STATES as u32 - 1)) as u8;
        (o0, o1)
    }

    /// Encode a block, appending `K-1` zero tail bits to terminate the
    /// trellis. Output length is `2 * (bits.len() + K - 1)`.
    pub fn encode_terminated(bits: &[u8]) -> Vec<u8> {
        let mut enc = ConvEncoder::new();
        let mut out = Vec::with_capacity(2 * (bits.len() + K - 1));
        for &b in bits.iter().chain(std::iter::repeat_n(&0u8, K - 1)) {
            let (a, b2) = enc.push(b);
            out.push(a);
            out.push(b2);
        }
        out
    }
}

/// Hard-decision Viterbi decoder for the terminated code.
#[derive(Debug, Clone, Default)]
pub struct ViterbiDecoder;

impl ViterbiDecoder {
    /// Decode a terminated block produced by
    /// [`ConvEncoder::encode_terminated`]; returns the information bits
    /// (tail removed).
    pub fn decode(coded: &[u8]) -> Vec<u8> {
        assert!(coded.len().is_multiple_of(2), "coded length must be even");
        let steps = coded.len() / 2;
        assert!(steps >= K - 1, "block shorter than the tail");
        const INF: u32 = u32::MAX / 2;
        // Precompute per-state outputs for input 0 and 1.
        let mut outputs = [[(0u8, 0u8); 2]; STATES];
        for (state, outs) in outputs.iter_mut().enumerate() {
            for (input, out) in outs.iter_mut().enumerate() {
                let reg = ((input as u32) << (K - 1)) | state as u32;
                out.0 = (reg & G0 as u32).count_ones() as u8 & 1;
                out.1 = (reg & G1 as u32).count_ones() as u8 & 1;
            }
        }
        let next_state =
            |state: usize, input: usize| -> usize { ((input << (K - 1)) | state) >> 1 };

        let mut metric = vec![INF; STATES];
        metric[0] = 0; // trellis starts at zero state
        let mut decisions: Vec<[u8; STATES]> = Vec::with_capacity(steps);
        let mut next = vec![INF; STATES];
        for t in 0..steps {
            let r0 = coded[2 * t];
            let r1 = coded[2 * t + 1];
            next.iter_mut().for_each(|m| *m = INF);
            let mut dec = [0u8; STATES];
            for state in 0..STATES {
                let m = metric[state];
                if m >= INF {
                    continue;
                }
                for (input, &(o0, o1)) in outputs[state].iter().enumerate() {
                    let branch = u32::from(o0 != r0) + u32::from(o1 != r1);
                    let ns = next_state(state, input);
                    let cand = m + branch;
                    // Tie-break toward input 0 / lower predecessor for
                    // determinism: strictly-less keeps the first winner.
                    if cand < next[ns] {
                        next[ns] = cand;
                        // Record the predecessor state's low bit path:
                        // store (input, state) packed.
                        dec[ns] = ((input as u8) << 7) | state as u8;
                    }
                }
            }
            std::mem::swap(&mut metric, &mut next);
            decisions.push(dec);
        }
        // Terminated: trace back from state 0.
        let mut state = 0usize;
        let mut bits_rev = Vec::with_capacity(steps);
        for t in (0..steps).rev() {
            let packed = decisions[t][state];
            let input = (packed >> 7) & 1;
            let prev = (packed & 0x3F) as usize;
            bits_rev.push(input);
            state = prev;
        }
        bits_rev.reverse();
        bits_rev.truncate(steps - (K - 1)); // strip the tail
        bits_rev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::Prbs;

    #[test]
    fn encode_rate_and_tail() {
        let coded = ConvEncoder::encode_terminated(&[1, 0, 1, 1]);
        assert_eq!(coded.len(), 2 * (4 + K - 1));
        assert!(coded.iter().all(|&b| b <= 1));
    }

    #[test]
    fn noiseless_roundtrip() {
        let mut prbs = Prbs::new(99);
        let bits = prbs.take_bits(200);
        let coded = ConvEncoder::encode_terminated(&bits);
        let decoded = ViterbiDecoder::decode(&coded);
        assert_eq!(decoded, bits);
    }

    #[test]
    fn corrects_scattered_errors() {
        // The free distance of (133,171) is 10: a few well-separated bit
        // errors are always corrected.
        let mut prbs = Prbs::new(4);
        let bits = prbs.take_bits(120);
        let mut coded = ConvEncoder::encode_terminated(&bits);
        for pos in [7usize, 61, 133, 199] {
            coded[pos] ^= 1;
        }
        assert_eq!(ViterbiDecoder::decode(&coded), bits);
    }

    #[test]
    fn burst_beyond_capacity_fails_gracefully() {
        // A long error burst defeats the code: output differs but decoding
        // still returns the right length (no panic).
        let bits = vec![0u8; 64];
        let mut coded = ConvEncoder::encode_terminated(&bits);
        for b in coded.iter_mut().take(40) {
            *b ^= 1;
        }
        let decoded = ViterbiDecoder::decode(&coded);
        assert_eq!(decoded.len(), 64);
        assert_ne!(decoded, bits);
    }

    #[test]
    fn encoder_is_linear() {
        // c(a) XOR c(b) == c(a XOR b) for linear codes.
        let a = [1u8, 0, 1, 1, 0, 0, 1, 0];
        let b = [0u8, 1, 1, 0, 1, 0, 0, 1];
        let xor: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        let ca = ConvEncoder::encode_terminated(&a);
        let cb = ConvEncoder::encode_terminated(&b);
        let cxor = ConvEncoder::encode_terminated(&xor);
        let folded: Vec<u8> = ca.iter().zip(&cb).map(|(x, y)| x ^ y).collect();
        assert_eq!(folded, cxor);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_coded_length_panics() {
        let _ = ViterbiDecoder::decode(&[0, 1, 0]);
    }

    #[test]
    fn zero_input_encodes_to_zero() {
        let coded = ConvEncoder::encode_terminated(&[0; 10]);
        assert!(coded.iter().all(|&b| b == 0));
    }
}
