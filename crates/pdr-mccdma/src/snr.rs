//! SNR estimation: what the DSP measures before writing `Select`.
//!
//! §6: the modulation of each OFDM symbol is chosen *"according to the
//! signal to noise ratio"* — something the receiver must estimate. This
//! module provides a decision-directed (EVM-based) estimator: each
//! received symbol is sliced to its nearest constellation point; the mean
//! squared distance to it estimates the noise power, the mean point energy
//! the signal power. Combined with the [`crate::adaptive::AdaptivePolicy`]
//! this closes the paper's full loop: receive → estimate SNR → select
//! modulation → reconfigure.

use crate::complex::Cplx;
use crate::modulation::Modulation;

/// A decision-directed SNR estimator over received (post-despreading)
/// symbols.
#[derive(Debug, Clone, Copy, Default)]
pub struct SnrEstimator {
    signal_acc: f64,
    noise_acc: f64,
    symbols: u64,
}

impl SnrEstimator {
    /// Fresh estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulate one received symbol, sliced against `modulation`.
    pub fn push(&mut self, received: Cplx, modulation: Modulation) {
        let bits = modulation.demap_symbol(received);
        let ideal = modulation.map_symbol(&bits);
        self.signal_acc += ideal.norm_sq();
        self.noise_acc += (received - ideal).norm_sq();
        self.symbols += 1;
    }

    /// Accumulate a block of symbols.
    pub fn push_block(&mut self, received: &[Cplx], modulation: Modulation) {
        for &s in received {
            self.push(s, modulation);
        }
    }

    /// Symbols accumulated.
    pub fn symbols(&self) -> u64 {
        self.symbols
    }

    /// The SNR estimate in dB (`None` until symbols were pushed or if no
    /// noise was observed — an infinite-SNR situation).
    pub fn snr_db(&self) -> Option<f64> {
        if self.symbols == 0 || self.signal_acc <= 0.0 {
            return None;
        }
        if self.noise_acc <= 0.0 {
            return Some(f64::INFINITY);
        }
        Some(10.0 * (self.signal_acc / self.noise_acc).log10())
    }

    /// Reset for the next measurement window.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::Prbs;
    use crate::channel::AwgnChannel;

    /// Estimate the SNR of a QPSK stream passed through AWGN at `true_db`.
    fn estimate(true_db: f64, modulation: Modulation, seed: u64) -> f64 {
        let mut prbs = Prbs::new(seed as u32 + 1);
        let bits = prbs.take_bits(modulation.bits_per_symbol() * 20_000);
        let symbols = modulation.modulate(&bits);
        let received = AwgnChannel::new(true_db, seed).transmit(&symbols);
        let mut est = SnrEstimator::new();
        est.push_block(&received, modulation);
        est.snr_db().expect("symbols pushed")
    }

    #[test]
    fn estimates_track_truth_qpsk() {
        for true_db in [5.0, 10.0, 15.0, 20.0] {
            let est = estimate(true_db, Modulation::Qpsk, 42);
            assert!(
                (est - true_db).abs() < 1.0,
                "true {true_db} dB, estimated {est} dB"
            );
        }
    }

    #[test]
    fn estimates_track_truth_qam16_at_high_snr() {
        // Decision-directed estimation needs mostly-correct slicing: for
        // QAM-16 that holds above ~15 dB.
        for true_db in [16.0, 20.0, 25.0] {
            let est = estimate(true_db, Modulation::Qam16, 7);
            assert!(
                (est - true_db).abs() < 1.5,
                "true {true_db} dB, estimated {est} dB"
            );
        }
    }

    #[test]
    fn low_snr_estimates_saturate_high() {
        // Below the slicing floor the estimator is biased upward (errors
        // pull symbols toward wrong-but-near points) — it must still be
        // finite and roughly monotone.
        let low = estimate(0.0, Modulation::Qpsk, 3);
        let high = estimate(20.0, Modulation::Qpsk, 3);
        assert!(low < high);
        assert!(low.is_finite());
    }

    #[test]
    fn noiseless_is_infinite() {
        let m = Modulation::Qpsk;
        let mut prbs = Prbs::new(2);
        let bits = prbs.take_bits(m.bits_per_symbol() * 64);
        let symbols = m.modulate(&bits);
        let mut est = SnrEstimator::new();
        est.push_block(&symbols, m);
        assert_eq!(est.snr_db(), Some(f64::INFINITY));
    }

    #[test]
    fn empty_estimator_returns_none_and_reset_works() {
        let mut est = SnrEstimator::new();
        assert_eq!(est.snr_db(), None);
        est.push(Cplx::new(0.7, 0.7), Modulation::Qpsk);
        assert!(est.snr_db().is_some());
        assert_eq!(est.symbols(), 1);
        est.reset();
        assert_eq!(est.snr_db(), None);
        assert_eq!(est.symbols(), 0);
    }

    #[test]
    fn closes_the_adaptive_loop() {
        // receive at a known channel quality -> estimate -> policy decides
        // the modulation the paper would load next.
        use crate::adaptive::AdaptivePolicy;
        let policy = AdaptivePolicy::paper_default();
        let clean = estimate(18.0, Modulation::Qpsk, 11);
        assert_eq!(
            policy.decide(Modulation::Qpsk, clean),
            Modulation::Qam16,
            "estimated {clean} dB should trigger the upgrade"
        );
        let dirty = estimate(6.0, Modulation::Qpsk, 12);
        assert_eq!(policy.decide(Modulation::Qam16, dirty), Modulation::Qpsk);
    }
}
