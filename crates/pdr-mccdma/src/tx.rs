//! The end-to-end MC-CDMA transmitter / receiver pair (Fig. 4).
//!
//! Per OFDM symbol the chain is exactly the paper's block list:
//! `interface → FEC → modulation (QPSK | QAM-16) → spreading →
//! chip mapping → IFFT → guard interval → framing`, and the receiver runs
//! it backwards. Modulation is chosen *per OFDM symbol* (the `Select`
//! conditional entry); a frame may therefore mix modulations, which is how
//! the adaptive experiments exercise the dynamic block.

use crate::complex::Cplx;
use crate::fec::{ConvEncoder, ViterbiDecoder, K};
use crate::modulation::Modulation;
use crate::ofdm::OfdmModem;
use crate::spreading::WalshHadamard;
use serde::{Deserialize, Serialize};

/// Transmitter configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxConfig {
    /// OFDM subcarriers (power of two).
    pub subcarriers: usize,
    /// Cyclic-prefix length in samples.
    pub cp_len: usize,
    /// Walsh–Hadamard spreading factor (divides `subcarriers`).
    pub spread_factor: usize,
    /// The user's code index.
    pub user: usize,
    /// Apply the rate-1/2 convolutional code.
    pub use_fec: bool,
}

impl TxConfig {
    /// The paper's configuration: 64 carriers, CP 16, SF 32, FEC on.
    pub fn paper() -> Self {
        TxConfig {
            subcarriers: 64,
            cp_len: 16,
            spread_factor: 32,
            user: 1,
            use_fec: true,
        }
    }

    /// Data symbols carried per OFDM symbol.
    pub fn data_symbols_per_ofdm(&self) -> usize {
        self.subcarriers / self.spread_factor
    }

    fn validate(&self) {
        assert!(
            self.subcarriers.is_multiple_of(self.spread_factor),
            "spreading factor must divide the subcarrier count"
        );
        assert!(self.user < self.spread_factor, "user exceeds code book");
    }
}

/// The transmitter.
#[derive(Debug, Clone)]
pub struct McCdmaTransmitter {
    cfg: TxConfig,
    wh: WalshHadamard,
    ofdm: OfdmModem,
}

impl McCdmaTransmitter {
    /// Build a transmitter.
    pub fn new(cfg: TxConfig) -> Self {
        cfg.validate();
        McCdmaTransmitter {
            cfg,
            wh: WalshHadamard::new(cfg.spread_factor),
            ofdm: OfdmModem::new(cfg.subcarriers, cfg.cp_len),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TxConfig {
        &self.cfg
    }

    /// Coded bits a frame of the given per-symbol modulations carries.
    pub fn coded_bits_for(&self, mods: &[Modulation]) -> usize {
        mods.iter()
            .map(|m| self.cfg.data_symbols_per_ofdm() * m.bits_per_symbol())
            .sum()
    }

    /// Information bits a frame of the given modulations carries (after
    /// FEC overhead and tail).
    ///
    /// # Panics
    /// Panics when the frame is too short to hold the FEC tail.
    pub fn info_bits_for(&self, mods: &[Modulation]) -> usize {
        let coded = self.coded_bits_for(mods);
        if self.cfg.use_fec {
            assert!(
                coded.is_multiple_of(2),
                "coded capacity must be even under FEC"
            );
            let info_plus_tail = coded / 2;
            assert!(
                info_plus_tail > K - 1,
                "frame too short for the FEC tail ({info_plus_tail} <= {})",
                K - 1
            );
            info_plus_tail - (K - 1)
        } else {
            coded
        }
    }

    /// Transmit a frame: `info` bits with one modulation per OFDM symbol.
    /// Returns the framed time-domain samples.
    ///
    /// # Panics
    /// Panics when `info.len() != self.info_bits_for(mods)`.
    pub fn transmit(&self, info: &[u8], mods: &[Modulation]) -> Vec<Cplx> {
        assert_eq!(
            info.len(),
            self.info_bits_for(mods),
            "info bit count must match the frame capacity"
        );
        let coded: Vec<u8> = if self.cfg.use_fec {
            ConvEncoder::encode_terminated(info)
        } else {
            info.to_vec()
        };
        let mut out = Vec::with_capacity(mods.len() * (self.cfg.subcarriers + self.cfg.cp_len));
        // Scratch buffers reused across the whole frame: the per-symbol
        // loop is allocation-free after the first OFDM symbol.
        let mut symbols = Vec::with_capacity(self.cfg.data_symbols_per_ofdm());
        let mut chips = Vec::with_capacity(self.cfg.subcarriers);
        let mut fft_scratch = vec![Cplx::ZERO; self.cfg.subcarriers];
        let mut cursor = 0usize;
        for &m in mods {
            let bits_this_symbol = self.cfg.data_symbols_per_ofdm() * m.bits_per_symbol();
            let chunk = &coded[cursor..cursor + bits_this_symbol];
            cursor += bits_this_symbol;
            // modulation
            symbols.clear();
            m.modulate_into(chunk, &mut symbols);
            // spreading + chip mapping
            chips.clear();
            self.wh.spread_into(self.cfg.user, &symbols, &mut chips);
            debug_assert_eq!(chips.len(), self.cfg.subcarriers);
            // OFDM (IFFT) + guard interval (framing = concatenation)
            self.ofdm
                .modulate_symbol_into(&chips, &mut fft_scratch, &mut out);
        }
        debug_assert_eq!(cursor, coded.len());
        out
    }
}

/// The matching receiver (demodulation + despreading + Viterbi).
#[derive(Debug, Clone)]
pub struct McCdmaReceiver {
    cfg: TxConfig,
    wh: WalshHadamard,
    ofdm: OfdmModem,
}

impl McCdmaReceiver {
    /// Build a receiver for the same configuration as the transmitter.
    pub fn new(cfg: TxConfig) -> Self {
        cfg.validate();
        McCdmaReceiver {
            cfg,
            wh: WalshHadamard::new(cfg.spread_factor),
            ofdm: OfdmModem::new(cfg.subcarriers, cfg.cp_len),
        }
    }

    /// Recover the information bits of a frame.
    ///
    /// # Panics
    /// Panics when the sample count does not match `mods`.
    pub fn receive(&self, samples: &[Cplx], mods: &[Modulation]) -> Vec<u8> {
        let sym_len = self.cfg.subcarriers + self.cfg.cp_len;
        assert_eq!(
            samples.len(),
            mods.len() * sym_len,
            "sample count must match the modulation sequence"
        );
        let mut coded = Vec::with_capacity(
            mods.iter()
                .map(|m| self.cfg.data_symbols_per_ofdm() * m.bits_per_symbol())
                .sum(),
        );
        // Per-symbol scratch reused across the frame (see `transmit`).
        let mut chips = vec![Cplx::ZERO; self.cfg.subcarriers];
        let mut symbols = Vec::with_capacity(self.cfg.data_symbols_per_ofdm());
        for (i, &m) in mods.iter().enumerate() {
            let sym = &samples[i * sym_len..(i + 1) * sym_len];
            self.ofdm.demodulate_symbol_into(sym, &mut chips);
            symbols.clear();
            self.wh.despread_into(self.cfg.user, &chips, &mut symbols);
            m.demodulate_into(&symbols, &mut coded);
        }
        if self.cfg.use_fec {
            ViterbiDecoder::decode(&coded)
        } else {
            coded
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ber::BerCounter;
    use crate::bits::Prbs;
    use crate::channel::AwgnChannel;

    fn run_frame(
        cfg: TxConfig,
        mods: &[Modulation],
        es_n0_db: Option<f64>,
        seed: u64,
    ) -> (Vec<u8>, Vec<u8>) {
        let tx = McCdmaTransmitter::new(cfg);
        let rx = McCdmaReceiver::new(cfg);
        let mut prbs = Prbs::new(seed as u32);
        let info = prbs.take_bits(tx.info_bits_for(mods));
        let mut samples = tx.transmit(&info, mods);
        if let Some(db) = es_n0_db {
            samples = AwgnChannel::new(db, seed).transmit(&samples);
        }
        let decoded = rx.receive(&samples, mods);
        (info, decoded)
    }

    #[test]
    fn noiseless_roundtrip_qpsk() {
        let mods = vec![Modulation::Qpsk; 8];
        let (info, decoded) = run_frame(TxConfig::paper(), &mods, None, 1);
        assert_eq!(info, decoded);
    }

    #[test]
    fn noiseless_roundtrip_qam16() {
        let mods = vec![Modulation::Qam16; 8];
        let (info, decoded) = run_frame(TxConfig::paper(), &mods, None, 2);
        assert_eq!(info, decoded);
    }

    #[test]
    fn noiseless_roundtrip_mixed_modulations() {
        // The adaptive case: modulation changes mid-frame.
        let mods = vec![
            Modulation::Qpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam16,
            Modulation::Qpsk,
            Modulation::Qam16,
        ];
        let (info, decoded) = run_frame(TxConfig::paper(), &mods, None, 3);
        assert_eq!(info, decoded);
    }

    #[test]
    fn noiseless_roundtrip_without_fec() {
        let cfg = TxConfig {
            use_fec: false,
            ..TxConfig::paper()
        };
        let mods = vec![Modulation::Qam16; 4];
        let (info, decoded) = run_frame(cfg, &mods, None, 4);
        assert_eq!(info, decoded);
    }

    #[test]
    fn qam16_carries_twice_the_bits() {
        let tx = McCdmaTransmitter::new(TxConfig::paper());
        let qpsk = tx.coded_bits_for(&[Modulation::Qpsk; 10]);
        let qam = tx.coded_bits_for(&[Modulation::Qam16; 10]);
        assert_eq!(qam, 2 * qpsk);
        // Paper config: 2 data symbols per OFDM symbol.
        assert_eq!(tx.config().data_symbols_per_ofdm(), 2);
        assert_eq!(qpsk, 10 * 2 * 2);
    }

    #[test]
    fn fec_corrects_channel_errors() {
        // Note the ~15 dB processing gain of SF = 32 despreading: the
        // per-sample Es/N0 must sit well below 0 dB to stress the decoder.
        let mods = vec![Modulation::Qpsk; 50];
        let noisy_db = -9.0; // ≈ 6 dB post-despreading symbol SNR
        let coded_cfg = TxConfig::paper();
        let uncoded_cfg = TxConfig {
            use_fec: false,
            ..coded_cfg
        };
        let mut ber_c = BerCounter::new();
        let mut ber_u = BerCounter::new();
        for seed in 0..10 {
            let (i, d) = run_frame(coded_cfg, &mods, Some(noisy_db), 300 + seed);
            ber_c.push_block(&i, &d);
            let (i, d) = run_frame(uncoded_cfg, &mods, Some(noisy_db), 300 + seed);
            ber_u.push_block(&i, &d);
        }
        assert!(
            ber_u.ber() > 1e-3,
            "uncoded link must see errors: {}",
            ber_u.ber()
        );
        assert!(
            ber_c.ber() < ber_u.ber() / 2.0,
            "coded {} !< uncoded {}",
            ber_c.ber(),
            ber_u.ber()
        );
    }

    #[test]
    fn qpsk_more_robust_than_qam16_at_equal_esn0() {
        // The premise of adaptive modulation: at a noisy operating point
        // QPSK survives where QAM-16 breaks. Uncoded, same Es/N0.
        let cfg = TxConfig {
            use_fec: false,
            ..TxConfig::paper()
        };
        let db = -5.0; // ≈ 10 dB post-despreading symbol SNR
        let mut ber_qpsk = BerCounter::new();
        let mut ber_qam = BerCounter::new();
        for seed in 0..40 {
            let (i, d) = run_frame(cfg, &[Modulation::Qpsk; 20], Some(db), 100 + seed);
            ber_qpsk.push_block(&i, &d);
            let (i, d) = run_frame(cfg, &[Modulation::Qam16; 20], Some(db), 200 + seed);
            ber_qam.push_block(&i, &d);
        }
        assert!(
            ber_qpsk.ber() < ber_qam.ber() / 2.0,
            "qpsk {} vs qam16 {}",
            ber_qpsk.ber(),
            ber_qam.ber()
        );
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn wrong_info_length_panics() {
        let tx = McCdmaTransmitter::new(TxConfig::paper());
        let mods = vec![Modulation::Qpsk; 4];
        let _ = tx.transmit(&[0, 1, 0], &mods);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn frame_too_short_for_tail_panics() {
        let tx = McCdmaTransmitter::new(TxConfig::paper());
        // One QPSK OFDM symbol: 4 coded bits → 2 info+tail < 7.
        let _ = tx.info_bits_for(&[Modulation::Qpsk]);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn bad_spreading_factor_panics() {
        let cfg = TxConfig {
            spread_factor: 48,
            ..TxConfig::paper()
        };
        let _ = McCdmaTransmitter::new(cfg);
    }

    #[test]
    fn sample_counts_match_framing() {
        let tx = McCdmaTransmitter::new(TxConfig::paper());
        let mods = vec![Modulation::Qpsk; 5];
        let mut prbs = Prbs::new(5);
        let info = prbs.take_bits(tx.info_bits_for(&mods));
        let samples = tx.transmit(&info, &mods);
        assert_eq!(samples.len(), 5 * 80);
    }
}
