//! Bit-error-rate counting and theoretical references.

/// An accumulating bit-error counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BerCounter {
    /// Bits compared.
    pub bits: u64,
    /// Bit errors observed.
    pub errors: u64,
}

impl BerCounter {
    /// Fresh counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compare a transmitted/received bit pair.
    pub fn push(&mut self, tx: u8, rx: u8) {
        self.bits += 1;
        if tx != rx {
            self.errors += 1;
        }
    }

    /// Compare two equal-length blocks.
    pub fn push_block(&mut self, tx: &[u8], rx: &[u8]) {
        assert_eq!(tx.len(), rx.len(), "block length mismatch");
        self.bits += tx.len() as u64;
        self.errors += tx.iter().zip(rx).filter(|(a, b)| a != b).count() as u64;
    }

    /// The observed BER (0 when nothing counted).
    pub fn ber(&self) -> f64 {
        if self.bits == 0 {
            0.0
        } else {
            self.errors as f64 / self.bits as f64
        }
    }

    /// Merge another counter in.
    pub fn merge(&mut self, other: &BerCounter) {
        self.bits += other.bits;
        self.errors += other.errors;
    }
}

/// The Gaussian Q-function, via the complementary error function
/// (Abramowitz–Stegun 7.1.26 rational approximation, |ε| < 1.5e-7).
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Complementary error function.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let poly = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        poly
    } else {
        2.0 - poly
    }
}

/// Theoretical uncoded QPSK BER over AWGN at the given Eb/N0 (dB):
/// `Q(sqrt(2 Eb/N0))`.
pub fn qpsk_ber_theory(eb_n0_db: f64) -> f64 {
    let ebn0 = 10f64.powf(eb_n0_db / 10.0);
    q_function((2.0 * ebn0).sqrt())
}

/// Theoretical uncoded Gray-mapped QAM-16 BER over AWGN at the given
/// Eb/N0 (dB): `(3/4) Q(sqrt(4/5 Eb/N0))` (nearest-neighbor approximation).
pub fn qam16_ber_theory(eb_n0_db: f64) -> f64 {
    let ebn0 = 10f64.powf(eb_n0_db / 10.0);
    0.75 * q_function((0.8 * ebn0).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = BerCounter::new();
        c.push(0, 0);
        c.push(1, 0);
        c.push_block(&[1, 1, 0, 0], &[1, 0, 0, 1]);
        assert_eq!(c.bits, 6);
        assert_eq!(c.errors, 3);
        assert!((c.ber() - 0.5).abs() < 1e-12);
        let mut d = BerCounter::new();
        d.merge(&c);
        d.merge(&c);
        assert_eq!(d.bits, 12);
        assert_eq!(c.ber(), d.ber());
    }

    #[test]
    fn empty_counter_is_zero() {
        assert_eq!(BerCounter::new().ber(), 0.0);
    }

    #[test]
    fn erfc_reference_values() {
        // erfc(0) = 1, erfc(1) ≈ 0.157299, erfc(2) ≈ 0.004678.
        assert!((erfc(0.0) - 1.0).abs() < 1e-6);
        assert!((erfc(1.0) - 0.157_299).abs() < 1e-5);
        assert!((erfc(2.0) - 0.004_678).abs() < 1e-5);
        // Symmetry: erfc(-x) = 2 - erfc(x).
        assert!((erfc(-1.0) - (2.0 - erfc(1.0))).abs() < 1e-12);
    }

    #[test]
    fn q_function_reference_values() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-7);
        assert!((q_function(1.0) - 0.158_655).abs() < 1e-5);
        assert!((q_function(3.0) - 0.001_349_9).abs() < 1e-6);
    }

    #[test]
    fn qpsk_beats_qam16_at_equal_ebn0() {
        for db in [0.0, 4.0, 8.0, 12.0] {
            assert!(qpsk_ber_theory(db) < qam16_ber_theory(db), "at {db} dB");
        }
    }

    #[test]
    fn theory_decreases_with_snr() {
        let mut prev = 1.0;
        for db in [0, 2, 4, 6, 8, 10] {
            let b = qpsk_ber_theory(db as f64);
            assert!(b < prev);
            prev = b;
        }
        // Known point: QPSK at 9.6 dB ≈ 1e-5.
        let b = qpsk_ber_theory(9.6);
        assert!((5e-6..2e-5).contains(&b), "{b}");
    }
}
