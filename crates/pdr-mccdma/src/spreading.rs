//! Walsh–Hadamard spreading — the CDMA component of MC-CDMA.
//!
//! Each user's symbol stream is multiplied by an orthogonal ±1 Walsh code
//! of length `SF` (the spreading factor); the chips of all users are summed
//! and spread across subcarriers. Orthogonality makes despreading exact on
//! an ideal channel.

use crate::complex::Cplx;

/// A Walsh–Hadamard code book of a given power-of-two spreading factor.
#[derive(Debug, Clone)]
pub struct WalshHadamard {
    sf: usize,
    /// Row-major ±1 matrix, `sf × sf`.
    codes: Vec<i8>,
}

impl WalshHadamard {
    /// Build the code book via the Sylvester construction.
    pub fn new(sf: usize) -> Self {
        assert!(
            sf.is_power_of_two(),
            "spreading factor must be a power of two"
        );
        let mut codes = vec![1i8; sf * sf];
        let mut size = 1;
        while size < sf {
            for i in 0..size {
                for j in 0..size {
                    let v = codes[i * sf + j];
                    codes[i * sf + (j + size)] = v;
                    codes[(i + size) * sf + j] = v;
                    codes[(i + size) * sf + (j + size)] = -v;
                }
            }
            size <<= 1;
        }
        WalshHadamard { sf, codes }
    }

    /// The spreading factor.
    pub fn sf(&self) -> usize {
        self.sf
    }

    /// Code row of `user`.
    pub fn code(&self, user: usize) -> &[i8] {
        assert!(user < self.sf, "user {user} out of {} codes", self.sf);
        &self.codes[user * self.sf..(user + 1) * self.sf]
    }

    /// Spread one symbol of one user into `sf` chips.
    pub fn spread_symbol(&self, user: usize, symbol: Cplx) -> Vec<Cplx> {
        let mut out = Vec::with_capacity(self.sf);
        self.spread_into(user, &[symbol], &mut out);
        out
    }

    /// Spread a symbol stream of one user (concatenated chip blocks).
    pub fn spread(&self, user: usize, symbols: &[Cplx]) -> Vec<Cplx> {
        let mut out = Vec::with_capacity(symbols.len() * self.sf);
        self.spread_into(user, symbols, &mut out);
        out
    }

    /// [`WalshHadamard::spread`] appending into a caller-owned buffer: one
    /// flat pass over the code row per symbol, no per-symbol chip vector.
    pub fn spread_into(&self, user: usize, symbols: &[Cplx], out: &mut Vec<Cplx>) {
        let code = self.code(user);
        out.reserve(symbols.len() * self.sf);
        for &s in symbols {
            out.extend(code.iter().map(|&c| s.scale(c as f64)));
        }
    }

    /// Despread chips back to symbols (correlate with the user's code and
    /// normalize by `sf`).
    pub fn despread(&self, user: usize, chips: &[Cplx]) -> Vec<Cplx> {
        let mut out = Vec::with_capacity(chips.len() / self.sf);
        self.despread_into(user, chips, &mut out);
        out
    }

    /// [`WalshHadamard::despread`] appending into a caller-owned buffer.
    pub fn despread_into(&self, user: usize, chips: &[Cplx], out: &mut Vec<Cplx>) {
        assert!(
            chips.len().is_multiple_of(self.sf),
            "chip count {} is not a multiple of SF {}",
            chips.len(),
            self.sf
        );
        let code = self.code(user);
        out.extend(chips.chunks_exact(self.sf).map(|block| {
            let acc: Cplx = block
                .iter()
                .zip(code)
                .map(|(&chip, &c)| chip.scale(c as f64))
                .sum();
            acc / self.sf as f64
        }));
    }

    /// Sum the spread streams of several users (multi-user MC-CDMA symbol).
    pub fn combine(user_chips: &[Vec<Cplx>]) -> Vec<Cplx> {
        assert!(!user_chips.is_empty());
        let len = user_chips[0].len();
        assert!(user_chips.iter().all(|c| c.len() == len));
        let mut out = vec![Cplx::ZERO; len];
        for chips in user_chips {
            for (o, &c) in out.iter_mut().zip(chips) {
                *o += c;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_orthogonal() {
        let wh = WalshHadamard::new(32);
        for a in 0..32 {
            for b in 0..32 {
                let dot: i32 = wh
                    .code(a)
                    .iter()
                    .zip(wh.code(b))
                    .map(|(&x, &y)| (x as i32) * (y as i32))
                    .sum();
                if a == b {
                    assert_eq!(dot, 32);
                } else {
                    assert_eq!(dot, 0, "codes {a} and {b} not orthogonal");
                }
            }
        }
    }

    #[test]
    fn spread_despread_roundtrip() {
        let wh = WalshHadamard::new(16);
        let symbols = vec![Cplx::new(1.0, -0.5), Cplx::new(-0.3, 0.8)];
        for user in [0, 5, 15] {
            let chips = wh.spread(user, &symbols);
            assert_eq!(chips.len(), 32);
            let back = wh.despread(user, &chips);
            for (a, b) in symbols.iter().zip(&back) {
                assert!((*a - *b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn multi_user_separation() {
        // Three users share the channel; each recovers exactly their own
        // symbols thanks to orthogonality.
        let wh = WalshHadamard::new(8);
        let users = [1usize, 3, 6];
        let symbols = [
            vec![Cplx::new(1.0, 0.0)],
            vec![Cplx::new(0.0, -1.0)],
            vec![Cplx::new(-0.7, 0.7)],
        ];
        let streams: Vec<Vec<Cplx>> = users
            .iter()
            .zip(&symbols)
            .map(|(&u, s)| wh.spread(u, s))
            .collect();
        let combined = WalshHadamard::combine(&streams);
        for (i, &u) in users.iter().enumerate() {
            let rec = wh.despread(u, &combined);
            assert!((rec[0] - symbols[i][0]).abs() < 1e-12, "user {u}");
        }
        // An unused code sees zero.
        let silent = wh.despread(0, &combined);
        assert!(silent[0].abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sf_panics() {
        let _ = WalshHadamard::new(12);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn bad_user_panics() {
        let wh = WalshHadamard::new(4);
        let _ = wh.code(4);
    }

    #[test]
    #[should_panic(expected = "multiple of SF")]
    fn misaligned_chips_panic() {
        let wh = WalshHadamard::new(4);
        let _ = wh.despread(0, &[Cplx::ZERO; 6]);
    }
}
