//! Bit sources and utilities.

/// A PRBS-23 pseudo-random bit sequence generator (x²³ + x¹⁸ + 1), the
//  classic telecom test pattern; seeded, deterministic.
#[derive(Debug, Clone)]
pub struct Prbs {
    state: u32,
}

impl Prbs {
    /// Seeded generator (seed must be nonzero; it is masked to 23 bits).
    pub fn new(seed: u32) -> Self {
        let state = (seed & 0x7F_FFFF).max(1);
        Prbs { state }
    }

    /// Next bit.
    pub fn next_bit(&mut self) -> u8 {
        // Taps at bits 23 and 18 (1-indexed).
        let bit = ((self.state >> 22) ^ (self.state >> 17)) & 1;
        self.state = ((self.state << 1) | bit) & 0x7F_FFFF;
        bit as u8
    }

    /// Generate `n` bits.
    pub fn take_bits(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.next_bit()).collect()
    }
}

/// Pack bits (MSB first) into a u64; at most 64 bits.
pub fn pack_bits(bits: &[u8]) -> u64 {
    assert!(bits.len() <= 64, "at most 64 bits");
    bits.iter().fold(0u64, |acc, &b| {
        debug_assert!(b <= 1);
        (acc << 1) | b as u64
    })
}

/// Unpack `n` bits (MSB first) from a u64.
pub fn unpack_bits(value: u64, n: usize) -> Vec<u8> {
    assert!(n <= 64);
    (0..n).rev().map(|i| ((value >> i) & 1) as u8).collect()
}

/// Hamming distance between two equal-length bit slices.
pub fn hamming(a: &[u8], b: &[u8]) -> usize {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prbs_is_deterministic_and_balanced() {
        let mut a = Prbs::new(0x1234);
        let mut b = Prbs::new(0x1234);
        let xs = a.take_bits(1 << 14);
        let ys = b.take_bits(1 << 14);
        assert_eq!(xs, ys);
        // Roughly half ones.
        let ones: usize = xs.iter().map(|&b| b as usize).sum();
        let frac = ones as f64 / xs.len() as f64;
        assert!((0.45..0.55).contains(&frac), "ones fraction {frac}");
    }

    #[test]
    fn prbs_seeds_differ() {
        let xs = Prbs::new(1).take_bits(256);
        let ys = Prbs::new(2).take_bits(256);
        assert_ne!(xs, ys);
    }

    #[test]
    fn prbs_zero_seed_is_fixed_up() {
        // Seed 0 would lock the LFSR at zero; constructor masks it to 1.
        let xs = Prbs::new(0).take_bits(64);
        assert!(xs.contains(&1));
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let bits = vec![1, 0, 1, 1, 0, 0, 1, 0];
        let v = pack_bits(&bits);
        assert_eq!(v, 0b10110010);
        assert_eq!(unpack_bits(v, 8), bits);
    }

    #[test]
    fn hamming_distance() {
        assert_eq!(hamming(&[0, 1, 1], &[0, 1, 1]), 0);
        assert_eq!(hamming(&[0, 1, 1], &[1, 1, 0]), 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn hamming_length_mismatch_panics() {
        let _ = hamming(&[0], &[0, 1]);
    }
}
