//! Radix-2 decimation-in-time FFT / IFFT.
//!
//! The OFDM engine of the case study: the paper's transmitter uses a
//! 64-point IFFT per OFDM symbol. Implemented from scratch (iterative,
//! bit-reversal permutation then butterfly passes), normalized so that
//! `ifft(fft(x)) == x`.

use crate::complex::Cplx;
use std::f64::consts::PI;

/// In-place forward FFT. Length must be a power of two.
pub fn fft(data: &mut [Cplx]) {
    transform(data, -1.0);
}

/// In-place inverse FFT (normalized by 1/N). Length must be a power of two.
pub fn ifft(data: &mut [Cplx]) {
    transform(data, 1.0);
    let n = data.len() as f64;
    for x in data.iter_mut() {
        *x = *x / n;
    }
}

fn transform(data: &mut [Cplx], sign: f64) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length {n} is not a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterfly passes.
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Cplx::from_angle(ang);
        let mut i = 0;
        while i < n {
            let mut w = Cplx::ONE;
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Convenience: forward FFT of a slice, returning a new vector.
pub fn fft_vec(input: &[Cplx]) -> Vec<Cplx> {
    let mut v = input.to_vec();
    fft(&mut v);
    v
}

/// Convenience: inverse FFT of a slice, returning a new vector.
pub fn ifft_vec(input: &[Cplx]) -> Vec<Cplx> {
    let mut v = input.to_vec();
    ifft(&mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Cplx, b: Cplx) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut x = vec![Cplx::ZERO; 8];
        x[0] = Cplx::ONE;
        fft(&mut x);
        for v in &x {
            assert!(close(*v, Cplx::ONE));
        }
    }

    #[test]
    fn single_tone_lands_on_one_bin() {
        let n = 64;
        let k = 5;
        let x: Vec<Cplx> = (0..n)
            .map(|i| Cplx::from_angle(2.0 * PI * k as f64 * i as f64 / n as f64))
            .collect();
        let spec = fft_vec(&x);
        for (i, v) in spec.iter().enumerate() {
            if i == k {
                assert!((v.abs() - n as f64).abs() < 1e-8, "bin {i}: {}", v.abs());
            } else {
                assert!(v.abs() < 1e-8, "bin {i} leaks {}", v.abs());
            }
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        // Deterministic pseudo-random input.
        let mut seed = 0x9E3779B9u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let x: Vec<Cplx> = (0..256).map(|_| Cplx::new(next(), next())).collect();
        let y = ifft_vec(&fft_vec(&x));
        for (a, b) in x.iter().zip(&y) {
            assert!(close(*a, *b));
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let x: Vec<Cplx> = (0..64)
            .map(|i| Cplx::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let time_energy: f64 = x.iter().map(|v| v.norm_sq()).sum();
        let spec = fft_vec(&x);
        let freq_energy: f64 = spec.iter().map(|v| v.norm_sq()).sum::<f64>() / 64.0;
        assert!((time_energy - freq_energy).abs() < 1e-8);
    }

    #[test]
    fn length_one_is_identity() {
        let mut x = vec![Cplx::new(2.0, -3.0)];
        fft(&mut x);
        assert_eq!(x[0], Cplx::new(2.0, -3.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut x = vec![Cplx::ZERO; 12];
        fft(&mut x);
    }

    #[test]
    fn linearity() {
        let a: Vec<Cplx> = (0..16).map(|i| Cplx::new(i as f64, 0.0)).collect();
        let b: Vec<Cplx> = (0..16).map(|i| Cplx::new(0.0, (i * i) as f64)).collect();
        let sum: Vec<Cplx> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let fa = fft_vec(&a);
        let fb = fft_vec(&b);
        let fsum = fft_vec(&sum);
        for i in 0..16 {
            assert!(close(fsum[i], fa[i] + fb[i]));
        }
    }
}
