//! Adaptive modulation: the `Select` entry of Fig. 4.
//!
//! §6: the DSP *"can select modulation performed by the dynamic part by
//! sending this value to module Interface IN OUT"*, choosing the
//! modulation of each OFDM symbol *"according to the signal to noise
//! ratio"*. [`AdaptivePolicy`] is that decision rule (a threshold with
//! hysteresis so channel noise does not cause reconfiguration thrash), and
//! [`SnrTrace`] generates the channel-quality scenarios the experiments
//! replay.

use crate::modulation::Modulation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// SNR-threshold modulation selection with hysteresis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptivePolicy {
    /// Switch up to QAM-16 when the SNR exceeds this (dB).
    pub up_threshold_db: f64,
    /// Switch down to QPSK when the SNR falls below this (dB).
    pub down_threshold_db: f64,
}

impl AdaptivePolicy {
    /// Policy with the given up/down thresholds.
    ///
    /// # Panics
    /// Panics when `down > up` (the hysteresis band would be inverted).
    pub fn new(up_threshold_db: f64, down_threshold_db: f64) -> Self {
        assert!(
            down_threshold_db <= up_threshold_db,
            "hysteresis band inverted"
        );
        AdaptivePolicy {
            up_threshold_db,
            down_threshold_db,
        }
    }

    /// A reasonable default: QAM-16 above 14 dB, QPSK below 11 dB.
    pub fn paper_default() -> Self {
        AdaptivePolicy::new(14.0, 11.0)
    }

    /// Decide the modulation for the next symbol given the current one.
    pub fn decide(&self, current: Modulation, snr_db: f64) -> Modulation {
        match current {
            Modulation::Qpsk if snr_db >= self.up_threshold_db => Modulation::Qam16,
            Modulation::Qam16 if snr_db < self.down_threshold_db => Modulation::Qpsk,
            m => m,
        }
    }

    /// Run the policy over an SNR trace, starting from `initial`; returns
    /// the per-symbol modulation sequence.
    pub fn run(&self, initial: Modulation, snr_db: &[f64]) -> Vec<Modulation> {
        let mut current = initial;
        snr_db
            .iter()
            .map(|&snr| {
                current = self.decide(current, snr);
                current
            })
            .collect()
    }

    /// Count modulation switches in a sequence.
    pub fn switches(seq: &[Modulation]) -> usize {
        seq.windows(2).filter(|w| w[0] != w[1]).count()
    }
}

/// Generators of per-symbol SNR traces.
#[derive(Debug, Clone)]
pub struct SnrTrace;

impl SnrTrace {
    /// Constant SNR.
    pub fn constant(db: f64, len: usize) -> Vec<f64> {
        vec![db; len]
    }

    /// A slow sinusoidal fade between `lo` and `hi` dB with the given
    /// period (in symbols) — a vehicle passing through coverage.
    pub fn sinusoidal(lo: f64, hi: f64, period: usize, len: usize) -> Vec<f64> {
        assert!(period > 0);
        let mid = (lo + hi) / 2.0;
        let amp = (hi - lo) / 2.0;
        (0..len)
            .map(|i| mid + amp * (2.0 * std::f64::consts::PI * i as f64 / period as f64).sin())
            .collect()
    }

    /// A random walk with per-step standard deviation `step_db`, clamped to
    /// `[lo, hi]` — a slowly varying shadowing process.
    pub fn random_walk(
        start: f64,
        step_db: f64,
        lo: f64,
        hi: f64,
        len: usize,
        seed: u64,
    ) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v = start;
        (0..len)
            .map(|_| {
                let step: f64 = rng.random::<f64>() * 2.0 - 1.0;
                v = (v + step * step_db).clamp(lo, hi);
                v
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decide_with_hysteresis() {
        let p = AdaptivePolicy::paper_default();
        // Below both thresholds: stay/settle on QPSK.
        assert_eq!(p.decide(Modulation::Qpsk, 8.0), Modulation::Qpsk);
        assert_eq!(p.decide(Modulation::Qam16, 8.0), Modulation::Qpsk);
        // Inside the band: keep the current modulation.
        assert_eq!(p.decide(Modulation::Qpsk, 12.5), Modulation::Qpsk);
        assert_eq!(p.decide(Modulation::Qam16, 12.5), Modulation::Qam16);
        // Above both: settle on QAM-16.
        assert_eq!(p.decide(Modulation::Qpsk, 15.0), Modulation::Qam16);
        assert_eq!(p.decide(Modulation::Qam16, 15.0), Modulation::Qam16);
    }

    #[test]
    fn hysteresis_prevents_thrash() {
        // SNR oscillating inside the band: zero switches after settling.
        let p = AdaptivePolicy::paper_default();
        let trace: Vec<f64> = (0..100)
            .map(|i| 12.5 + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let seq = p.run(Modulation::Qpsk, &trace);
        assert_eq!(AdaptivePolicy::switches(&seq), 0);
        // A no-hysteresis policy (equal thresholds at 12.5) thrashes.
        let naive = AdaptivePolicy::new(12.5, 12.5);
        let seq = naive.run(Modulation::Qpsk, &trace);
        assert!(AdaptivePolicy::switches(&seq) > 90);
    }

    #[test]
    fn sinusoidal_fade_produces_periodic_switches() {
        let p = AdaptivePolicy::paper_default();
        let trace = SnrTrace::sinusoidal(6.0, 20.0, 50, 500);
        let seq = p.run(Modulation::Qpsk, &trace);
        let switches = AdaptivePolicy::switches(&seq);
        // Two switches per period, 10 periods.
        assert!((15..=25).contains(&switches), "switches {switches}");
    }

    #[test]
    fn constant_trace_never_switches_after_settling() {
        let p = AdaptivePolicy::paper_default();
        let seq = p.run(Modulation::Qpsk, &SnrTrace::constant(20.0, 50));
        // First decision switches up, then stays.
        assert_eq!(AdaptivePolicy::switches(&seq), 0);
        assert!(seq.iter().all(|&m| m == Modulation::Qam16));
    }

    #[test]
    fn random_walk_is_deterministic_and_bounded() {
        let a = SnrTrace::random_walk(12.0, 1.0, 5.0, 20.0, 200, 9);
        let b = SnrTrace::random_walk(12.0, 1.0, 5.0, 20.0, 200, 9);
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| (5.0..=20.0).contains(&v)));
        let c = SnrTrace::random_walk(12.0, 1.0, 5.0, 20.0, 200, 10);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_band_panics() {
        let _ = AdaptivePolicy::new(10.0, 14.0);
    }
}
