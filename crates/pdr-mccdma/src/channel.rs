//! AWGN channel with exact Es/N0 accounting.

use crate::complex::Cplx;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded additive-white-Gaussian-noise channel.
///
/// Noise is complex Gaussian with total variance `N0` per sample, where
/// `N0 = Es / (Es/N0)` and `Es` is measured from the actual signal (so the
/// constellation normalization cannot silently skew results).
#[derive(Debug)]
pub struct AwgnChannel {
    rng: StdRng,
    es_n0_db: f64,
}

impl AwgnChannel {
    /// Channel at the given Es/N0 (dB), with a deterministic seed.
    pub fn new(es_n0_db: f64, seed: u64) -> Self {
        AwgnChannel {
            rng: StdRng::seed_from_u64(seed),
            es_n0_db,
        }
    }

    /// The configured Es/N0 in dB.
    pub fn es_n0_db(&self) -> f64 {
        self.es_n0_db
    }

    /// Change the operating point.
    pub fn set_es_n0_db(&mut self, db: f64) {
        self.es_n0_db = db;
    }

    /// A standard-normal sample (Box–Muller; two uniforms per call pair).
    fn gauss(&mut self) -> f64 {
        loop {
            let u1: f64 = self.rng.random::<f64>();
            let u2: f64 = self.rng.random::<f64>();
            if u1 > f64::MIN_POSITIVE {
                return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            }
        }
    }

    /// Pass samples through the channel: measures Es from the input and
    /// adds complex Gaussian noise at the configured Es/N0.
    pub fn transmit(&mut self, samples: &[Cplx]) -> Vec<Cplx> {
        if samples.is_empty() {
            return Vec::new();
        }
        let es: f64 = samples.iter().map(|s| s.norm_sq()).sum::<f64>() / samples.len() as f64;
        let n0 = es / 10f64.powf(self.es_n0_db / 10.0);
        let sigma = (n0 / 2.0).sqrt(); // per real dimension
        samples
            .iter()
            .map(|&s| s + Cplx::new(self.gauss() * sigma, self.gauss() * sigma))
            .collect()
    }
}

/// Convert Eb/N0 (dB) to Es/N0 (dB) for `bits_per_symbol` and `code_rate`.
pub fn ebn0_to_esn0_db(eb_n0_db: f64, bits_per_symbol: usize, code_rate: f64) -> f64 {
    eb_n0_db + 10.0 * (bits_per_symbol as f64 * code_rate).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_power_matches_configuration() {
        let signal = vec![Cplx::ONE; 200_000];
        let mut ch = AwgnChannel::new(10.0, 42);
        let out = ch.transmit(&signal);
        let noise_power: f64 = out
            .iter()
            .zip(&signal)
            .map(|(y, x)| (*y - *x).norm_sq())
            .sum::<f64>()
            / signal.len() as f64;
        // Es = 1, Es/N0 = 10 dB -> N0 = 0.1.
        assert!((noise_power - 0.1).abs() < 0.005, "noise {noise_power}");
    }

    #[test]
    fn deterministic_per_seed() {
        let signal = vec![Cplx::new(0.5, -0.5); 64];
        let a = AwgnChannel::new(5.0, 7).transmit(&signal);
        let b = AwgnChannel::new(5.0, 7).transmit(&signal);
        let c = AwgnChannel::new(5.0, 8).transmit(&signal);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn high_snr_barely_perturbs() {
        let signal = vec![Cplx::ONE; 1000];
        let out = AwgnChannel::new(60.0, 1).transmit(&signal);
        for (y, x) in out.iter().zip(&signal) {
            assert!((*y - *x).abs() < 0.01);
        }
    }

    #[test]
    fn empty_input() {
        assert!(AwgnChannel::new(10.0, 1).transmit(&[]).is_empty());
    }

    #[test]
    fn ebn0_conversion() {
        // QPSK uncoded: Es/N0 = Eb/N0 + 10log10(2) ≈ +3.01 dB.
        let es = ebn0_to_esn0_db(5.0, 2, 1.0);
        assert!((es - 8.0103).abs() < 1e-3);
        // QAM-16 rate 1/2: +10log10(2) as well.
        let es = ebn0_to_esn0_db(5.0, 4, 0.5);
        assert!((es - 8.0103).abs() < 1e-3);
    }

    #[test]
    fn gaussian_moments() {
        let mut ch = AwgnChannel::new(0.0, 3);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| ch.gauss()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
