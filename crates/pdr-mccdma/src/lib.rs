//! # pdr-mccdma — MC-CDMA baseband for the paper's case study
//!
//! §6 of the paper implements *"a transmitter system for future wireless
//! networks for 4G air interface ... based on MC-CDMA modulation scheme"*
//! (Lenours, Nouvel, Hélard, EURASIP JASP 2004): channel coding, adaptive
//! QPSK/QAM-16 symbol mapping (selected per OFDM symbol from the SNR),
//! Walsh–Hadamard spreading, chip mapping onto subcarriers, OFDM modulation
//! (IFFT), guard interval and framing.
//!
//! This crate is the bit-true functional model of that chain — the part the
//! paper runs on real hardware. It provides both transmitter and receiver
//! plus an AWGN channel so the reproduction can *demonstrate* what the
//! paper assumes: QPSK and QAM-16 trade throughput against error rate,
//! which is exactly why the modulation block is worth reconfiguring at run
//! time.
//!
//! * [`complex`] — minimal complex arithmetic;
//! * [`bits`] — PRBS sources and bit utilities;
//! * [`fec`] — convolutional code (K = 7, rate 1/2) + Viterbi decoder;
//! * [`modulation`] — Gray-mapped QPSK and QAM-16 (energy-normalized);
//! * [`spreading`] — Walsh–Hadamard spreading/despreading;
//! * [`fft`] — radix-2 FFT/IFFT (the 64-point OFDM engine);
//! * [`ofdm`] — subcarrier mapping, IFFT, cyclic prefix;
//! * [`channel`] — AWGN with exact Eb/N0 accounting;
//! * [`ber`] — error counting + theoretical references;
//! * [`adaptive`] — the SNR-threshold modulation selector (the `Select`
//!   entry of Fig. 4) and SNR trace generators;
//! * [`tx`] — the end-to-end transmitter/receiver pair.
//!
//! ## Example: one adaptive frame, end to end
//!
//! ```
//! use pdr_mccdma::prelude::*;
//!
//! let cfg = TxConfig::paper();
//! let tx = McCdmaTransmitter::new(cfg);
//! let rx = McCdmaReceiver::new(cfg);
//! // Modulation changes mid-frame, as the paper's Select entry allows.
//! let mods = [Modulation::Qpsk, Modulation::Qpsk, Modulation::Qam16, Modulation::Qam16];
//! let info = Prbs::new(7).take_bits(tx.info_bits_for(&mods));
//! let air = tx.transmit(&info, &mods);
//! assert_eq!(rx.receive(&air, &mods), info);
//! ```

pub mod adaptive;
pub mod ber;
pub mod bits;
pub mod channel;
pub mod complex;
pub mod fec;
pub mod fft;
pub mod interleave;
pub mod modulation;
pub mod multipath;
pub mod multiuser;
pub mod ofdm;
pub mod snr;
pub mod spreading;
pub mod tx;

pub use adaptive::{AdaptivePolicy, SnrTrace};
pub use ber::BerCounter;
pub use bits::Prbs;
pub use channel::AwgnChannel;
pub use complex::Cplx;
pub use fec::{ConvEncoder, ViterbiDecoder};
pub use interleave::BlockInterleaver;
pub use modulation::Modulation;
pub use multipath::TwoPathChannel;
pub use multiuser::MultiUserTransmitter;
pub use ofdm::OfdmModem;
pub use snr::SnrEstimator;
pub use spreading::WalshHadamard;
pub use tx::{McCdmaReceiver, McCdmaTransmitter, TxConfig};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::adaptive::{AdaptivePolicy, SnrTrace};
    pub use crate::ber::BerCounter;
    pub use crate::bits::Prbs;
    pub use crate::channel::AwgnChannel;
    pub use crate::complex::Cplx;
    pub use crate::fec::{ConvEncoder, ViterbiDecoder};
    pub use crate::interleave::BlockInterleaver;
    pub use crate::modulation::Modulation;
    pub use crate::multipath::TwoPathChannel;
    pub use crate::multiuser::MultiUserTransmitter;
    pub use crate::ofdm::OfdmModem;
    pub use crate::snr::SnrEstimator;
    pub use crate::spreading::WalshHadamard;
    pub use crate::tx::{McCdmaReceiver, McCdmaTransmitter, TxConfig};
}
