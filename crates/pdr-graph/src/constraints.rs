//! Dynamic-reconfiguration constraints files.
//!
//! §4 of the paper: *"A constraints file will contain the definition of each
//! dynamic module and the associated constraints (loading, unloading,
//! sharing area, dynamic relations, exclusion)."* The same file then feeds
//! the modular back-end's placement step (§5: *"All these constraints are
//! fixed in a constraints file, used during the placement and routing"*).
//!
//! The format is a simple INI-like text, one section per dynamic module:
//!
//! ```text
//! # MC-CDMA transmitter dynamic constraints
//! [module mod_qpsk]
//! region = op_dyn
//! load = on_demand
//! unload = evict
//! share_group = modulation
//! exclusive_with = mod_qam16
//! pin = 20 4            # optional: CLB column start + width
//! ```

use crate::error::GraphError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// When a module's bitstream is loaded onto its region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum LoadPolicy {
    /// Loaded once during system start-up (before the first iteration).
    AtStart,
    /// Loaded on first use / on reconfiguration request (default).
    #[default]
    OnDemand,
}

/// When a module may be removed from its region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum UnloadPolicy {
    /// Only removed by an explicit application request.
    Explicit,
    /// May be evicted whenever another module needs the shared area
    /// (default — this is what area sharing means).
    #[default]
    Evict,
}

/// Constraints attached to one dynamic module (one alternative function of
/// a conditioned operation).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModuleConstraints {
    /// Function symbol of the module (e.g. `"mod_qpsk"`).
    pub module: String,
    /// Dynamic operator (region) the module is constrained to.
    pub region: String,
    /// Loading policy.
    pub load: LoadPolicy,
    /// Unloading policy.
    pub unload: UnloadPolicy,
    /// Modules in the same share group occupy the same physical area
    /// (at most one resident at a time).
    pub share_group: Option<String>,
    /// Modules that must never be resident simultaneously even across
    /// *different* regions (the paper's "exclusion" dynamic relation).
    pub exclusive_with: Vec<String>,
    /// Optional placement pin: (CLB column start, width in CLB columns).
    pub pin: Option<(u32, u32)>,
    /// Optional real-time constraint: every compute of this module must
    /// complete within this many microseconds from iteration start (the
    /// §4 "dynamic relations" bucket — a module must be operational and
    /// done in time even under worst-case reconfiguration latency).
    /// Checked by the lint layer's `[best, worst]`-clock analysis.
    pub deadline_us: Option<u64>,
}

impl ModuleConstraints {
    /// Constraints with defaults (on-demand load, evictable, no pin).
    pub fn new(module: impl Into<String>, region: impl Into<String>) -> Self {
        ModuleConstraints {
            module: module.into(),
            region: region.into(),
            load: LoadPolicy::default(),
            unload: UnloadPolicy::default(),
            share_group: None,
            exclusive_with: Vec::new(),
            pin: None,
            deadline_us: None,
        }
    }
}

/// A parsed constraints file: an ordered set of module sections.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConstraintsFile {
    modules: Vec<ModuleConstraints>,
}

impl ConstraintsFile {
    /// Empty file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a module section. Duplicate module names are rejected.
    pub fn add(&mut self, mc: ModuleConstraints) -> Result<(), GraphError> {
        if self.modules.iter().any(|m| m.module == mc.module) {
            return Err(GraphError::DuplicateName(mc.module));
        }
        self.modules.push(mc);
        Ok(())
    }

    /// All module sections, in file order.
    pub fn modules(&self) -> &[ModuleConstraints] {
        &self.modules
    }

    /// Lookup by module name.
    pub fn module(&self, name: &str) -> Option<&ModuleConstraints> {
        self.modules.iter().find(|m| m.module == name)
    }

    /// Modules constrained to a given region.
    pub fn modules_in_region(&self, region: &str) -> Vec<&ModuleConstraints> {
        self.modules.iter().filter(|m| m.region == region).collect()
    }

    /// Are two modules mutually exclusive (directly, in either direction,
    /// or through a shared share-group)?
    pub fn mutually_exclusive(&self, a: &str, b: &str) -> bool {
        if a == b {
            return false;
        }
        let (ma, mb) = match (self.module(a), self.module(b)) {
            (Some(x), Some(y)) => (x, y),
            _ => return false,
        };
        if ma.exclusive_with.iter().any(|x| x == b) || mb.exclusive_with.iter().any(|x| x == a) {
            return true;
        }
        matches!((&ma.share_group, &mb.share_group), (Some(x), Some(y)) if x == y)
    }

    /// Validate cross-references: exclusion targets must exist, pins must be
    /// plausible (width ≥ 2 CLB columns per the Modular Design rule), and
    /// share groups must be region-consistent (a share group spanning two
    /// regions cannot share area).
    pub fn validate(&self) -> Result<(), GraphError> {
        let mut group_region: HashMap<&str, &str> = HashMap::new();
        for m in &self.modules {
            for x in &m.exclusive_with {
                if self.module(x).is_none() {
                    return Err(GraphError::UnknownVertex(format!(
                        "exclusion target `{x}` of module `{}`",
                        m.module
                    )));
                }
            }
            if let Some((_, w)) = m.pin {
                if w < 2 {
                    return Err(GraphError::Structural(format!(
                        "module `{}` pin width {w} < 2 CLB columns (four slices)",
                        m.module
                    )));
                }
            }
            if let Some(g) = &m.share_group {
                match group_region.get(g.as_str()) {
                    Some(r) if *r != m.region => {
                        return Err(GraphError::Structural(format!(
                            "share group `{g}` spans regions `{r}` and `{}`",
                            m.region
                        )));
                    }
                    _ => {
                        group_region.insert(g, &m.region);
                    }
                }
            }
        }
        Ok(())
    }

    /// Parse the text format.
    pub fn parse(text: &str) -> Result<ConstraintsFile, GraphError> {
        let mut file = ConstraintsFile::new();
        let mut current: Option<ModuleConstraints> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let inner = rest.strip_suffix(']').ok_or(GraphError::ConstraintsParse {
                    line: lineno,
                    reason: "unterminated section header".into(),
                })?;
                let mut parts = inner.split_whitespace();
                match (parts.next(), parts.next(), parts.next()) {
                    (Some("module"), Some(name), None) => {
                        if let Some(done) = current.take() {
                            file.add(done).map_err(|e| GraphError::ConstraintsParse {
                                line: lineno,
                                reason: e.to_string(),
                            })?;
                        }
                        current = Some(ModuleConstraints::new(name, ""));
                    }
                    _ => {
                        return Err(GraphError::ConstraintsParse {
                            line: lineno,
                            reason: format!("bad section header `{line}`"),
                        })
                    }
                }
                continue;
            }
            let Some(cur) = current.as_mut() else {
                return Err(GraphError::ConstraintsParse {
                    line: lineno,
                    reason: "key outside of a [module ...] section".into(),
                });
            };
            let (key, value) = line.split_once('=').ok_or(GraphError::ConstraintsParse {
                line: lineno,
                reason: format!("expected `key = value`, got `{line}`"),
            })?;
            let key = key.trim();
            let value = value.trim();
            match key {
                "region" => cur.region = value.to_string(),
                "load" => {
                    cur.load = match value {
                        "at_start" => LoadPolicy::AtStart,
                        "on_demand" => LoadPolicy::OnDemand,
                        _ => {
                            return Err(GraphError::ConstraintsParse {
                                line: lineno,
                                reason: format!("bad load policy `{value}`"),
                            })
                        }
                    }
                }
                "unload" => {
                    cur.unload = match value {
                        "explicit" => UnloadPolicy::Explicit,
                        "evict" => UnloadPolicy::Evict,
                        _ => {
                            return Err(GraphError::ConstraintsParse {
                                line: lineno,
                                reason: format!("bad unload policy `{value}`"),
                            })
                        }
                    }
                }
                "share_group" => cur.share_group = Some(value.to_string()),
                "exclusive_with" => {
                    cur.exclusive_with = value
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect();
                }
                "deadline_us" => {
                    cur.deadline_us =
                        Some(value.parse().map_err(|_| GraphError::ConstraintsParse {
                            line: lineno,
                            reason: format!("bad deadline_us `{value}` (expected microseconds)"),
                        })?);
                }
                "pin" => {
                    let mut it = value.split_whitespace();
                    let parse_u32 = |s: Option<&str>| -> Result<u32, GraphError> {
                        s.and_then(|x| x.parse().ok())
                            .ok_or(GraphError::ConstraintsParse {
                                line: lineno,
                                reason: format!("bad pin `{value}` (expected `start width`)"),
                            })
                    };
                    let start = parse_u32(it.next())?;
                    let width = parse_u32(it.next())?;
                    cur.pin = Some((start, width));
                }
                _ => {
                    return Err(GraphError::ConstraintsParse {
                        line: lineno,
                        reason: format!("unknown key `{key}`"),
                    })
                }
            }
        }
        if let Some(done) = current.take() {
            file.add(done).map_err(|e| GraphError::ConstraintsParse {
                line: text.lines().count(),
                reason: e.to_string(),
            })?;
        }
        // A module without a region is malformed.
        if let Some(m) = file.modules.iter().find(|m| m.region.is_empty()) {
            return Err(GraphError::ConstraintsParse {
                line: 0,
                reason: format!("module `{}` has no region", m.module),
            });
        }
        Ok(file)
    }
}

impl fmt::Display for ConstraintsFile {
    /// Serialize back to the text format (round-trips through
    /// [`ConstraintsFile::parse`]).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for m in &self.modules {
            writeln!(f, "[module {}]", m.module)?;
            writeln!(f, "region = {}", m.region)?;
            writeln!(
                f,
                "load = {}",
                match m.load {
                    LoadPolicy::AtStart => "at_start",
                    LoadPolicy::OnDemand => "on_demand",
                }
            )?;
            writeln!(
                f,
                "unload = {}",
                match m.unload {
                    UnloadPolicy::Explicit => "explicit",
                    UnloadPolicy::Evict => "evict",
                }
            )?;
            if let Some(g) = &m.share_group {
                writeln!(f, "share_group = {g}")?;
            }
            if !m.exclusive_with.is_empty() {
                writeln!(f, "exclusive_with = {}", m.exclusive_with.join(", "))?;
            }
            if let Some((s, w)) = m.pin {
                writeln!(f, "pin = {s} {w}")?;
            }
            if let Some(d) = m.deadline_us {
                writeln!(f, "deadline_us = {d}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_file() -> ConstraintsFile {
        let mut f = ConstraintsFile::new();
        let mut qpsk = ModuleConstraints::new("mod_qpsk", "op_dyn");
        qpsk.share_group = Some("modulation".into());
        qpsk.exclusive_with = vec!["mod_qam16".into()];
        qpsk.pin = Some((20, 4));
        qpsk.load = LoadPolicy::AtStart;
        let mut qam = ModuleConstraints::new("mod_qam16", "op_dyn");
        qam.share_group = Some("modulation".into());
        f.add(qpsk).unwrap();
        f.add(qam).unwrap();
        f
    }

    #[test]
    fn roundtrip_through_text() {
        let f = paper_file();
        let text = f.to_string();
        let back = ConstraintsFile::parse(&text).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn deadline_parses_renders_and_roundtrips() {
        let mut f = paper_file();
        f.modules[0].deadline_us = Some(1500);
        let text = f.to_string();
        assert!(text.contains("deadline_us = 1500"), "{text}");
        assert_eq!(ConstraintsFile::parse(&text).unwrap(), f);
        // Absent deadline renders nothing (legacy files stay byte-stable).
        assert!(!paper_file().to_string().contains("deadline_us"));
        let e = ConstraintsFile::parse("[module a]\nregion = r\ndeadline_us = soon").unwrap_err();
        assert!(e.to_string().contains("deadline_us"), "{e}");
    }

    #[test]
    fn parse_with_comments_and_blank_lines() {
        let text = "\n# header comment\n[module m1]\nregion = r  # trailing\n\n";
        let f = ConstraintsFile::parse(text).unwrap();
        assert_eq!(f.modules().len(), 1);
        assert_eq!(f.module("m1").unwrap().region, "r");
        assert_eq!(f.module("m1").unwrap().load, LoadPolicy::OnDemand);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = ConstraintsFile::parse("[module a]\nregion = r\nbogus_key = 1").unwrap_err();
        assert!(e.to_string().contains("line 3"), "{e}");
        let e = ConstraintsFile::parse("region = r").unwrap_err();
        assert!(e.to_string().contains("outside"));
        let e = ConstraintsFile::parse("[module a\nregion = r").unwrap_err();
        assert!(e.to_string().contains("unterminated"));
        let e = ConstraintsFile::parse("[module a]\nload = sometimes").unwrap_err();
        assert!(e.to_string().contains("load policy"));
        let e = ConstraintsFile::parse("[module a]\nregion = r\npin = 3").unwrap_err();
        assert!(e.to_string().contains("pin"));
    }

    #[test]
    fn module_without_region_rejected() {
        let e = ConstraintsFile::parse("[module a]\nload = on_demand").unwrap_err();
        assert!(e.to_string().contains("no region"));
    }

    #[test]
    fn duplicate_module_rejected() {
        let text = "[module a]\nregion = r\n[module a]\nregion = r";
        assert!(ConstraintsFile::parse(text).is_err());
    }

    #[test]
    fn exclusion_is_symmetric_and_share_group_implies_it() {
        let f = paper_file();
        assert!(f.mutually_exclusive("mod_qpsk", "mod_qam16"));
        assert!(f.mutually_exclusive("mod_qam16", "mod_qpsk"));
        assert!(!f.mutually_exclusive("mod_qpsk", "mod_qpsk"));
        assert!(!f.mutually_exclusive("mod_qpsk", "unknown"));
    }

    #[test]
    fn validate_checks_cross_references() {
        let mut f = ConstraintsFile::new();
        let mut m = ModuleConstraints::new("a", "r");
        m.exclusive_with = vec!["ghost".into()];
        f.add(m).unwrap();
        assert!(f.validate().is_err());

        let mut f = ConstraintsFile::new();
        let mut m = ModuleConstraints::new("a", "r");
        m.pin = Some((0, 1));
        f.add(m).unwrap();
        assert!(f.validate().is_err());

        // Share group spanning two regions is invalid.
        let mut f = ConstraintsFile::new();
        let mut m1 = ModuleConstraints::new("a", "r1");
        m1.share_group = Some("g".into());
        let mut m2 = ModuleConstraints::new("b", "r2");
        m2.share_group = Some("g".into());
        f.add(m1).unwrap();
        f.add(m2).unwrap();
        assert!(f.validate().is_err());

        assert!(paper_file().validate().is_ok());
    }

    #[test]
    fn modules_in_region() {
        let f = paper_file();
        assert_eq!(f.modules_in_region("op_dyn").len(), 2);
        assert!(f.modules_in_region("elsewhere").is_empty());
    }
}
