//! Characterization tables: the metrics that guide adequation.
//!
//! §3 of the paper lists the metrics that guide the choice of dynamic
//! implementation candidates: *"execution time, memory constraints, power
//! efficiency, reconfiguration time, configuration prefetching capabilities
//! and area constraints."* The adequation heuristic (crate
//! `pdr-adequation`) consumes exactly these tables:
//!
//! * **durations** — worst-case execution time of a function on a given
//!   operator; the *absence* of an entry means the function cannot execute
//!   there (the feasibility oracle of the mapping);
//! * **resources** — area footprint of each function when implemented in
//!   FPGA logic (feeds the Table 1 estimator and region-fit checks);
//! * **reconfiguration times** — time to load a function onto a dynamic
//!   operator; defaulted per operator, overridable per (function, operator).
//!
//! Transfer costs live on the architecture's media ([`crate::Medium`]).

use crate::architecture::{ArchGraph, OperatorId};
use crate::error::GraphError;
use pdr_fabric::{Resources, TimePs};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Characterization tables keyed by function symbol and operator name.
///
/// Operator *names* (not ids) are used as keys so one characterization can
/// be reused across architecture variants that share operator names.
///
/// The two-dimensional tables are two-level maps (`function → operator →
/// value`) rather than composite-key maps so the hot lookups —
/// [`Characterization::duration`] is probed once per (operation, operator,
/// function) candidate inside the adequation inner loop — take borrowed
/// `&str` keys and never allocate.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Characterization {
    durations: HashMap<String, HashMap<String, TimePs>>,
    resources: HashMap<String, Resources>,
    reconfig_default: HashMap<String, TimePs>,
    reconfig_override: HashMap<String, HashMap<String, TimePs>>,
}

impl Characterization {
    /// Empty tables.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare that `function` runs on operator `operator` in `wcet`.
    pub fn set_duration(&mut self, function: &str, operator: &str, wcet: TimePs) -> &mut Self {
        self.durations
            .entry(function.to_string())
            .or_default()
            .insert(operator.to_string(), wcet);
        self
    }

    /// Execution time of `function` on the operator named `operator`, if
    /// the pair is feasible. Allocation-free: this is the adequation inner
    /// loop's feasibility-and-cost probe.
    pub fn duration(&self, function: &str, operator: &str) -> Option<TimePs> {
        self.durations.get(function)?.get(operator).copied()
    }

    /// Like [`Characterization::duration`] but resolving the operator via an
    /// architecture graph, and erroring when infeasible.
    pub fn duration_on(
        &self,
        function: &str,
        arch: &ArchGraph,
        op: OperatorId,
    ) -> Result<TimePs, GraphError> {
        let name = &arch.operator(op).name;
        self.duration(function, name).ok_or_else(|| {
            GraphError::MissingCharacterization(format!(
                "duration of `{function}` on operator `{name}`"
            ))
        })
    }

    /// Can `function` execute on the named operator at all?
    /// Allocation-free, like [`Characterization::duration`].
    pub fn feasible(&self, function: &str, operator: &str) -> bool {
        self.durations
            .get(function)
            .is_some_and(|ops| ops.contains_key(operator))
    }

    /// Operators (by name) on which `function` is feasible.
    pub fn feasible_operators<'a>(&'a self, function: &str) -> Vec<&'a str> {
        let mut v: Vec<&str> = self
            .durations
            .get(function)
            .map(|ops| ops.keys().map(String::as_str).collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// Area footprint of `function` in FPGA logic.
    pub fn set_resources(&mut self, function: &str, r: Resources) -> &mut Self {
        self.resources.insert(function.to_string(), r);
        self
    }

    /// Footprint lookup (zero when never set — e.g. software-only functions).
    pub fn resources(&self, function: &str) -> Resources {
        self.resources
            .get(function)
            .copied()
            .unwrap_or(Resources::ZERO)
    }

    /// Default reconfiguration time of the named dynamic operator.
    pub fn set_reconfig_default(&mut self, operator: &str, t: TimePs) -> &mut Self {
        self.reconfig_default.insert(operator.to_string(), t);
        self
    }

    /// Override the reconfiguration time of one (function, operator) pair
    /// (e.g. a smaller alternative needing fewer frames).
    pub fn set_reconfig_override(
        &mut self,
        function: &str,
        operator: &str,
        t: TimePs,
    ) -> &mut Self {
        self.reconfig_override
            .entry(function.to_string())
            .or_default()
            .insert(operator.to_string(), t);
        self
    }

    /// Reconfiguration time to load `function` onto the named operator:
    /// the override if present, else the operator default, else an error
    /// (scheduling a reconfiguration with unknown cost is a methodology
    /// violation, not a silent zero). Allocation-free on both levels.
    pub fn reconfig_time(&self, function: &str, operator: &str) -> Result<TimePs, GraphError> {
        if let Some(&t) = self
            .reconfig_override
            .get(function)
            .and_then(|ops| ops.get(operator))
        {
            return Ok(t);
        }
        self.reconfig_default.get(operator).copied().ok_or_else(|| {
            GraphError::MissingCharacterization(format!(
                "reconfiguration time of operator `{operator}`"
            ))
        })
    }

    /// Number of duration entries (diagnostics).
    pub fn duration_entries(&self) -> usize {
        self.durations.values().map(HashMap::len).sum()
    }

    /// Every duration entry as `(function, operator, wcet)`, sorted by
    /// `(function, operator)`. The backing maps are unordered; this is
    /// the canonical order for digesting or diffing characterizations
    /// (`DesignFlow::model_digest` walks it).
    pub fn sorted_durations(&self) -> Vec<(&str, &str, TimePs)> {
        let mut out: Vec<(&str, &str, TimePs)> = self
            .durations
            .iter()
            .flat_map(|(f, ops)| ops.iter().map(move |(o, &t)| (f.as_str(), o.as_str(), t)))
            .collect();
        out.sort_unstable_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        out
    }

    /// Every resource entry as `(function, footprint)`, sorted by
    /// function — canonical order, like [`Characterization::sorted_durations`].
    pub fn sorted_resources(&self) -> Vec<(&str, Resources)> {
        let mut out: Vec<(&str, Resources)> = self
            .resources
            .iter()
            .map(|(f, &r)| (f.as_str(), r))
            .collect();
        out.sort_unstable_by_key(|e| e.0);
        out
    }

    /// Every reconfiguration-time entry as `(operator, function, time)`
    /// — defaults first with an empty function name, then overrides —
    /// sorted canonically.
    pub fn sorted_reconfig(&self) -> Vec<(&str, &str, TimePs)> {
        let mut out: Vec<(&str, &str, TimePs)> = self
            .reconfig_default
            .iter()
            .map(|(o, &t)| (o.as_str(), "", t))
            .collect();
        out.extend(
            self.reconfig_override
                .iter()
                .flat_map(|(f, ops)| ops.iter().map(move |(o, &t)| (o.as_str(), f.as_str(), t))),
        );
        out.sort_unstable_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::architecture::OperatorKind;

    fn chars() -> Characterization {
        let mut c = Characterization::new();
        c.set_duration("fft", "fpga_static", TimePs::from_us(10))
            .set_duration("fft", "dsp", TimePs::from_us(80))
            .set_duration("mod_qpsk", "op_dyn", TimePs::from_us(2))
            .set_resources("fft", Resources::logic(400, 700, 650))
            .set_reconfig_default("op_dyn", TimePs::from_ms(4))
            .set_reconfig_override("mod_qpsk", "op_dyn", TimePs::from_ms(3));
        c
    }

    #[test]
    fn duration_lookup_and_feasibility() {
        let c = chars();
        assert_eq!(c.duration("fft", "dsp"), Some(TimePs::from_us(80)));
        assert_eq!(c.duration("fft", "op_dyn"), None);
        assert!(c.feasible("fft", "fpga_static"));
        assert!(!c.feasible("viterbi", "dsp"));
        assert_eq!(c.feasible_operators("fft"), ["dsp", "fpga_static"]);
        assert!(c.feasible_operators("nothing").is_empty());
    }

    #[test]
    fn duration_on_errors_when_missing() {
        let c = chars();
        let mut a = ArchGraph::new("t");
        let dsp = a.add_operator("dsp", OperatorKind::Processor).unwrap();
        assert!(c.duration_on("fft", &a, dsp).is_ok());
        let err = c.duration_on("viterbi", &a, dsp).unwrap_err();
        assert!(err.to_string().contains("viterbi"));
    }

    #[test]
    fn resources_default_to_zero() {
        let c = chars();
        assert_eq!(c.resources("fft").slices, 400);
        assert!(c.resources("software_thing").is_zero());
    }

    #[test]
    fn reconfig_override_beats_default() {
        let c = chars();
        assert_eq!(
            c.reconfig_time("mod_qpsk", "op_dyn").unwrap(),
            TimePs::from_ms(3)
        );
        assert_eq!(
            c.reconfig_time("mod_qam16", "op_dyn").unwrap(),
            TimePs::from_ms(4)
        );
        assert!(c.reconfig_time("anything", "unknown_region").is_err());
    }

    #[test]
    fn entries_counted() {
        assert_eq!(chars().duration_entries(), 3);
    }
}
