//! Hierarchical algorithm graphs: SynDEx-style refinement.
//!
//! SynDEx specifications are hierarchical — a vertex can stand for a whole
//! sub-graph that is flattened ("refined") before adequation.
//! [`inline_subgraph`] implements that refinement: a `Compute` vertex is
//! replaced by a copy of another graph, the vertex's incoming edges
//! re-attached to the sub-graph's sources' successors and its outgoing
//! edges to the sub-graph's sinks' predecessors. Names are prefixed with
//! the refined vertex's name to stay unique.

use crate::algorithm::{AlgorithmGraph, OpId, OpKind};
use crate::error::GraphError;
use std::collections::HashMap;

/// Replace the `Compute` vertex `target` of `outer` with a flattened copy
/// of `inner`. `inner`'s sources/sinks mark its interface: every edge that
/// entered `target` is connected to the successors of `inner`'s sources
/// (with the inner edge widths), and every edge that left `target` is fed
/// from the predecessors of `inner`'s sinks. Returns the new graph.
///
/// Requirements (checked):
/// * `target` is a `Compute` vertex of `outer`;
/// * `inner` validates and has ≥ 1 source and ≥ 1 sink;
/// * the number of `target`'s in-edges equals `inner`'s source count, and
///   out-edges its sink count (interfaces are matched in insertion order).
pub fn inline_subgraph(
    outer: &AlgorithmGraph,
    target: OpId,
    inner: &AlgorithmGraph,
) -> Result<AlgorithmGraph, GraphError> {
    inner.validate()?;
    let target_op = outer.op(target);
    if !matches!(target_op.kind, OpKind::Compute { .. }) {
        return Err(GraphError::Structural(format!(
            "refinement target `{}` must be a Compute vertex",
            target_op.name
        )));
    }
    let sources: Vec<OpId> = inner
        .ops()
        .filter(|(_, o)| matches!(o.kind, OpKind::Source))
        .map(|(id, _)| id)
        .collect();
    let sinks: Vec<OpId> = inner
        .ops()
        .filter(|(_, o)| matches!(o.kind, OpKind::Sink))
        .map(|(id, _)| id)
        .collect();
    let in_edges: Vec<_> = outer.in_edges(target).cloned().collect();
    let out_edges: Vec<_> = outer.out_edges(target).cloned().collect();
    if in_edges.len() != sources.len() {
        return Err(GraphError::Structural(format!(
            "`{}` has {} inputs but the sub-graph has {} sources",
            target_op.name,
            in_edges.len(),
            sources.len()
        )));
    }
    if out_edges.len() != sinks.len() {
        return Err(GraphError::Structural(format!(
            "`{}` has {} outputs but the sub-graph has {} sinks",
            target_op.name,
            out_edges.len(),
            sinks.len()
        )));
    }

    let prefix = &target_op.name;
    let mut result = AlgorithmGraph::new(outer.name.clone());
    // Copy outer vertices except the target.
    let mut outer_map: HashMap<OpId, OpId> = HashMap::new();
    for (id, op) in outer.ops() {
        if id == target {
            continue;
        }
        let new = result.add_op(op.name.clone(), op.kind.clone())?;
        outer_map.insert(id, new);
    }
    // Copy inner vertices except its sources/sinks, prefixed.
    let mut inner_map: HashMap<OpId, OpId> = HashMap::new();
    for (id, op) in inner.ops() {
        if matches!(op.kind, OpKind::Source | OpKind::Sink) {
            continue;
        }
        let new = result.add_op(format!("{prefix}.{}", op.name), op.kind.clone())?;
        inner_map.insert(id, new);
    }
    // Outer edges not touching the target.
    for e in outer.edges() {
        if e.from == target || e.to == target {
            continue;
        }
        result.connect(outer_map[&e.from], outer_map[&e.to], e.bits)?;
    }
    // Inner edges not touching sources/sinks.
    for e in inner.edges() {
        let from_iface = sources.contains(&e.from);
        let to_iface = sinks.contains(&e.to);
        if !from_iface && !to_iface {
            result.connect(inner_map[&e.from], inner_map[&e.to], e.bits)?;
        }
    }
    // Stitch the boundary: outer in-edge k feeds everything inner source k
    // fed (at the *outer* edge's width into the first hop).
    for (outer_e, &src) in in_edges.iter().zip(&sources) {
        for inner_e in inner.out_edges(src) {
            result.connect(
                outer_map[&outer_e.from],
                inner_map[&inner_e.to],
                outer_e.bits,
            )?;
        }
    }
    // Outer out-edge k is driven by everything that fed inner sink k.
    for (outer_e, &snk) in out_edges.iter().zip(&sinks) {
        for inner_e in inner.in_edges(snk) {
            result.connect(
                inner_map[&inner_e.from],
                outer_map[&outer_e.to],
                outer_e.bits,
            )?;
        }
    }
    result.validate()?;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// outer: src -> stage -> sink.
    fn outer() -> (AlgorithmGraph, OpId) {
        let mut g = AlgorithmGraph::new("outer");
        let s = g.add_op("src", OpKind::Source).unwrap();
        let stage = g.add_compute("stage").unwrap();
        let k = g.add_op("sink", OpKind::Sink).unwrap();
        g.connect(s, stage, 128).unwrap();
        g.connect(stage, k, 64).unwrap();
        (g, stage)
    }

    /// inner: in -> a -> b -> out (a chain refinement of `stage`).
    fn inner_chain() -> AlgorithmGraph {
        let mut g = AlgorithmGraph::new("inner");
        let i = g.add_op("in", OpKind::Source).unwrap();
        let a = g.add_compute("a").unwrap();
        let b = g.add_compute("b").unwrap();
        let o = g.add_op("out", OpKind::Sink).unwrap();
        g.connect(i, a, 128).unwrap();
        g.connect(a, b, 96).unwrap();
        g.connect(b, o, 64).unwrap();
        g
    }

    #[test]
    fn chain_refinement_flattens() {
        let (g, stage) = outer();
        let flat = inline_subgraph(&g, stage, &inner_chain()).unwrap();
        flat.validate().unwrap();
        // src, sink, stage.a, stage.b
        assert_eq!(flat.len(), 4);
        assert!(flat.by_name("stage").is_none());
        let a = flat.by_name("stage.a").unwrap();
        let b = flat.by_name("stage.b").unwrap();
        let src = flat.by_name("src").unwrap();
        let sink = flat.by_name("sink").unwrap();
        assert_eq!(flat.successors(src), vec![a]);
        assert_eq!(flat.successors(a), vec![b]);
        assert_eq!(flat.successors(b), vec![sink]);
        // Boundary widths come from the outer edges; interior from inner.
        assert!(flat
            .edges()
            .iter()
            .any(|e| e.from == src && e.to == a && e.bits == 128));
        assert!(flat
            .edges()
            .iter()
            .any(|e| e.from == a && e.to == b && e.bits == 96));
        assert!(flat
            .edges()
            .iter()
            .any(|e| e.from == b && e.to == sink && e.bits == 64));
    }

    #[test]
    fn refined_graph_still_adequates() {
        use pdr_fabric::TimePs;
        let (g, stage) = outer();
        let flat = inline_subgraph(&g, stage, &inner_chain()).unwrap();
        let mut arch = crate::ArchGraph::new("mono");
        arch.add_operator("cpu", crate::OperatorKind::Processor)
            .unwrap();
        let mut chars = crate::Characterization::new();
        chars.set_duration("a", "cpu", TimePs::from_us(5));
        chars.set_duration("b", "cpu", TimePs::from_us(7));
        // The refined vertices keep their inner function symbols.
        let a = flat.by_name("stage.a").unwrap();
        assert_eq!(flat.op(a).kind.functions(), ["a".to_string()]);
        // (Adequation itself is exercised in pdr-adequation; here we only
        // assert the refined graph is well-formed input for it.)
        assert!(flat.topo_order().is_ok());
        assert_eq!(chars.feasible_operators("a"), ["cpu"]);
    }

    #[test]
    fn interface_arity_mismatch_rejected() {
        let (g, stage) = outer();
        // Inner with two sources cannot replace a 1-input vertex.
        let mut inner = AlgorithmGraph::new("two_in");
        let i1 = inner.add_op("in1", OpKind::Source).unwrap();
        let i2 = inner.add_op("in2", OpKind::Source).unwrap();
        let a = inner.add_compute("a").unwrap();
        let o = inner.add_op("out", OpKind::Sink).unwrap();
        inner.connect(i1, a, 8).unwrap();
        inner.connect(i2, a, 8).unwrap();
        inner.connect(a, o, 8).unwrap();
        let err = inline_subgraph(&g, stage, &inner).unwrap_err();
        assert!(err.to_string().contains("sources"));
    }

    #[test]
    fn non_compute_target_rejected() {
        let (g, _) = outer();
        let src = g.by_name("src").unwrap();
        let err = inline_subgraph(&g, src, &inner_chain()).unwrap_err();
        assert!(err.to_string().contains("Compute"));
    }

    #[test]
    fn conditioned_vertices_survive_refinement() {
        // A sub-graph containing a conditioned vertex keeps it intact.
        let (g, stage) = outer();
        let mut inner = AlgorithmGraph::new("cond_inner");
        let i = inner.add_op("in", OpKind::Source).unwrap();
        let c = inner
            .add_op(
                "cond",
                OpKind::Conditioned {
                    alternatives: vec!["x".into(), "y".into()],
                },
            )
            .unwrap();
        let o = inner.add_op("out", OpKind::Sink).unwrap();
        inner.connect(i, c, 8).unwrap();
        inner.connect(c, o, 8).unwrap();
        let flat = inline_subgraph(&g, stage, &inner).unwrap();
        let c2 = flat.by_name("stage.cond").unwrap();
        assert!(flat.op(c2).kind.is_conditioned());
        // Note: a conditioned vertex refined this way has no selector edge
        // from outer; validation treats the boundary edge as its input.
        assert_eq!(flat.conditioned_ops(), vec![c2]);
    }

    #[test]
    fn nested_refinement_composes() {
        // Refine, then refine one of the inner vertices again.
        let (g, stage) = outer();
        let flat = inline_subgraph(&g, stage, &inner_chain()).unwrap();
        let a = flat.by_name("stage.a").unwrap();
        let flat2 = inline_subgraph(&flat, a, &inner_chain()).unwrap();
        flat2.validate().unwrap();
        assert!(flat2.by_name("stage.a.a").is_some());
        assert!(flat2.by_name("stage.a.b").is_some());
        assert!(flat2.by_name("stage.b").is_some());
        assert_eq!(flat2.len(), 5);
    }
}
