//! Graphviz (DOT) export of algorithm and architecture graphs.
//!
//! The paper's Figures 1 and 4 are graph drawings; these exporters produce
//! the same drawings from the live models (`dot -Tpdf` renders them).
//! Conditioned operations are drawn as double octagons listing their
//! alternatives; dynamic operators as dashed boxes; media as ellipses.

use crate::algorithm::{AlgorithmGraph, OpKind};
use crate::architecture::{ArchGraph, MediumKind, OperatorKind};
use std::fmt::Write as _;

/// Render an algorithm graph as DOT.
pub fn algorithm_to_dot(g: &AlgorithmGraph) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", g.name);
    let _ = writeln!(s, "  rankdir=LR;");
    let _ = writeln!(s, "  node [fontname=\"Helvetica\"];");
    for (id, op) in g.ops() {
        let (shape, extra) = match &op.kind {
            OpKind::Source => ("invhouse", String::new()),
            OpKind::Sink => ("house", String::new()),
            OpKind::Compute { function } => ("box", format!("\\n[{function}]")),
            OpKind::Conditioned { alternatives } => (
                "doubleoctagon",
                format!("\\n[{}]", alternatives.join(" | ")),
            ),
        };
        let _ = writeln!(
            s,
            "  n{} [label=\"{}{extra}\", shape={shape}];",
            id.0, op.name
        );
    }
    for e in g.edges() {
        let _ = writeln!(s, "  n{} -> n{} [label=\"{}b\"];", e.from.0, e.to.0, e.bits);
    }
    let _ = writeln!(s, "}}");
    s
}

/// Render an architecture graph as DOT (bipartite operator/medium layout,
/// the paper's Fig. 1 style).
pub fn architecture_to_dot(a: &ArchGraph) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "graph \"{}\" {{", a.name);
    let _ = writeln!(s, "  layout=neato; overlap=false;");
    let _ = writeln!(s, "  node [fontname=\"Helvetica\"];");
    for (id, o) in a.operators() {
        let style = match &o.kind {
            OperatorKind::Processor => "shape=box3d",
            OperatorKind::FpgaStatic => "shape=box",
            OperatorKind::FpgaDynamic { .. } => "shape=box, style=dashed",
        };
        let kind = match &o.kind {
            OperatorKind::Processor => "processor".to_string(),
            OperatorKind::FpgaStatic => "FPGA static".to_string(),
            OperatorKind::FpgaDynamic { host } => format!("dynamic @ {host}"),
        };
        let _ = writeln!(s, "  o{} [label=\"{}\\n({kind})\", {style}];", id.0, o.name);
    }
    for (id, m) in a.media() {
        let kind = match m.kind {
            MediumKind::Bus => "bus",
            MediumKind::InternalLink => "internal link",
        };
        let _ = writeln!(
            s,
            "  m{} [label=\"{}\\n({kind}, {} Mb/s)\", shape=ellipse];",
            id.0,
            m.name,
            m.bits_per_sec / 1_000_000
        );
        for op in a.operators_on(id) {
            let _ = writeln!(s, "  o{} -- m{};", op.0, id.0);
        }
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn mccdma_algorithm_renders() {
        let dot = algorithm_to_dot(&paper::mccdma_algorithm());
        assert!(dot.starts_with("digraph \"mccdma_tx\""));
        assert!(dot.contains("doubleoctagon"));
        assert!(dot.contains("mod_qpsk | mod_qam16"));
        assert!(dot.contains("invhouse")); // sources
        assert!(dot.contains("house")); // sink
        assert!(dot.contains("->"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn sundance_architecture_renders() {
        let dot = architecture_to_dot(&paper::sundance_architecture());
        assert!(dot.starts_with("graph \"sundance_c6201_xc2v2000\""));
        assert!(dot.contains("box3d")); // DSP
        assert!(dot.contains("style=dashed")); // dynamic region
        assert!(dot.contains("internal link"));
        assert!(dot.contains(" -- "));
        // Every operator-medium link appears: dsp-shb, fs-shb, fs-lio, dyn-lio.
        assert_eq!(dot.matches(" -- ").count(), 4);
    }

    #[test]
    fn fig1_renders_two_dynamic_parts() {
        let dot = architecture_to_dot(&paper::fig1_architecture());
        assert_eq!(dot.matches("style=dashed").count(), 2);
    }

    #[test]
    fn edge_labels_carry_bit_widths() {
        let dot = algorithm_to_dot(&paper::mccdma_algorithm());
        assert!(dot.contains("label=\"2b\"")); // the Select control edge
    }
}
