//! Algorithm data-flow graphs.
//!
//! §3 of the paper: *"Application algorithm is represented by a data flow
//! graph to exhibit the potential parallelism between operations. An
//! operation is executed as soon as its inputs are available, and is
//! infinitely repeated."*
//!
//! One [`AlgorithmGraph`] describes a single iteration of that infinite
//! repetition: a DAG of [`Operation`]s connected by [`DataEdge`]s carrying a
//! known number of bits. The paper's conditioned blocks (the adaptive
//! `modulation` operation, selected by `Select` per OFDM symbol) are modeled
//! by [`OpKind::Conditioned`], a vertex with several named *alternatives* —
//! each alternative being a distinct hardware configuration of whichever
//! dynamic operator the vertex is mapped onto.

use crate::error::GraphError;
use pdr_ir::SymbolTable;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// Index of an operation within its [`AlgorithmGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpId(pub usize);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// What an operation vertex is.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpKind {
    /// External input of the iteration (sensor, host interface). Produces
    /// data, consumes none.
    Source,
    /// External output of the iteration. Consumes data, produces none.
    Sink,
    /// Ordinary computation implementing the named function.
    Compute {
        /// Function symbol looked up in the characterization tables.
        function: String,
    },
    /// A conditioned computation with several alternative implementations;
    /// exactly one is active per iteration, selected by the value arriving
    /// on the control input (which is an ordinary data edge from the
    /// selector operation).
    Conditioned {
        /// Alternative function symbols, in selector-value order: the
        /// selector value `k` activates `alternatives[k]`.
        alternatives: Vec<String>,
    },
}

impl OpKind {
    /// Function symbols this vertex may execute (one for `Compute`, several
    /// for `Conditioned`, none for sources/sinks).
    pub fn functions(&self) -> &[String] {
        match self {
            OpKind::Compute { function } => std::slice::from_ref(function),
            OpKind::Conditioned { alternatives } => alternatives,
            _ => &[],
        }
    }

    /// Is this a conditioned (multi-alternative) vertex?
    pub fn is_conditioned(&self) -> bool {
        matches!(self, OpKind::Conditioned { .. })
    }
}

/// One vertex of the algorithm graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Operation {
    /// Unique name within the graph.
    pub name: String,
    /// Vertex kind.
    pub kind: OpKind,
}

/// A data dependency: `bits` flow from `from` to `to` each iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataEdge {
    /// Producer operation.
    pub from: OpId,
    /// Consumer operation.
    pub to: OpId,
    /// Payload width in bits per iteration.
    pub bits: u64,
}

/// A single-iteration data-flow graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlgorithmGraph {
    /// Graph name (application name).
    pub name: String,
    ops: Vec<Operation>,
    edges: Vec<DataEdge>,
    by_name: HashMap<String, OpId>,
    /// Interner holding every operation and function-symbol name,
    /// populated at construction for allocation-free lowering.
    symbols: SymbolTable,
    /// CSR-style adjacency: per operation, the indices into `edges` of its
    /// incoming edges, in insertion order. Maintained incrementally by
    /// [`AlgorithmGraph::connect`] so neighbourhood queries are O(degree)
    /// instead of O(E) filter scans.
    in_adj: Vec<Vec<u32>>,
    /// Per operation, the indices into `edges` of its outgoing edges, in
    /// insertion order (see `in_adj`).
    out_adj: Vec<Vec<u32>>,
}

impl AlgorithmGraph {
    /// Create an empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        AlgorithmGraph {
            name: name.into(),
            ops: Vec::new(),
            edges: Vec::new(),
            by_name: HashMap::new(),
            symbols: SymbolTable::new(),
            in_adj: Vec::new(),
            out_adj: Vec::new(),
        }
    }

    /// Add an operation; names must be unique.
    pub fn add_op(&mut self, name: impl Into<String>, kind: OpKind) -> Result<OpId, GraphError> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(GraphError::DuplicateName(name));
        }
        if let OpKind::Conditioned { alternatives } = &kind {
            if alternatives.len() < 2 {
                return Err(GraphError::Structural(format!(
                    "conditioned operation `{name}` needs ≥ 2 alternatives"
                )));
            }
            let uniq: HashSet<_> = alternatives.iter().collect();
            if uniq.len() != alternatives.len() {
                return Err(GraphError::Structural(format!(
                    "conditioned operation `{name}` has duplicate alternatives"
                )));
            }
        }
        let id = OpId(self.ops.len());
        self.by_name.insert(name.clone(), id);
        self.symbols.intern(&name);
        for f in kind.functions() {
            self.symbols.intern(f);
        }
        self.ops.push(Operation { name, kind });
        self.in_adj.push(Vec::new());
        self.out_adj.push(Vec::new());
        Ok(id)
    }

    /// The interner holding every operation and function-symbol name.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Interned name of an operation.
    pub fn op_sym(&self, id: OpId) -> pdr_ir::OpId {
        let sym = self
            .symbols
            .lookup(&self.ops[id.0].name)
            .expect("operation names are interned at construction");
        pdr_ir::OpId::new(sym)
    }

    /// Shorthand: add a `Compute` vertex whose function symbol equals its name.
    pub fn add_compute(&mut self, name: &str) -> Result<OpId, GraphError> {
        self.add_op(
            name,
            OpKind::Compute {
                function: name.to_string(),
            },
        )
    }

    /// Add a data edge of `bits` bits per iteration.
    pub fn connect(&mut self, from: OpId, to: OpId, bits: u64) -> Result<(), GraphError> {
        self.check_id(from)?;
        self.check_id(to)?;
        if bits == 0 {
            return Err(GraphError::Structural(format!(
                "edge {} -> {} has zero width",
                self.op(from).name,
                self.op(to).name
            )));
        }
        if from == to {
            return Err(GraphError::Structural(format!(
                "self-loop on `{}`",
                self.op(from).name
            )));
        }
        let idx = self.edges.len() as u32;
        self.edges.push(DataEdge { from, to, bits });
        self.out_adj[from.0].push(idx);
        self.in_adj[to.0].push(idx);
        Ok(())
    }

    fn check_id(&self, id: OpId) -> Result<(), GraphError> {
        if id.0 >= self.ops.len() {
            return Err(GraphError::UnknownVertex(id.to_string()));
        }
        Ok(())
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the graph has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Operation accessor.
    ///
    /// # Panics
    /// Panics if `id` is out of range (ids are only minted by this graph).
    pub fn op(&self, id: OpId) -> &Operation {
        &self.ops[id.0]
    }

    /// Look an operation up by name.
    pub fn by_name(&self, name: &str) -> Option<OpId> {
        self.by_name.get(name).copied()
    }

    /// All operations with their ids.
    pub fn ops(&self) -> impl Iterator<Item = (OpId, &Operation)> {
        self.ops.iter().enumerate().map(|(i, o)| (OpId(i), o))
    }

    /// All edges.
    pub fn edges(&self) -> &[DataEdge] {
        &self.edges
    }

    /// Edges into `id`, in insertion order. O(in-degree).
    pub fn in_edges(&self, id: OpId) -> impl Iterator<Item = &DataEdge> {
        self.in_adj[id.0].iter().map(|&i| &self.edges[i as usize])
    }

    /// Edges out of `id`, in insertion order. O(out-degree).
    pub fn out_edges(&self, id: OpId) -> impl Iterator<Item = &DataEdge> {
        self.out_adj[id.0].iter().map(|&i| &self.edges[i as usize])
    }

    /// In-degree of `id` without touching the edge list.
    pub fn in_degree(&self, id: OpId) -> usize {
        self.in_adj[id.0].len()
    }

    /// Out-degree of `id` without touching the edge list.
    pub fn out_degree(&self, id: OpId) -> usize {
        self.out_adj[id.0].len()
    }

    /// Direct predecessors of `id`.
    pub fn predecessors(&self, id: OpId) -> Vec<OpId> {
        self.in_edges(id).map(|e| e.from).collect()
    }

    /// Direct successors of `id`.
    pub fn successors(&self, id: OpId) -> Vec<OpId> {
        self.out_edges(id).map(|e| e.to).collect()
    }

    /// Validate the graph:
    /// * acyclic (a single iteration must be a DAG),
    /// * sources have no inputs, sinks no outputs,
    /// * every non-source has at least one input and every non-sink at least
    ///   one output (the data-flow semantics leave no dangling vertices),
    /// * conditioned operations have a control input (some predecessor).
    pub fn validate(&self) -> Result<(), GraphError> {
        self.topo_order()?;
        for (id, op) in self.ops() {
            let ins = self.in_edges(id).count();
            let outs = self.out_edges(id).count();
            match &op.kind {
                OpKind::Source => {
                    if ins != 0 {
                        return Err(GraphError::Structural(format!(
                            "source `{}` has {ins} input(s)",
                            op.name
                        )));
                    }
                    if outs == 0 {
                        return Err(GraphError::Structural(format!(
                            "source `{}` feeds nothing",
                            op.name
                        )));
                    }
                }
                OpKind::Sink => {
                    if outs != 0 {
                        return Err(GraphError::Structural(format!(
                            "sink `{}` has {outs} output(s)",
                            op.name
                        )));
                    }
                    if ins == 0 {
                        return Err(GraphError::Structural(format!(
                            "sink `{}` receives nothing",
                            op.name
                        )));
                    }
                }
                OpKind::Compute { .. } | OpKind::Conditioned { .. } => {
                    if ins == 0 || outs == 0 {
                        return Err(GraphError::Structural(format!(
                            "operation `{}` must have inputs and outputs (has {ins} in, {outs} out)",
                            op.name
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// A topological order of the operations, or the cycle error.
    /// Deterministic: ties broken by insertion order. O(V + E) via the
    /// incremental adjacency (the seed rescanned the whole edge list once
    /// per popped vertex).
    pub fn topo_order(&self) -> Result<Vec<OpId>, GraphError> {
        let n = self.ops.len();
        let mut indegree: Vec<usize> = self.in_adj.iter().map(Vec::len).collect();
        let mut queue: VecDeque<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop_front() {
            order.push(OpId(i));
            for &ei in &self.out_adj[i] {
                let t = self.edges[ei as usize].to.0;
                indegree[t] -= 1;
                if indegree[t] == 0 {
                    queue.push_back(t);
                }
            }
        }
        if order.len() != n {
            let stuck = (0..n)
                .find(|&i| indegree[i] > 0)
                .map(|i| self.ops[i].name.clone())
                .unwrap_or_default();
            return Err(GraphError::Cycle { involving: stuck });
        }
        Ok(order)
    }

    /// Total bits crossing the cut between two disjoint operation sets
    /// (used by mapping heuristics to weigh inter-operator traffic).
    pub fn cut_bits(&self, a: &HashSet<OpId>, b: &HashSet<OpId>) -> u64 {
        self.edges
            .iter()
            .filter(|e| {
                (a.contains(&e.from) && b.contains(&e.to))
                    || (b.contains(&e.from) && a.contains(&e.to))
            })
            .map(|e| e.bits)
            .sum()
    }

    /// The conditioned operations of the graph (the dynamic-implementation
    /// candidates of §4).
    pub fn conditioned_ops(&self) -> Vec<OpId> {
        self.ops()
            .filter(|(_, o)| o.kind.is_conditioned())
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// source -> a -> cond(x|y) -> sink, with sel -> cond control edge.
    fn small() -> (AlgorithmGraph, OpId, OpId, OpId, OpId, OpId) {
        let mut g = AlgorithmGraph::new("t");
        let src = g.add_op("src", OpKind::Source).unwrap();
        let sel = g.add_op("sel", OpKind::Source).unwrap();
        let a = g.add_compute("a").unwrap();
        let cond = g
            .add_op(
                "cond",
                OpKind::Conditioned {
                    alternatives: vec!["x".into(), "y".into()],
                },
            )
            .unwrap();
        let sink = g.add_op("sink", OpKind::Sink).unwrap();
        g.connect(src, a, 32).unwrap();
        g.connect(a, cond, 64).unwrap();
        g.connect(sel, cond, 2).unwrap();
        g.connect(cond, sink, 64).unwrap();
        (g, src, sel, a, cond, sink)
    }

    #[test]
    fn build_and_validate() {
        let (g, ..) = small();
        g.validate().unwrap();
        assert_eq!(g.len(), 5);
        assert_eq!(g.edges().len(), 4);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut g = AlgorithmGraph::new("t");
        g.add_compute("a").unwrap();
        // add_compute("a") must fail even with a different kind.
        assert!(matches!(
            g.add_op("a", OpKind::Source),
            Err(GraphError::DuplicateName(_))
        ));
    }

    #[test]
    fn zero_width_and_self_loop_rejected() {
        let mut g = AlgorithmGraph::new("t");
        let a = g.add_compute("a").unwrap();
        let b = g.add_compute("b").unwrap();
        assert!(g.connect(a, b, 0).is_err());
        assert!(g.connect(a, a, 8).is_err());
    }

    #[test]
    fn cycle_detected() {
        let mut g = AlgorithmGraph::new("t");
        let a = g.add_compute("a").unwrap();
        let b = g.add_compute("b").unwrap();
        g.connect(a, b, 8).unwrap();
        g.connect(b, a, 8).unwrap();
        assert!(matches!(g.topo_order(), Err(GraphError::Cycle { .. })));
    }

    #[test]
    fn topo_order_respects_edges() {
        let (g, ..) = small();
        let order = g.topo_order().unwrap();
        let pos: HashMap<OpId, usize> = order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        for e in g.edges() {
            assert!(pos[&e.from] < pos[&e.to]);
        }
    }

    #[test]
    fn source_with_input_rejected() {
        let mut g = AlgorithmGraph::new("t");
        let a = g.add_compute("a").unwrap();
        let s = g.add_op("s", OpKind::Source).unwrap();
        let k = g.add_op("k", OpKind::Sink).unwrap();
        g.connect(a, s, 8).unwrap();
        g.connect(s, k, 8).unwrap();
        assert!(g.validate().is_err());
    }

    #[test]
    fn dangling_compute_rejected() {
        let mut g = AlgorithmGraph::new("t");
        let s = g.add_op("s", OpKind::Source).unwrap();
        let a = g.add_compute("a").unwrap();
        let _lonely = g.add_compute("lonely").unwrap();
        let k = g.add_op("k", OpKind::Sink).unwrap();
        g.connect(s, a, 8).unwrap();
        g.connect(a, k, 8).unwrap();
        let err = g.validate().unwrap_err();
        assert!(err.to_string().contains("lonely"));
    }

    #[test]
    fn conditioned_needs_two_distinct_alternatives() {
        let mut g = AlgorithmGraph::new("t");
        assert!(g
            .add_op(
                "c1",
                OpKind::Conditioned {
                    alternatives: vec!["only".into()]
                }
            )
            .is_err());
        assert!(g
            .add_op(
                "c2",
                OpKind::Conditioned {
                    alternatives: vec!["x".into(), "x".into()]
                }
            )
            .is_err());
    }

    #[test]
    fn conditioned_ops_found() {
        let (g, _, _, _, cond, _) = small();
        assert_eq!(g.conditioned_ops(), vec![cond]);
    }

    #[test]
    fn neighbors() {
        let (g, src, sel, a, cond, sink) = small();
        assert_eq!(g.successors(src), vec![a]);
        let mut preds = g.predecessors(cond);
        preds.sort();
        let mut expect = vec![a, sel];
        expect.sort();
        assert_eq!(preds, expect);
        assert_eq!(g.predecessors(sink), vec![cond]);
    }

    #[test]
    fn cut_bits_counts_both_directions() {
        let (g, src, sel, a, cond, sink) = small();
        let left: HashSet<OpId> = [src, sel, a].into_iter().collect();
        let right: HashSet<OpId> = [cond, sink].into_iter().collect();
        // a->cond (64) + sel->cond (2).
        assert_eq!(g.cut_bits(&left, &right), 66);
        assert_eq!(g.cut_bits(&right, &left), 66);
    }

    #[test]
    fn functions_listing() {
        let (g, _, _, a, cond, _) = small();
        assert_eq!(g.op(a).kind.functions(), ["a".to_string()]);
        assert_eq!(
            g.op(cond).kind.functions(),
            ["x".to_string(), "y".to_string()]
        );
        assert!(g.op(OpId(0)).kind.functions().is_empty());
    }

    #[test]
    fn by_name_lookup() {
        let (g, src, ..) = small();
        assert_eq!(g.by_name("src"), Some(src));
        assert_eq!(g.by_name("nope"), None);
    }

    #[test]
    fn operation_and_function_names_interned() {
        let (g, src, _, _, cond, _) = small();
        assert_eq!(g.op_sym(src).resolve(g.symbols()), "src");
        assert_eq!(g.op_sym(cond).resolve(g.symbols()), "cond");
        // Conditioned alternatives are interned as module names too.
        assert!(g.symbols().lookup("x").is_some());
        assert!(g.symbols().lookup("y").is_some());
    }
}
