//! # pdr-graph — AAA (Adequation Algorithm Architecture) front-end
//!
//! The paper's methodology starts from two graphs, in the style of the
//! SynDEx tool:
//!
//! * an **algorithm graph** ([`algorithm`]): a data-flow graph of operations
//!   and typed data dependencies, executed "as soon as inputs are available,
//!   and infinitely repeated" (§3). Conditioned operations — the paper's
//!   adaptive `modulation` block selected by the `Select` entry — are
//!   first-class: one vertex with several *alternative* implementations, of
//!   which exactly one is active per iteration.
//! * an **architecture graph** ([`architecture`]): operator vertices
//!   (DSPs, the FPGA static part, FPGA *dynamic* parts) and media vertices
//!   (board buses, the internal link between static and dynamic parts),
//!   exactly the Fig. 1 model where runtime-reconfigurable parts of a
//!   component appear as hardware operators of their own.
//!
//! Between them sit:
//!
//! * **characterization** tables ([`characterization`]): durations of each
//!   (operation, operator) pair, transfer costs per medium, per-alternative
//!   resource footprints and reconfiguration times — the metrics §3 lists as
//!   partitioning guides;
//! * the **constraints file** ([`constraints`]): per-dynamic-module loading /
//!   unloading / area-sharing / exclusion constraints (§4), with a plain-text
//!   round-trippable format;
//! * [`paper`]: ready-made builders for the paper's Fig. 1 architecture and
//!   the Fig. 4 MC-CDMA transmitter graphs, used by tests, examples and the
//!   experiment harness.
//!
//! ## Example: the Fig. 1 model in five lines
//!
//! ```
//! use pdr_graph::prelude::*;
//! use pdr_fabric::TimePs;
//!
//! let mut arch = ArchGraph::new("fig1");
//! let f1 = arch.add_operator("F1", OperatorKind::FpgaStatic)?;
//! let d1 = arch.add_operator("D1", OperatorKind::FpgaDynamic { host: "F1".into() })?;
//! let il = arch.add_medium("IL", MediumKind::InternalLink, 800_000_000, TimePs::from_ns(40))?;
//! arch.link(f1, il)?;
//! arch.link(d1, il)?;
//! assert_eq!(arch.route(f1, d1)?.hops(), 1);
//! # Ok::<(), GraphError>(())
//! ```

pub mod algorithm;
pub mod architecture;
pub mod characterization;
pub mod constraints;
pub mod dot;
pub mod error;
pub mod hierarchy;
pub mod paper;

pub use algorithm::{AlgorithmGraph, DataEdge, OpId, OpKind, Operation};
pub use architecture::{
    ArchGraph, Medium, MediumId, MediumKind, Operator, OperatorId, OperatorKind, Route,
};
pub use characterization::Characterization;
pub use constraints::{ConstraintsFile, LoadPolicy, ModuleConstraints, UnloadPolicy};
pub use error::GraphError;
pub use hierarchy::inline_subgraph;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::algorithm::{AlgorithmGraph, DataEdge, OpId, OpKind, Operation};
    pub use crate::architecture::{
        ArchGraph, Medium, MediumId, MediumKind, Operator, OperatorId, OperatorKind, Route,
    };
    pub use crate::characterization::Characterization;
    pub use crate::constraints::{ConstraintsFile, LoadPolicy, ModuleConstraints, UnloadPolicy};
    pub use crate::error::GraphError;
}
