//! Architecture graphs.
//!
//! §3 of the paper: *"Architecture is also modeled by a graph where the
//! vertices are operators (e.g. processors, DSP, FPGA) or media and edges
//! are connections between them. Operators have no internal parallelism
//! computation available but the architecture exhibits the potential
//! parallelism."*
//!
//! §4 adds the reconfiguration extension (Fig. 1): *runtime-reconfigurable
//! parts of a component must be considered as vertices in the architecture
//! graph* — so an FPGA contributes one `FpgaStatic` operator plus one
//! `FpgaDynamic` operator per reconfigurable region, linked by an internal
//! medium (`IL`).
//!
//! The graph is bipartite: operators connect only to media and vice versa.
//! [`ArchGraph::route`] finds the cheapest operator→operator path (BFS by
//! hop count, deterministic tie-breaking) which the adequation uses to cost
//! data transfers.

use crate::error::GraphError;
use pdr_fabric::TimePs;
use pdr_ir::SymbolTable;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Index of an operator vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OperatorId(pub usize);

impl fmt::Display for OperatorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "opr{}", self.0)
    }
}

/// Index of a medium vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MediumId(pub usize);

impl fmt::Display for MediumId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "med{}", self.0)
    }
}

/// What an operator vertex is.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OperatorKind {
    /// A sequential instruction-set processor (the paper's TI C6201 DSP).
    Processor,
    /// The fixed (non-reconfigurable) part of an FPGA.
    FpgaStatic,
    /// A runtime-reconfigurable part of an FPGA. Carries the name of the
    /// hosting static operator so the pair can be floorplanned together.
    FpgaDynamic {
        /// Name of the `FpgaStatic` operator this region lives in.
        host: String,
    },
}

impl OperatorKind {
    /// Is this a runtime-reconfigurable operator?
    pub fn is_dynamic(&self) -> bool {
        matches!(self, OperatorKind::FpgaDynamic { .. })
    }
}

/// An operator vertex.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Operator {
    /// Unique name, e.g. `"dsp"`, `"fpga_static"`, `"op_dyn"`.
    pub name: String,
    /// Kind.
    pub kind: OperatorKind,
}

/// What a medium vertex is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MediumKind {
    /// A board-level bus (the paper's SHB bus between DSP and FPGA).
    Bus,
    /// An on-chip link between static and dynamic parts of one FPGA
    /// (the paper's `IL`, physically the bus macros).
    InternalLink,
}

/// A medium vertex with its transfer characteristics.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Medium {
    /// Unique name.
    pub name: String,
    /// Kind.
    pub kind: MediumKind,
    /// Sustained bandwidth in bits per second.
    pub bits_per_sec: u64,
    /// Fixed per-transfer latency (arbitration, synchronization).
    pub latency: TimePs,
}

impl Medium {
    /// Time to move `bits` across this medium.
    pub fn transfer_time(&self, bits: u64) -> TimePs {
        assert!(
            self.bits_per_sec > 0,
            "medium `{}` has zero bandwidth",
            self.name
        );
        let ps = (bits as u128 * 1_000_000_000_000u128).div_ceil(self.bits_per_sec as u128);
        self.latency + TimePs::from_ps(ps.min(u64::MAX as u128) as u64)
    }
}

/// A route between two operators: the media crossed, in order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// Media along the path (empty when source == destination).
    pub media: Vec<MediumId>,
}

impl Route {
    /// Total time to move `bits` along the route (store-and-forward per hop).
    pub fn transfer_time(&self, arch: &ArchGraph, bits: u64) -> TimePs {
        self.media
            .iter()
            .map(|&m| arch.medium(m).transfer_time(bits))
            .sum()
    }

    /// Hop count.
    pub fn hops(&self) -> usize {
        self.media.len()
    }

    /// Is this the trivial on-operator route?
    pub fn is_local(&self) -> bool {
        self.media.is_empty()
    }
}

/// The bipartite operator/medium architecture graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArchGraph {
    /// Architecture name.
    pub name: String,
    operators: Vec<Operator>,
    media: Vec<Medium>,
    /// Adjacency: operator -> media it is connected to.
    op_links: Vec<Vec<MediumId>>,
    /// Adjacency: medium -> operators connected to it.
    med_links: Vec<Vec<OperatorId>>,
    op_by_name: HashMap<String, OperatorId>,
    med_by_name: HashMap<String, MediumId>,
    /// Interner holding every operator and medium name, populated at
    /// construction so downstream stages can lower to `pdr-ir` handles
    /// without re-hashing strings.
    symbols: SymbolTable,
}

impl ArchGraph {
    /// Create an empty architecture.
    pub fn new(name: impl Into<String>) -> Self {
        ArchGraph {
            name: name.into(),
            operators: Vec::new(),
            media: Vec::new(),
            op_links: Vec::new(),
            med_links: Vec::new(),
            op_by_name: HashMap::new(),
            med_by_name: HashMap::new(),
            symbols: SymbolTable::new(),
        }
    }

    /// Add an operator vertex.
    pub fn add_operator(
        &mut self,
        name: impl Into<String>,
        kind: OperatorKind,
    ) -> Result<OperatorId, GraphError> {
        let name = name.into();
        if self.op_by_name.contains_key(&name) || self.med_by_name.contains_key(&name) {
            return Err(GraphError::DuplicateName(name));
        }
        if let OperatorKind::FpgaDynamic { host } = &kind {
            match self.op_by_name.get(host) {
                Some(&h) if matches!(self.operators[h.0].kind, OperatorKind::FpgaStatic) => {}
                Some(_) => {
                    return Err(GraphError::Structural(format!(
                        "dynamic operator `{name}` host `{host}` is not an FpgaStatic operator"
                    )))
                }
                None => return Err(GraphError::UnknownVertex(host.clone())),
            }
        }
        let id = OperatorId(self.operators.len());
        self.op_by_name.insert(name.clone(), id);
        self.symbols.intern(&name);
        self.operators.push(Operator { name, kind });
        self.op_links.push(Vec::new());
        Ok(id)
    }

    /// Add a medium vertex.
    pub fn add_medium(
        &mut self,
        name: impl Into<String>,
        kind: MediumKind,
        bits_per_sec: u64,
        latency: TimePs,
    ) -> Result<MediumId, GraphError> {
        let name = name.into();
        if self.med_by_name.contains_key(&name) || self.op_by_name.contains_key(&name) {
            return Err(GraphError::DuplicateName(name));
        }
        if bits_per_sec == 0 {
            return Err(GraphError::Structural(format!(
                "medium `{name}` has zero bandwidth"
            )));
        }
        let id = MediumId(self.media.len());
        self.med_by_name.insert(name.clone(), id);
        self.symbols.intern(&name);
        self.media.push(Medium {
            name,
            kind,
            bits_per_sec,
            latency,
        });
        self.med_links.push(Vec::new());
        Ok(id)
    }

    /// Connect an operator to a medium (undirected).
    pub fn link(&mut self, op: OperatorId, med: MediumId) -> Result<(), GraphError> {
        if op.0 >= self.operators.len() {
            return Err(GraphError::UnknownVertex(op.to_string()));
        }
        if med.0 >= self.media.len() {
            return Err(GraphError::UnknownVertex(med.to_string()));
        }
        if !self.op_links[op.0].contains(&med) {
            self.op_links[op.0].push(med);
            self.med_links[med.0].push(op);
        }
        Ok(())
    }

    /// Operator accessor.
    pub fn operator(&self, id: OperatorId) -> &Operator {
        &self.operators[id.0]
    }

    /// Medium accessor.
    pub fn medium(&self, id: MediumId) -> &Medium {
        &self.media[id.0]
    }

    /// The interner holding every operator and medium name of this graph.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Interned name of an operator.
    pub fn operator_sym(&self, id: OperatorId) -> pdr_ir::OperatorId {
        let sym = self
            .symbols
            .lookup(&self.operators[id.0].name)
            .expect("operator names are interned at construction");
        pdr_ir::OperatorId::new(sym)
    }

    /// Interned name of a medium.
    pub fn medium_sym(&self, id: MediumId) -> pdr_ir::MediumId {
        let sym = self
            .symbols
            .lookup(&self.media[id.0].name)
            .expect("medium names are interned at construction");
        pdr_ir::MediumId::new(sym)
    }

    /// Operator lookup by name.
    pub fn operator_by_name(&self, name: &str) -> Option<OperatorId> {
        self.op_by_name.get(name).copied()
    }

    /// Medium lookup by name.
    pub fn medium_by_name(&self, name: &str) -> Option<MediumId> {
        self.med_by_name.get(name).copied()
    }

    /// All operators with ids.
    pub fn operators(&self) -> impl Iterator<Item = (OperatorId, &Operator)> {
        self.operators
            .iter()
            .enumerate()
            .map(|(i, o)| (OperatorId(i), o))
    }

    /// All media with ids.
    pub fn media(&self) -> impl Iterator<Item = (MediumId, &Medium)> {
        self.media.iter().enumerate().map(|(i, m)| (MediumId(i), m))
    }

    /// Number of operators.
    pub fn operator_count(&self) -> usize {
        self.operators.len()
    }

    /// Number of media.
    pub fn medium_count(&self) -> usize {
        self.media.len()
    }

    /// Media connected to an operator.
    pub fn media_of(&self, op: OperatorId) -> &[MediumId] {
        &self.op_links[op.0]
    }

    /// Operators connected to a medium.
    pub fn operators_on(&self, med: MediumId) -> &[OperatorId] {
        &self.med_links[med.0]
    }

    /// The dynamic operators (mapping targets for conditioned operations).
    pub fn dynamic_operators(&self) -> Vec<OperatorId> {
        self.operators()
            .filter(|(_, o)| o.kind.is_dynamic())
            .map(|(id, _)| id)
            .collect()
    }

    /// Cheapest route between two operators (fewest hops; ties broken by
    /// lowest medium index, so results are deterministic). Local routes are
    /// empty. Routes are recomputed on demand; graphs are small.
    pub fn route(&self, from: OperatorId, to: OperatorId) -> Result<Route, GraphError> {
        if from == to {
            return Ok(Route { media: Vec::new() });
        }
        // BFS over operators, remembering the medium used to reach each.
        let mut prev: HashMap<OperatorId, (OperatorId, MediumId)> = HashMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(from);
        'search: while let Some(cur) = queue.pop_front() {
            let mut neighbors: Vec<(MediumId, OperatorId)> = Vec::new();
            for &m in &self.op_links[cur.0] {
                for &o in &self.med_links[m.0] {
                    if o != cur {
                        neighbors.push((m, o));
                    }
                }
            }
            neighbors.sort();
            for (m, o) in neighbors {
                if o != from && !prev.contains_key(&o) {
                    prev.insert(o, (cur, m));
                    if o == to {
                        break 'search;
                    }
                    queue.push_back(o);
                }
            }
        }
        if !prev.contains_key(&to) {
            return Err(GraphError::NoRoute {
                from: self.operator(from).name.clone(),
                to: self.operator(to).name.clone(),
            });
        }
        let mut media = Vec::new();
        let mut cur = to;
        while cur != from {
            let (p, m) = prev[&cur];
            media.push(m);
            cur = p;
        }
        media.reverse();
        Ok(Route { media })
    }

    /// Routes from one operator to *every* operator, indexed by destination
    /// id (`None` when unreachable; entry `from` is the empty local route).
    ///
    /// One full BFS instead of one per destination. The search visits
    /// neighbours in the same sorted order as [`ArchGraph::route`] and the
    /// predecessor of each operator is fixed at first discovery, so every
    /// returned route is *identical* to what the pairwise query yields —
    /// the early exit in `route` never changes which `prev` entries exist
    /// along the shortest path to a given destination.
    pub fn routes_from(&self, from: OperatorId) -> Vec<Option<Route>> {
        let mut prev: HashMap<OperatorId, (OperatorId, MediumId)> = HashMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(from);
        while let Some(cur) = queue.pop_front() {
            let mut neighbors: Vec<(MediumId, OperatorId)> = Vec::new();
            for &m in &self.op_links[cur.0] {
                for &o in &self.med_links[m.0] {
                    if o != cur {
                        neighbors.push((m, o));
                    }
                }
            }
            neighbors.sort();
            for (m, o) in neighbors {
                if o != from && !prev.contains_key(&o) {
                    prev.insert(o, (cur, m));
                    queue.push_back(o);
                }
            }
        }
        (0..self.operators.len())
            .map(|i| {
                let to = OperatorId(i);
                if to == from {
                    return Some(Route { media: Vec::new() });
                }
                prev.contains_key(&to).then(|| {
                    let mut media = Vec::new();
                    let mut cur = to;
                    while cur != from {
                        let (p, m) = prev[&cur];
                        media.push(m);
                        cur = p;
                    }
                    media.reverse();
                    Route { media }
                })
            })
            .collect()
    }

    /// Validate connectivity: every operator can reach every other.
    pub fn validate(&self) -> Result<(), GraphError> {
        for (a, _) in self.operators() {
            for (b, _) in self.operators() {
                if a != b {
                    self.route(a, b)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// dsp --SHB-- fpga_static --IL-- {d1, d2}
    fn fig1_like() -> (ArchGraph, OperatorId, OperatorId, OperatorId, OperatorId) {
        let mut a = ArchGraph::new("fig1");
        let dsp = a.add_operator("dsp", OperatorKind::Processor).unwrap();
        let f1 = a.add_operator("f1", OperatorKind::FpgaStatic).unwrap();
        let d1 = a
            .add_operator("d1", OperatorKind::FpgaDynamic { host: "f1".into() })
            .unwrap();
        let d2 = a
            .add_operator("d2", OperatorKind::FpgaDynamic { host: "f1".into() })
            .unwrap();
        let shb = a
            .add_medium("shb", MediumKind::Bus, 400_000_000, TimePs::from_ns(500))
            .unwrap();
        let il = a
            .add_medium(
                "il",
                MediumKind::InternalLink,
                800_000_000,
                TimePs::from_ns(40),
            )
            .unwrap();
        a.link(dsp, shb).unwrap();
        a.link(f1, shb).unwrap();
        a.link(f1, il).unwrap();
        a.link(d1, il).unwrap();
        a.link(d2, il).unwrap();
        (a, dsp, f1, d1, d2)
    }

    #[test]
    fn build_and_validate() {
        let (a, ..) = fig1_like();
        a.validate().unwrap();
        assert_eq!(a.operator_count(), 4);
        assert_eq!(a.medium_count(), 2);
        assert_eq!(a.dynamic_operators().len(), 2);
    }

    #[test]
    fn dynamic_host_must_exist_and_be_static() {
        let mut a = ArchGraph::new("t");
        assert!(matches!(
            a.add_operator("d", OperatorKind::FpgaDynamic { host: "f".into() }),
            Err(GraphError::UnknownVertex(_))
        ));
        a.add_operator("p", OperatorKind::Processor).unwrap();
        assert!(matches!(
            a.add_operator("d", OperatorKind::FpgaDynamic { host: "p".into() }),
            Err(GraphError::Structural(_))
        ));
    }

    #[test]
    fn duplicate_names_rejected_across_kinds() {
        let mut a = ArchGraph::new("t");
        a.add_operator("x", OperatorKind::Processor).unwrap();
        assert!(a.add_operator("x", OperatorKind::FpgaStatic).is_err());
        assert!(a.add_medium("x", MediumKind::Bus, 1, TimePs::ZERO).is_err());
        a.add_medium("m", MediumKind::Bus, 1, TimePs::ZERO).unwrap();
        assert!(a.add_operator("m", OperatorKind::Processor).is_err());
    }

    #[test]
    fn zero_bandwidth_rejected() {
        let mut a = ArchGraph::new("t");
        assert!(a.add_medium("m", MediumKind::Bus, 0, TimePs::ZERO).is_err());
    }

    #[test]
    fn local_route_is_empty() {
        let (a, dsp, ..) = fig1_like();
        let r = a.route(dsp, dsp).unwrap();
        assert!(r.is_local());
        assert_eq!(r.transfer_time(&a, 1_000_000), TimePs::ZERO);
    }

    #[test]
    fn single_hop_route() {
        let (a, dsp, f1, ..) = fig1_like();
        let r = a.route(dsp, f1).unwrap();
        assert_eq!(r.hops(), 1);
        assert_eq!(a.medium(r.media[0]).name, "shb");
    }

    #[test]
    fn multi_hop_route_dsp_to_dynamic() {
        let (a, dsp, _, d1, _) = fig1_like();
        let r = a.route(dsp, d1).unwrap();
        assert_eq!(r.hops(), 2);
        let names: Vec<_> = r.media.iter().map(|&m| a.medium(m).name.clone()).collect();
        assert_eq!(names, ["shb", "il"]);
    }

    #[test]
    fn no_route_error() {
        let mut a = ArchGraph::new("t");
        let p = a.add_operator("p", OperatorKind::Processor).unwrap();
        let q = a.add_operator("q", OperatorKind::Processor).unwrap();
        assert!(matches!(a.route(p, q), Err(GraphError::NoRoute { .. })));
        assert!(a.validate().is_err());
    }

    #[test]
    fn transfer_time_accounts_bandwidth_and_latency() {
        let (a, dsp, f1, ..) = fig1_like();
        let r = a.route(dsp, f1).unwrap();
        // 400 Mbit/s, 500 ns latency: 4000 bits -> 10 us + 0.5 us.
        let t = r.transfer_time(&a, 4_000);
        assert_eq!(t, TimePs::from_ns(10_500));
    }

    #[test]
    fn route_is_deterministic_with_parallel_media() {
        let mut a = ArchGraph::new("t");
        let p = a.add_operator("p", OperatorKind::Processor).unwrap();
        let q = a.add_operator("q", OperatorKind::FpgaStatic).unwrap();
        let m1 = a
            .add_medium("m1", MediumKind::Bus, 100, TimePs::ZERO)
            .unwrap();
        let m2 = a
            .add_medium("m2", MediumKind::Bus, 100, TimePs::ZERO)
            .unwrap();
        for m in [m1, m2] {
            a.link(p, m).unwrap();
            a.link(q, m).unwrap();
        }
        // Lowest medium id wins deterministically.
        assert_eq!(a.route(p, q).unwrap().media, vec![m1]);
    }

    #[test]
    fn medium_transfer_rounds_up() {
        let m = Medium {
            name: "m".into(),
            kind: MediumKind::Bus,
            bits_per_sec: 3,
            latency: TimePs::ZERO,
        };
        // 1 bit at 3 bps = 333333333333.33.. ps, rounded up.
        assert_eq!(m.transfer_time(1).as_ps(), 333_333_333_334);
    }

    #[test]
    fn names_are_interned_at_construction() {
        let (a, dsp, _, d1, _) = fig1_like();
        assert_eq!(a.symbols().len(), a.operator_count() + a.medium_count());
        assert_eq!(a.operator_sym(dsp).resolve(a.symbols()), "dsp");
        assert_eq!(a.operator_sym(d1).resolve(a.symbols()), "d1");
        let shb = a.medium_by_name("shb").unwrap();
        assert_eq!(a.medium_sym(shb).resolve(a.symbols()), "shb");
    }

    #[test]
    fn routes_from_matches_pairwise_route() {
        let (a, ..) = fig1_like();
        for (from, _) in a.operators() {
            let table = a.routes_from(from);
            assert_eq!(table.len(), a.operator_count());
            for (to, _) in a.operators() {
                assert_eq!(table[to.0].as_ref(), a.route(from, to).ok().as_ref());
            }
        }
    }

    #[test]
    fn routes_from_marks_unreachable_operators() {
        let mut a = ArchGraph::new("t");
        let p = a.add_operator("p", OperatorKind::Processor).unwrap();
        let q = a.add_operator("q", OperatorKind::Processor).unwrap();
        let table = a.routes_from(p);
        assert!(table[p.0].as_ref().unwrap().is_local());
        assert!(table[q.0].is_none());
    }

    #[test]
    fn link_is_idempotent() {
        let (mut a, dsp, ..) = fig1_like();
        let shb = a.medium_by_name("shb").unwrap();
        a.link(dsp, shb).unwrap();
        assert_eq!(a.media_of(dsp).len(), 1);
        assert_eq!(a.operators_on(shb).len(), 2);
    }
}
