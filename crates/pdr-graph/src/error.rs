//! Error type for graph construction and validation.

use std::fmt;

/// Errors raised by the AAA front-end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An operation / operator / medium name was used twice.
    DuplicateName(String),
    /// An id refers to a vertex that does not exist.
    UnknownVertex(String),
    /// The algorithm graph has a data-dependency cycle (within one
    /// iteration; inter-iteration delays are not modeled as edges).
    Cycle {
        /// A vertex on the detected cycle.
        involving: String,
    },
    /// Structural rule violated (e.g. source with inputs, conditioned
    /// operation without alternatives, edge of zero width).
    Structural(String),
    /// No route exists between two operators in the architecture graph.
    NoRoute {
        /// Source operator name.
        from: String,
        /// Destination operator name.
        to: String,
    },
    /// A constraints-file line failed to parse.
    ConstraintsParse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// Characterization is missing an entry the caller required.
    MissingCharacterization(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DuplicateName(n) => write!(f, "duplicate name `{n}`"),
            GraphError::UnknownVertex(n) => write!(f, "unknown vertex `{n}`"),
            GraphError::Cycle { involving } => {
                write!(f, "algorithm graph has a cycle involving `{involving}`")
            }
            GraphError::Structural(msg) => write!(f, "structural error: {msg}"),
            GraphError::NoRoute { from, to } => {
                write!(f, "no route from operator `{from}` to `{to}`")
            }
            GraphError::ConstraintsParse { line, reason } => {
                write!(f, "constraints file, line {line}: {reason}")
            }
            GraphError::MissingCharacterization(what) => {
                write!(f, "missing characterization for {what}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(GraphError::DuplicateName("x".into())
            .to_string()
            .contains("`x`"));
        assert!(GraphError::NoRoute {
            from: "dsp".into(),
            to: "fpga".into()
        }
        .to_string()
        .contains("dsp"));
        assert!(GraphError::ConstraintsParse {
            line: 3,
            reason: "bad key".into()
        }
        .to_string()
        .contains("line 3"));
    }
}
