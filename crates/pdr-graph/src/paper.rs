//! Ready-made models of the paper's figures.
//!
//! * [`fig1_architecture`] — the Fig. 1 model: one FPGA contributing a fixed
//!   operator `F1` and two runtime-reconfigurable operators `D1`, `D2`,
//!   joined by the internal medium `IL`.
//! * [`sundance_architecture`] — the §6 prototyping platform: TI C6201 DSP
//!   and XC2V2000 FPGA (static part + the `op_dyn` region) joined by the
//!   SHB board bus, with the internal link `LIO` between static and dynamic
//!   parts (Fig. 4 names the on-chip link `LIO`).
//! * [`mccdma_algorithm`] — the Fig. 4 transmitter data-flow: interface,
//!   FEC, adaptive `modulation` (QPSK | QAM-16 conditioned on `select`),
//!   Walsh–Hadamard spreading, chip mapping, OFDM modulation (IFFT), guard
//!   interval, framing.
//! * [`mccdma_characterization`] — durations / footprints / reconfiguration
//!   times for that application on that platform.
//! * [`mccdma_constraints`] — the §4 constraints file for the two
//!   modulation modules sharing the `op_dyn` area.
//!
//! One *iteration* of the algorithm graph processes one OFDM symbol, the
//! granularity at which the paper switches modulation.

use crate::algorithm::{AlgorithmGraph, OpKind};
use crate::architecture::{ArchGraph, MediumKind, OperatorKind};
use crate::characterization::Characterization;
use crate::constraints::{ConstraintsFile, LoadPolicy, ModuleConstraints};
use pdr_fabric::{Resources, TimePs};

/// Number of OFDM subcarriers in the case study (a 64-point IFFT).
pub const SUBCARRIERS: u64 = 64;
/// Walsh–Hadamard spreading factor.
pub const SPREAD_FACTOR: u64 = 32;
/// Bits per OFDM symbol entering the modulator at QAM-16 (worst case used
/// to size edges): 64 carriers × 4 bits.
pub const MOD_IN_BITS: u64 = SUBCARRIERS * 4;
/// Complex sample width (I + Q, 16 bits each).
pub const SAMPLE_BITS: u64 = 32;

/// The Fig. 1 architecture: `F1` static, `D1`/`D2` dynamic, `IL` internal.
pub fn fig1_architecture() -> ArchGraph {
    let mut a = ArchGraph::new("fig1");
    let f1 = a
        .add_operator("F1", OperatorKind::FpgaStatic)
        .expect("fresh graph");
    let d1 = a
        .add_operator("D1", OperatorKind::FpgaDynamic { host: "F1".into() })
        .expect("fresh graph");
    let d2 = a
        .add_operator("D2", OperatorKind::FpgaDynamic { host: "F1".into() })
        .expect("fresh graph");
    let il = a
        .add_medium(
            "IL",
            MediumKind::InternalLink,
            800_000_000,
            TimePs::from_ns(40),
        )
        .expect("fresh graph");
    a.link(f1, il).expect("valid ids");
    a.link(d1, il).expect("valid ids");
    a.link(d2, il).expect("valid ids");
    a
}

/// The §6 Sundance platform: DSP + FPGA(static, op_dyn), SHB bus, LIO link.
///
/// SHB is modeled at 32 bit × 50 MHz sustained (1.6 Gbit/s) with 500 ns of
/// arbitration latency; LIO is the on-chip link through bus macros, 8 bit ×
/// 100 MHz with negligible latency.
pub fn sundance_architecture() -> ArchGraph {
    let mut a = ArchGraph::new("sundance_c6201_xc2v2000");
    let dsp = a
        .add_operator("dsp", OperatorKind::Processor)
        .expect("fresh graph");
    let fs = a
        .add_operator("fpga_static", OperatorKind::FpgaStatic)
        .expect("fresh graph");
    let dy = a
        .add_operator(
            "op_dyn",
            OperatorKind::FpgaDynamic {
                host: "fpga_static".into(),
            },
        )
        .expect("fresh graph");
    let shb = a
        .add_medium("shb", MediumKind::Bus, 1_600_000_000, TimePs::from_ns(500))
        .expect("fresh graph");
    let lio = a
        .add_medium(
            "lio",
            MediumKind::InternalLink,
            800_000_000,
            TimePs::from_ns(20),
        )
        .expect("fresh graph");
    a.link(dsp, shb).expect("valid ids");
    a.link(fs, shb).expect("valid ids");
    a.link(fs, lio).expect("valid ids");
    a.link(dy, lio).expect("valid ids");
    a
}

/// The Fig. 4 MC-CDMA transmitter data-flow graph (one OFDM symbol per
/// iteration).
pub fn mccdma_algorithm() -> AlgorithmGraph {
    let mut g = AlgorithmGraph::new("mccdma_tx");
    let src = g.add_op("interface_in", OpKind::Source).expect("fresh");
    let sel = g.add_op("select", OpKind::Source).expect("fresh");
    let fec = g.add_compute("fec_conv").expect("fresh");
    let modu = g
        .add_op(
            "modulation",
            OpKind::Conditioned {
                alternatives: vec!["mod_qpsk".into(), "mod_qam16".into()],
            },
        )
        .expect("fresh");
    let spread = g.add_compute("spreading").expect("fresh");
    let chip = g.add_compute("chip_mapping").expect("fresh");
    let ifft = g.add_compute("ifft64").expect("fresh");
    let guard = g.add_compute("guard_interval").expect("fresh");
    let frame = g.add_compute("framing").expect("fresh");
    let dac = g.add_op("interface_out", OpKind::Sink).expect("fresh");

    // Interface feeds the coder with raw bits (coded at rate 1/2 into the
    // modulator's worst-case demand).
    g.connect(src, fec, MOD_IN_BITS / 2).expect("valid");
    g.connect(fec, modu, MOD_IN_BITS).expect("valid");
    // The Select conditional entry (2-bit control word).
    g.connect(sel, modu, 2).expect("valid");
    // Complex symbols from modulation onwards.
    g.connect(modu, spread, SUBCARRIERS * SAMPLE_BITS)
        .expect("valid");
    g.connect(spread, chip, SUBCARRIERS * SAMPLE_BITS)
        .expect("valid");
    g.connect(chip, ifft, SUBCARRIERS * SAMPLE_BITS)
        .expect("valid");
    g.connect(ifft, guard, SUBCARRIERS * SAMPLE_BITS)
        .expect("valid");
    g.connect(guard, frame, (SUBCARRIERS + SUBCARRIERS / 4) * SAMPLE_BITS)
        .expect("valid");
    g.connect(frame, dac, (SUBCARRIERS + SUBCARRIERS / 4) * SAMPLE_BITS)
        .expect("valid");
    g
}

/// A *fixed* (non-reconfigurable) variant of the Fig. 4 transmitter: the
/// conditioned `modulation` vertex is replaced by a plain compute vertex of
/// the given alternative (`"mod_qpsk"` or `"mod_qam16"`), and the `select`
/// entry disappears. These are the Table 1 baselines.
pub fn mccdma_fixed(alternative: &str) -> AlgorithmGraph {
    let mut g = AlgorithmGraph::new(format!("mccdma_tx_fixed_{alternative}"));
    let src = g.add_op("interface_in", OpKind::Source).expect("fresh");
    let fec = g.add_compute("fec_conv").expect("fresh");
    let modu = g
        .add_op(
            "modulation",
            OpKind::Compute {
                function: alternative.to_string(),
            },
        )
        .expect("fresh");
    let spread = g.add_compute("spreading").expect("fresh");
    let chip = g.add_compute("chip_mapping").expect("fresh");
    let ifft = g.add_compute("ifft64").expect("fresh");
    let guard = g.add_compute("guard_interval").expect("fresh");
    let frame = g.add_compute("framing").expect("fresh");
    let dac = g.add_op("interface_out", OpKind::Sink).expect("fresh");
    g.connect(src, fec, MOD_IN_BITS / 2).expect("valid");
    g.connect(fec, modu, MOD_IN_BITS).expect("valid");
    g.connect(modu, spread, SUBCARRIERS * SAMPLE_BITS)
        .expect("valid");
    g.connect(spread, chip, SUBCARRIERS * SAMPLE_BITS)
        .expect("valid");
    g.connect(chip, ifft, SUBCARRIERS * SAMPLE_BITS)
        .expect("valid");
    g.connect(ifft, guard, SUBCARRIERS * SAMPLE_BITS)
        .expect("valid");
    g.connect(guard, frame, (SUBCARRIERS + SUBCARRIERS / 4) * SAMPLE_BITS)
        .expect("valid");
    g.connect(frame, dac, (SUBCARRIERS + SUBCARRIERS / 4) * SAMPLE_BITS)
        .expect("valid");
    g
}

/// Characterization of [`mccdma_algorithm`] on [`sundance_architecture`].
///
/// FPGA durations correspond to pipelined implementations at 50 MHz
/// (one OFDM symbol in a handful of microseconds); DSP durations are the
/// corresponding C6201 software costs, one to two orders slower for the
/// data-path blocks. Resource footprints are calibrated to land Table 1 in
/// the region the paper reports. The `op_dyn` reconfiguration default is the
/// paper's ≈ 4 ms.
pub fn mccdma_characterization() -> Characterization {
    let mut c = Characterization::new();
    let us = TimePs::from_us;

    // function, fpga_static time (us), dsp time (us)
    let table: &[(&str, u64, u64)] = &[
        ("fec_conv", 3, 40),
        ("spreading", 4, 120),
        ("chip_mapping", 2, 30),
        ("ifft64", 6, 300),
        ("guard_interval", 1, 15),
        ("framing", 2, 25),
    ];
    for &(f, fpga, dsp) in table {
        c.set_duration(f, "fpga_static", us(fpga));
        c.set_duration(f, "dsp", us(dsp));
    }
    // The modulation alternatives: feasible on the dynamic operator, the
    // static part (the "fixed" baseline of Table 1) and in software.
    for (f, fpga, dsp) in [("mod_qpsk", 2u64, 35u64), ("mod_qam16", 3, 60)] {
        c.set_duration(f, "op_dyn", us(fpga));
        c.set_duration(f, "fpga_static", us(fpga));
        c.set_duration(f, "dsp", us(dsp));
    }

    // Resource footprints of the bare (non-shell) function logic.
    c.set_resources("fec_conv", Resources::logic(120, 210, 180));
    c.set_resources("spreading", Resources::logic(150, 260, 240));
    c.set_resources("chip_mapping", Resources::logic(60, 100, 90));
    c.set_resources(
        "ifft64",
        Resources {
            slices: 600,
            luts: 1_050,
            ffs: 980,
            brams: 4,
            mults: 8,
            tbufs: 0,
        },
    );
    c.set_resources("guard_interval", Resources::logic(40, 60, 70));
    c.set_resources("framing", Resources::logic(70, 110, 120));
    c.set_resources("mod_qpsk", Resources::logic(90, 150, 130));
    c.set_resources("mod_qam16", Resources::logic(190, 330, 280));

    c.set_reconfig_default("op_dyn", TimePs::from_ms(4));
    c
}

/// The §4 constraints file of the case study: both modulations share the
/// `op_dyn` area, are mutually exclusive, and QPSK (the start-up mode) is
/// loaded at start; the area is pinned to 4 CLB columns from column 20
/// (the ≈ 8 % window).
pub fn mccdma_constraints() -> ConstraintsFile {
    let mut f = ConstraintsFile::new();
    let mut qpsk = ModuleConstraints::new("mod_qpsk", "op_dyn");
    qpsk.load = LoadPolicy::AtStart;
    qpsk.share_group = Some("modulation".into());
    qpsk.exclusive_with = vec!["mod_qam16".into()];
    qpsk.pin = Some((20, 4));
    let mut qam = ModuleConstraints::new("mod_qam16", "op_dyn");
    qam.share_group = Some("modulation".into());
    qam.exclusive_with = vec!["mod_qpsk".into()];
    f.add(qpsk).expect("fresh file");
    f.add(qam).expect("fresh file");
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shape() {
        let a = fig1_architecture();
        a.validate().unwrap();
        assert_eq!(a.operator_count(), 3);
        assert_eq!(a.dynamic_operators().len(), 2);
        assert_eq!(a.medium_count(), 1);
    }

    #[test]
    fn sundance_shape_and_routes() {
        let a = sundance_architecture();
        a.validate().unwrap();
        let dsp = a.operator_by_name("dsp").unwrap();
        let dyn_ = a.operator_by_name("op_dyn").unwrap();
        let r = a.route(dsp, dyn_).unwrap();
        assert_eq!(r.hops(), 2, "DSP reaches op_dyn via SHB then LIO");
    }

    #[test]
    fn mccdma_graph_is_valid_and_has_the_conditioned_modulation() {
        let g = mccdma_algorithm();
        g.validate().unwrap();
        let cond = g.conditioned_ops();
        assert_eq!(cond.len(), 1);
        assert_eq!(g.op(cond[0]).name, "modulation");
        assert_eq!(
            g.op(cond[0]).kind.functions(),
            ["mod_qpsk".to_string(), "mod_qam16".to_string()]
        );
        assert_eq!(g.len(), 10);
    }

    #[test]
    fn characterization_covers_every_function_on_some_operator() {
        let g = mccdma_algorithm();
        let c = mccdma_characterization();
        for (_, op) in g.ops() {
            for f in op.kind.functions() {
                assert!(
                    !c.feasible_operators(f).is_empty(),
                    "function `{f}` has no feasible operator"
                );
            }
        }
    }

    #[test]
    fn modulation_feasible_on_dynamic_operator() {
        let c = mccdma_characterization();
        assert!(c.feasible("mod_qpsk", "op_dyn"));
        assert!(c.feasible("mod_qam16", "op_dyn"));
        assert_eq!(
            c.reconfig_time("mod_qam16", "op_dyn").unwrap(),
            TimePs::from_ms(4)
        );
    }

    #[test]
    fn fpga_is_faster_than_dsp_everywhere() {
        let c = mccdma_characterization();
        for f in [
            "fec_conv",
            "spreading",
            "chip_mapping",
            "ifft64",
            "guard_interval",
            "framing",
        ] {
            assert!(
                c.duration(f, "fpga_static").unwrap() < c.duration(f, "dsp").unwrap(),
                "{f}"
            );
        }
    }

    #[test]
    fn constraints_validate_and_exclude() {
        let f = mccdma_constraints();
        f.validate().unwrap();
        assert!(f.mutually_exclusive("mod_qpsk", "mod_qam16"));
        assert_eq!(f.modules_in_region("op_dyn").len(), 2);
        // Round-trips through the text format.
        let back = ConstraintsFile::parse(&f.to_string()).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn fixed_variants_validate_and_drop_select() {
        for alt in ["mod_qpsk", "mod_qam16"] {
            let g = mccdma_fixed(alt);
            g.validate().unwrap();
            assert!(g.by_name("select").is_none());
            assert!(g.conditioned_ops().is_empty());
            let modu = g.by_name("modulation").unwrap();
            assert_eq!(g.op(modu).kind.functions(), [alt.to_string()]);
        }
    }

    #[test]
    fn qam16_needs_more_area_than_qpsk() {
        let c = mccdma_characterization();
        assert!(c.resources("mod_qam16").slices > c.resources("mod_qpsk").slices);
        assert!(c.resources("mod_qam16").luts > c.resources("mod_qpsk").luts);
    }
}
