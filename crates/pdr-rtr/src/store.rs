//! Bitstream storage: external memory and on-chip staging cache.
//!
//! In the paper's §6 system the protocol builder *"is next in charge to
//! address external memory and drive ICAP"* — partial bitstreams live in a
//! board memory whose read bandwidth, not the port, bounds reconfiguration
//! time. [`BitstreamStore`] models that memory; [`MemoryModel`] its timing.
//!
//! Prefetching needs somewhere to put bits fetched ahead of time:
//! [`BitstreamCache`] is a bounded on-chip (BRAM) staging cache with LRU
//! eviction. A cache hit turns the 3-of-4-ms fetch leg into zero.

use crate::error::RtrError;
use pdr_fabric::{Bitstream, TimePs};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Timing model of the external bitstream memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Sustained read bandwidth in bytes per second.
    pub bytes_per_sec: u64,
    /// Fixed access setup (addressing, first-word latency).
    pub setup: TimePs,
}

impl MemoryModel {
    /// The paper-calibrated board flash/SRAM: ~16.7 MB/s sustained, so the
    /// fetch leg of a ~50 KB module is ≈ 3 ms (4 ms total − 1 ms load).
    pub fn paper_flash() -> Self {
        MemoryModel {
            bytes_per_sec: 16_700_000,
            setup: TimePs::from_us(10),
        }
    }

    /// A fast memory (e.g. DSP-side SDRAM over EMIF): 100 MB/s.
    pub fn fast_sdram() -> Self {
        MemoryModel {
            bytes_per_sec: 100_000_000,
            setup: TimePs::from_us(2),
        }
    }

    /// Time to read `bytes` from this memory.
    pub fn read_time(&self, bytes: usize) -> TimePs {
        assert!(self.bytes_per_sec > 0, "memory bandwidth must be positive");
        let ps = (bytes as u128 * 1_000_000_000_000u128).div_ceil(self.bytes_per_sec as u128);
        self.setup + TimePs::from_ps(ps.min(u64::MAX as u128) as u64)
    }
}

/// The external memory holding every module's partial bitstream.
///
/// With [`BitstreamStore::with_compression`] the memory stores
/// zero-run-length-compressed images (see [`pdr_fabric::compress`]): the
/// *stored* size — what the fetch leg pays for — shrinks, while the raw
/// stream (what the port loads) is unchanged, the on-chip decompressor
/// sitting between memory and the protocol builder.
#[derive(Debug, Clone, Default)]
pub struct BitstreamStore {
    streams: HashMap<String, Bitstream>,
    /// Cached stored sizes (compressed when compression is on).
    stored_sizes: HashMap<String, usize>,
    compressed: bool,
}

impl BitstreamStore {
    /// Empty store (raw storage).
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty store with zero-RLE compressed storage.
    pub fn with_compression() -> Self {
        BitstreamStore {
            compressed: true,
            ..Self::default()
        }
    }

    /// Is the store compressed?
    pub fn is_compressed(&self) -> bool {
        self.compressed
    }

    /// Store (or replace) the bitstream of `module`.
    pub fn insert(&mut self, module: impl Into<String>, bs: Bitstream) {
        let module = module.into();
        let stored = if self.compressed {
            pdr_fabric::compress::compress(&bs.encode()).len()
        } else {
            bs.len_bytes()
        };
        self.stored_sizes.insert(module.clone(), stored);
        self.streams.insert(module, bs);
    }

    /// Bitstream of `module`.
    pub fn get(&self, module: &str) -> Result<&Bitstream, RtrError> {
        self.streams
            .get(module)
            .ok_or_else(|| RtrError::UnknownModule(module.to_string()))
    }

    /// Raw (uncompressed) size in bytes of `module`'s stream — what the
    /// configuration port must transfer.
    pub fn size_of(&self, module: &str) -> Result<usize, RtrError> {
        Ok(self.get(module)?.len_bytes())
    }

    /// Stored size in bytes — what the memory fetch must transfer
    /// (compressed when compression is on).
    pub fn stored_size_of(&self, module: &str) -> Result<usize, RtrError> {
        self.get(module)?;
        self.stored_sizes.get(module).copied().ok_or_else(|| {
            RtrError::Internal(format!("no stored size recorded for module `{module}`"))
        })
    }

    /// Number of stored modules.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Module names in sorted order.
    pub fn modules(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.streams.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }
}

/// Staging-cache hit/miss/eviction counters.
///
/// Returned by [`BitstreamCache::stats`] and by the per-region probes of
/// the indexed [`crate::engine::RtrEngine`]; the named fields replace the
/// old bare `(hits, misses, evictions)` tuple.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that found the module resident.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

/// A bounded LRU staging cache for fetched bitstreams.
#[derive(Debug, Clone)]
pub struct BitstreamCache {
    capacity_bytes: usize,
    used_bytes: usize,
    /// (module, bytes), most recently used last.
    entries: Vec<(String, usize)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl BitstreamCache {
    /// Cache of the given capacity. The paper's board has 56 BRAMs of
    /// 18 Kbit; dedicating 24 of them gives ≈ 54 KB — one module.
    pub fn new(capacity_bytes: usize) -> Self {
        BitstreamCache {
            capacity_bytes,
            used_bytes: 0,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// A cache sized to hold `n` copies of `module_bytes`.
    pub fn sized_for(n: usize, module_bytes: usize) -> Self {
        BitstreamCache::new(n * module_bytes)
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity_bytes
    }

    /// Bytes currently resident.
    pub fn used(&self) -> usize {
        self.used_bytes
    }

    /// Is `module` resident? Counts a hit/miss and refreshes recency on hit.
    pub fn lookup(&mut self, module: &str) -> bool {
        if let Some(pos) = self.entries.iter().position(|(m, _)| m == module) {
            let e = self.entries.remove(pos);
            self.entries.push(e);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Is `module` resident? (No statistics side effects — for peeking.)
    pub fn contains(&self, module: &str) -> bool {
        self.entries.iter().any(|(m, _)| m == module)
    }

    /// Insert `module` of `bytes`, evicting LRU entries as needed.
    pub fn insert(&mut self, module: &str, bytes: usize) -> Result<(), RtrError> {
        if bytes > self.capacity_bytes {
            return Err(RtrError::CacheTooSmall {
                module: module.to_string(),
                needed: bytes,
                capacity: self.capacity_bytes,
            });
        }
        if let Some(pos) = self.entries.iter().position(|(m, _)| m == module) {
            let (_, old) = self.entries.remove(pos);
            self.used_bytes -= old;
        }
        while self.used_bytes + bytes > self.capacity_bytes {
            let (_, evicted) = self.entries.remove(0);
            self.used_bytes -= evicted;
            self.evictions += 1;
        }
        self.entries.push((module.to_string(), bytes));
        self.used_bytes += bytes;
        Ok(())
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }

    /// Resident module names, LRU first.
    pub fn resident(&self) -> Vec<&str> {
        self.entries.iter().map(|(m, _)| m.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_fabric::{Device, ReconfigRegion};

    fn sample_stream(seed: u64) -> Bitstream {
        let d = Device::xc2v2000();
        let r = ReconfigRegion::new("op_dyn", 20, 4).unwrap();
        Bitstream::partial_for_region(&d, &r, seed)
    }

    #[test]
    fn store_roundtrip_and_errors() {
        let mut s = BitstreamStore::new();
        assert!(s.is_empty());
        s.insert("mod_qpsk", sample_stream(1));
        s.insert("mod_qam16", sample_stream(2));
        assert_eq!(s.len(), 2);
        assert_eq!(s.modules(), ["mod_qam16", "mod_qpsk"]);
        assert!(s.get("mod_qpsk").is_ok());
        assert!(s.size_of("mod_qpsk").unwrap() > 40_000);
        assert!(matches!(s.get("ghost"), Err(RtrError::UnknownModule(_))));
    }

    #[test]
    fn paper_flash_fetch_is_about_3ms() {
        let bytes = sample_stream(1).len_bytes();
        let t = MemoryModel::paper_flash().read_time(bytes);
        let ms = t.as_millis_f64();
        assert!((2.5..3.5).contains(&ms), "fetch {ms} ms");
    }

    #[test]
    fn fast_memory_is_faster() {
        let bytes = 50_000;
        assert!(
            MemoryModel::fast_sdram().read_time(bytes)
                < MemoryModel::paper_flash().read_time(bytes)
        );
    }

    #[test]
    fn cache_lru_eviction_order() {
        let mut c = BitstreamCache::new(100);
        c.insert("a", 40).unwrap();
        c.insert("b", 40).unwrap();
        assert!(c.lookup("a")); // refresh a: LRU order is now [b, a]
        c.insert("c", 40).unwrap(); // evicts b
        assert!(c.contains("a"));
        assert!(!c.contains("b"));
        assert!(c.contains("c"));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 0, 1));
        assert_eq!(c.resident(), ["a", "c"]);
    }

    #[test]
    fn cache_rejects_oversized() {
        let mut c = BitstreamCache::new(10);
        assert!(matches!(
            c.insert("big", 11),
            Err(RtrError::CacheTooSmall { .. })
        ));
    }

    #[test]
    fn cache_reinsert_updates_size() {
        let mut c = BitstreamCache::new(100);
        c.insert("a", 60).unwrap();
        c.insert("a", 30).unwrap();
        assert_eq!(c.used(), 30);
        c.insert("b", 70).unwrap();
        assert_eq!(c.used(), 100);
        assert!(c.contains("a") && c.contains("b"));
    }

    #[test]
    fn lookup_counts_misses() {
        let mut c = BitstreamCache::new(10);
        assert!(!c.lookup("x"));
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn sized_for_helper() {
        let c = BitstreamCache::sized_for(2, 50_000);
        assert_eq!(c.capacity(), 100_000);
    }
}
