//! The Fig. 2 design space: where the manager and protocol builder live.
//!
//! Figure 2 of the paper shows *"different ways to reconfigure dynamic
//! parts of a FPGA"*, with labels `M` (configuration manager) and `P`
//! (protocol configuration builder) marking where each functionality is
//! implemented: *"Locations of these functionalities have a direct impact
//! on the reconfiguration latency."*
//!
//! * **Case (a)** — *standalone self reconfiguration*: both `M` and `P` in
//!   the FPGA's static part, driving ICAP. No processor involvement.
//! * **Case (b)** — the FPGA *"sends reconfiguration requests to the
//!   processor through hardware interruptions"*; the processor hosts `M`
//!   and `P` and drives SelectMAP.
//!
//! Two hybrid placements complete the 2×2: manager in fabric with a
//! processor-side builder, and vice versa. [`ReconfigArchitecture::latency`]
//! decomposes the request→ready latency per variant; the Fig. 2 experiment
//! sweeps all four.

use pdr_fabric::{PortProfile, TimePs};
use serde::{Deserialize, Serialize};

/// Where a functionality (M or P) is implemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// In the FPGA's static logic.
    Fabric,
    /// On the external processor (DSP).
    Processor,
}

/// One point of the Fig. 2 design space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconfigArchitecture {
    /// Variant name, e.g. `"case-a self/ICAP"`.
    pub name: String,
    /// Where the configuration manager (M) runs.
    pub manager_at: Placement,
    /// Where the protocol configuration builder (P) runs.
    pub builder_at: Placement,
    /// Configuration port driven by the builder.
    pub port: PortProfile,
    /// Hardware-interrupt latency (request signaling to the processor);
    /// zero when the manager is in fabric.
    pub irq_latency: TimePs,
    /// Manager request-handling time (state machine in fabric is fast;
    /// an ISR + table lookup on the DSP is slower).
    pub manager_decision: TimePs,
    /// Protocol-building cost per kilobyte of stream (≈ 0 for a pipelined
    /// hardware builder; a software loop on the DSP pays per word).
    pub build_per_kb: TimePs,
    /// One crossing of the board bus (request or data redirection) whenever
    /// M and P sit on different sides.
    pub bus_hop: TimePs,
}

/// Request→ready latency decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Interrupt signaling (case b and hybrids with processor-side M).
    pub irq: TimePs,
    /// Manager decision time.
    pub decision: TimePs,
    /// Cross-side hops between M and P.
    pub hops: TimePs,
    /// Protocol building.
    pub build: TimePs,
    /// Bitstream fetch from memory (passed in by the caller: cache-dependent).
    pub fetch: TimePs,
    /// Port load.
    pub load: TimePs,
}

impl LatencyBreakdown {
    /// Total request→ready latency.
    pub fn total(&self) -> TimePs {
        self.irq + self.decision + self.hops + self.build + self.fetch + self.load
    }
}

impl ReconfigArchitecture {
    /// Case (a): standalone self-reconfiguration through ICAP.
    pub fn case_a_self_icap() -> Self {
        ReconfigArchitecture {
            name: "case-a self/ICAP (M=fabric, P=fabric)".into(),
            manager_at: Placement::Fabric,
            builder_at: Placement::Fabric,
            port: PortProfile::icap_virtex2(),
            irq_latency: TimePs::ZERO,
            manager_decision: TimePs::from_ns(200), // a few fabric cycles
            build_per_kb: TimePs::from_ns(50),      // pipelined, overlapped
            bus_hop: TimePs::from_us(1),
        }
    }

    /// Case (b): processor-hosted reconfiguration through SelectMAP.
    pub fn case_b_cpu_selectmap() -> Self {
        ReconfigArchitecture {
            name: "case-b CPU/SelectMAP (M=cpu, P=cpu)".into(),
            manager_at: Placement::Processor,
            builder_at: Placement::Processor,
            port: PortProfile::paper_selectmap_dsp(),
            irq_latency: TimePs::from_us(5), // HW interrupt + ISR entry
            manager_decision: TimePs::from_us(10), // software dispatch
            build_per_kb: TimePs::from_us(20), // software packetization loop
            bus_hop: TimePs::from_us(1),
        }
    }

    /// Hybrid: manager in fabric, builder on the processor.
    pub fn hybrid_m_fabric_p_cpu() -> Self {
        ReconfigArchitecture {
            name: "hybrid (M=fabric, P=cpu)".into(),
            manager_at: Placement::Fabric,
            builder_at: Placement::Processor,
            port: PortProfile::paper_selectmap_dsp(),
            irq_latency: TimePs::from_us(5), // must still interrupt the CPU for P
            manager_decision: TimePs::from_ns(200),
            build_per_kb: TimePs::from_us(20),
            bus_hop: TimePs::from_us(1),
        }
    }

    /// Hybrid: manager on the processor, builder in fabric (CPU decides,
    /// fabric streams from memory into ICAP).
    pub fn hybrid_m_cpu_p_fabric() -> Self {
        ReconfigArchitecture {
            name: "hybrid (M=cpu, P=fabric)".into(),
            manager_at: Placement::Processor,
            builder_at: Placement::Fabric,
            port: PortProfile::icap_virtex2(),
            irq_latency: TimePs::from_us(5),
            manager_decision: TimePs::from_us(10),
            build_per_kb: TimePs::from_ns(50),
            bus_hop: TimePs::from_us(1),
        }
    }

    /// All four variants in Fig. 2 order.
    pub fn all_variants() -> Vec<ReconfigArchitecture> {
        vec![
            Self::case_a_self_icap(),
            Self::case_b_cpu_selectmap(),
            Self::hybrid_m_fabric_p_cpu(),
            Self::hybrid_m_cpu_p_fabric(),
        ]
    }

    /// Latency decomposition for reconfiguring a `bytes`-long stream whose
    /// fetch leg costs `fetch` (zero when cached/prefetched).
    pub fn latency(&self, bytes: usize, fetch: TimePs) -> LatencyBreakdown {
        let irq = if self.manager_at == Placement::Processor {
            self.irq_latency
        } else {
            TimePs::ZERO
        };
        // M and P on different sides: the request crosses the bus once, and
        // a processor-side builder is reached via interrupt even when the
        // manager is in fabric.
        let mut hops = TimePs::ZERO;
        if self.manager_at != self.builder_at {
            hops += self.bus_hop;
            if self.builder_at == Placement::Processor && self.manager_at == Placement::Fabric {
                hops += self.irq_latency;
            }
        }
        let kb = bytes.div_ceil(1024) as u64;
        LatencyBreakdown {
            irq,
            decision: self.manager_decision,
            hops,
            build: self.build_per_kb * kb,
            fetch,
            load: self.port.transfer_time(bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODULE_BYTES: usize = 49_668; // the paper's ~8 % module

    #[test]
    fn case_a_beats_case_b() {
        let fetch = TimePs::from_ms(3);
        let a = ReconfigArchitecture::case_a_self_icap().latency(MODULE_BYTES, fetch);
        let b = ReconfigArchitecture::case_b_cpu_selectmap().latency(MODULE_BYTES, fetch);
        assert!(
            a.total() < b.total(),
            "self-reconfiguration must be faster: {} vs {}",
            a.total(),
            b.total()
        );
        assert_eq!(a.irq, TimePs::ZERO);
        assert!(b.irq > TimePs::ZERO);
    }

    #[test]
    fn builder_next_to_port_shortens_path() {
        // With the same processor-side manager, a fabric builder (ICAP at
        // line rate, no software packetization) beats a CPU builder.
        let fetch = TimePs::ZERO;
        let p_fabric = ReconfigArchitecture::hybrid_m_cpu_p_fabric().latency(MODULE_BYTES, fetch);
        let p_cpu = ReconfigArchitecture::case_b_cpu_selectmap().latency(MODULE_BYTES, fetch);
        assert!(p_fabric.total() < p_cpu.total());
    }

    #[test]
    fn all_variants_are_distinct_and_ordered_plausibly() {
        let fetch = TimePs::from_ms(3);
        let totals: Vec<(String, TimePs)> = ReconfigArchitecture::all_variants()
            .into_iter()
            .map(|v| (v.name.clone(), v.latency(MODULE_BYTES, fetch).total()))
            .collect();
        assert_eq!(totals.len(), 4);
        // Case a is the global minimum.
        let min = totals.iter().map(|(_, t)| *t).min().unwrap();
        assert_eq!(totals[0].1, min);
        // All variants land in the paper's ms regime.
        for (n, t) in &totals {
            let ms = t.as_millis_f64();
            assert!((3.0..10.0).contains(&ms), "{n}: {ms} ms");
        }
    }

    #[test]
    fn fetch_component_passes_through() {
        let v = ReconfigArchitecture::case_a_self_icap();
        let cold = v.latency(MODULE_BYTES, TimePs::from_ms(3));
        let warm = v.latency(MODULE_BYTES, TimePs::ZERO);
        assert_eq!(cold.total() - warm.total(), TimePs::from_ms(3));
    }

    #[test]
    fn breakdown_sums_to_total() {
        let v = ReconfigArchitecture::case_b_cpu_selectmap();
        let b = v.latency(MODULE_BYTES, TimePs::from_ms(1));
        assert_eq!(
            b.total(),
            b.irq + b.decision + b.hops + b.build + b.fetch + b.load
        );
    }

    #[test]
    fn software_build_scales_with_size() {
        let v = ReconfigArchitecture::case_b_cpu_selectmap();
        let small = v.latency(10_000, TimePs::ZERO);
        let large = v.latency(100_000, TimePs::ZERO);
        assert!(large.build > small.build * 5);
    }
}
