//! Indexed prefetch and eviction policies for the [`crate::engine::RtrEngine`].
//!
//! The reference [`crate::prefetch::Predictor`] trait deals in owned
//! `String`s behind a `Box<dyn>`; at millions of requests per second both
//! the allocation and the virtual dispatch show up. The policies here
//! operate on dense module indices (`u32`, with [`NO_MODULE`] as the
//! none-sentinel) and are selected through the [`Prefetcher`]/[`Evictor`]
//! enums — one `match` on a discriminant, no boxing, no heap traffic on
//! the request path. Every table a policy consults (schedule futures,
//! Markov transition counts, LFU frequencies, Belady next-use chains) is
//! sized once at engine construction.
//!
//! Prefetch (what to fetch ahead of time):
//!
//! * [`SchedulePrefetch`] — replay a known load sequence (the paper's
//!   off-line, schedule-driven setting). Index-for-index equivalent to
//!   the reference [`crate::prefetch::ScheduleDriven`].
//! * [`Prefetcher::LastValue`] — predict "no change" (straw man),
//!   equivalent to [`crate::prefetch::LastValue`].
//! * [`MarkovPrefetch`] — learn each module's most frequent follower in a
//!   dense transition matrix, equivalent (including the lexicographic
//!   tie-break) to [`crate::prefetch::FirstOrderMarkov`].
//!
//! Eviction (which staging-cache entry to displace):
//!
//! * [`Evictor::Lru`] — least recently used; the reference
//!   [`crate::store::BitstreamCache`] semantics, byte-for-byte.
//! * [`LfuEvict`] — least frequently used (ties broken LRU-first).
//! * [`BeladyEvict`] — the offline oracle: evict the entry whose next use
//!   lies farthest in a future request trace supplied up front. Only
//!   meaningful when the replayed trace matches that future; the
//!   benchmark uses it as the unbeatable hit-rate bound.

/// Sentinel module index: "no module" / "no prediction".
pub const NO_MODULE: u32 = u32::MAX;

/// A next-configuration predictor over dense module indices.
///
/// Implemented by the concrete policies and by the [`Prefetcher`] enum
/// that the engine stores; the enum dispatches with a plain `match`, so
/// the hot path never goes through a vtable.
pub trait PrefetchPolicy {
    /// Called after `module` becomes the active configuration; returns
    /// the predicted next module, or [`NO_MODULE`] for no prediction.
    fn observe_and_predict(&mut self, module: u32) -> u32;

    /// Policy name (for reports).
    fn name(&self) -> &'static str;
}

/// Replays a known future load sequence (off-line, schedule-driven).
///
/// Entries that could not be resolved to a stored module at construction
/// are [`NO_MODULE`]; they never match an observation and yield no
/// prediction — exactly how the string reference skips names absent from
/// its store.
#[derive(Debug, Clone)]
pub struct SchedulePrefetch {
    future: Vec<u32>,
    cursor: usize,
}

impl SchedulePrefetch {
    /// Predictor over the resolved load sequence (in load order).
    pub fn new(future: Vec<u32>) -> Self {
        SchedulePrefetch { future, cursor: 0 }
    }
}

impl PrefetchPolicy for SchedulePrefetch {
    fn observe_and_predict(&mut self, module: u32) -> u32 {
        if self.future.get(self.cursor).copied() == Some(module) {
            self.cursor += 1;
        }
        self.future.get(self.cursor).copied().unwrap_or(NO_MODULE)
    }

    fn name(&self) -> &'static str {
        "schedule-driven"
    }
}

/// Learns, per module, its most frequent successor in a dense
/// `n x n` transition-count matrix.
#[derive(Debug, Clone)]
pub struct MarkovPrefetch {
    n: usize,
    /// Row-major transition counts: `counts[cur * n + next]`.
    counts: Vec<u64>,
    /// Lexicographic rank of each module's *name* — the reference
    /// predictor breaks count ties toward the smallest name, so the
    /// indexed twin must compare names, not indices.
    lex_rank: Vec<u32>,
    last: u32,
}

impl MarkovPrefetch {
    /// Fresh, untrained predictor over `lex_rank.len()` modules.
    pub fn new(lex_rank: Vec<u32>) -> Self {
        let n = lex_rank.len();
        MarkovPrefetch {
            n,
            counts: vec![0; n * n],
            lex_rank,
            last: NO_MODULE,
        }
    }
}

impl PrefetchPolicy for MarkovPrefetch {
    fn observe_and_predict(&mut self, module: u32) -> u32 {
        let m = module as usize;
        if self.last != NO_MODULE && self.last != module {
            self.counts[self.last as usize * self.n + m] += 1;
        }
        self.last = module;
        let row = &self.counts[m * self.n..][..self.n];
        let mut best = NO_MODULE;
        let mut best_count = 0u64;
        for (j, &c) in row.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if c > best_count
                || (c == best_count && self.lex_rank[j] < self.lex_rank[best as usize])
            {
                best = j as u32;
                best_count = c;
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        "markov-1"
    }
}

/// The prefetch policy an engine region runs — enum-dispatched, no `Box`.
#[derive(Debug, Clone)]
pub enum Prefetcher {
    /// Prefetching off.
    None,
    /// Replay a known schedule.
    Schedule(SchedulePrefetch),
    /// Predict "no change".
    LastValue,
    /// First-order Markov learner.
    Markov(MarkovPrefetch),
}

impl PrefetchPolicy for Prefetcher {
    #[inline]
    fn observe_and_predict(&mut self, module: u32) -> u32 {
        match self {
            Prefetcher::None => NO_MODULE,
            Prefetcher::Schedule(p) => p.observe_and_predict(module),
            Prefetcher::LastValue => module,
            Prefetcher::Markov(p) => p.observe_and_predict(module),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            Prefetcher::None => "none",
            Prefetcher::Schedule(p) => p.name(),
            Prefetcher::LastValue => "last-value",
            Prefetcher::Markov(p) => p.name(),
        }
    }
}

/// An eviction policy over the engine's staging cache.
///
/// The cache keeps its entries in recency order (least recently used
/// first) regardless of policy; the policy only picks the victim and
/// maintains whatever side tables it needs. All hooks are allocation-free.
pub trait EvictionPolicy {
    /// Called once per configuration request on the region, *before* any
    /// cache activity (Belady advances its trace cursor here).
    fn on_request(&mut self, module: u32);

    /// Called when a cache lookup hits `module`.
    fn on_access(&mut self, module: u32);

    /// Called when `module` is inserted into the cache.
    fn on_insert(&mut self, module: u32);

    /// Index (into `entries`, recency order, LRU first) of the entry to
    /// evict. `entries` is never empty when called.
    fn victim(&self, entries: &[(u32, usize)]) -> usize;

    /// Policy name (for reports).
    fn name(&self) -> &'static str;
}

/// Least frequently used, ties broken toward the least recently used.
#[derive(Debug, Clone)]
pub struct LfuEvict {
    freq: Vec<u64>,
}

impl LfuEvict {
    /// Fresh frequency table over `modules` modules.
    pub fn new(modules: usize) -> Self {
        LfuEvict {
            freq: vec![0; modules],
        }
    }
}

impl EvictionPolicy for LfuEvict {
    fn on_request(&mut self, _module: u32) {}

    fn on_access(&mut self, module: u32) {
        self.freq[module as usize] += 1;
    }

    fn on_insert(&mut self, module: u32) {
        self.freq[module as usize] += 1;
    }

    fn victim(&self, entries: &[(u32, usize)]) -> usize {
        let mut best = 0usize;
        let mut best_freq = u64::MAX;
        for (pos, &(m, _)) in entries.iter().enumerate() {
            let f = self.freq[m as usize];
            if f < best_freq {
                best = pos;
                best_freq = f;
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        "lfu"
    }
}

/// The offline Belady oracle: evict the cached module whose next use in
/// the supplied future trace is farthest away (or never comes).
///
/// Exact only while the replayed requests follow `future` entry for
/// entry; on a deviation the stale next-use markers degrade it to a
/// heuristic (it never becomes unsafe, just suboptimal).
#[derive(Debug, Clone)]
pub struct BeladyEvict {
    /// The future request trace for this region (module indices).
    future: Vec<u32>,
    /// `next_use[p]`: the next position after `p` requesting the same
    /// module, or `u32::MAX`.
    next_use: Vec<u32>,
    /// Per-module: position of its next use at the current cursor.
    next_of: Vec<u32>,
    cursor: usize,
}

impl BeladyEvict {
    /// Oracle over `future` for a system of `modules` modules.
    pub fn new(future: Vec<u32>, modules: usize) -> Self {
        let mut next_use = vec![u32::MAX; future.len()];
        let mut last_seen = vec![u32::MAX; modules];
        for (p, &m) in future.iter().enumerate().rev() {
            if m == NO_MODULE {
                continue;
            }
            next_use[p] = last_seen[m as usize];
            last_seen[m as usize] = p as u32;
        }
        // `last_seen` now holds each module's *first* use.
        BeladyEvict {
            future,
            next_use,
            next_of: last_seen,
            cursor: 0,
        }
    }
}

impl EvictionPolicy for BeladyEvict {
    fn on_request(&mut self, module: u32) {
        if self.future.get(self.cursor).copied() == Some(module) {
            self.next_of[module as usize] = self.next_use[self.cursor];
            self.cursor += 1;
        }
    }

    fn on_access(&mut self, _module: u32) {}

    fn on_insert(&mut self, _module: u32) {}

    fn victim(&self, entries: &[(u32, usize)]) -> usize {
        let mut best = 0usize;
        let mut best_next = 0u32;
        for (pos, &(m, _)) in entries.iter().enumerate() {
            let next = self.next_of[m as usize];
            if pos == 0 || next > best_next {
                best = pos;
                best_next = next;
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        "belady"
    }
}

/// The eviction policy an engine region runs — enum-dispatched, no `Box`.
#[derive(Debug, Clone)]
pub enum Evictor {
    /// Least recently used (the reference cache's behavior).
    Lru,
    /// Least frequently used.
    Lfu(LfuEvict),
    /// Offline oracle bound.
    Belady(BeladyEvict),
}

impl EvictionPolicy for Evictor {
    #[inline]
    fn on_request(&mut self, module: u32) {
        match self {
            Evictor::Lru => {}
            Evictor::Lfu(p) => p.on_request(module),
            Evictor::Belady(p) => p.on_request(module),
        }
    }

    #[inline]
    fn on_access(&mut self, module: u32) {
        match self {
            Evictor::Lru => {}
            Evictor::Lfu(p) => p.on_access(module),
            Evictor::Belady(p) => p.on_access(module),
        }
    }

    #[inline]
    fn on_insert(&mut self, module: u32) {
        match self {
            Evictor::Lru => {}
            Evictor::Lfu(p) => p.on_insert(module),
            Evictor::Belady(p) => p.on_insert(module),
        }
    }

    #[inline]
    fn victim(&self, entries: &[(u32, usize)]) -> usize {
        match self {
            Evictor::Lru => 0,
            Evictor::Lfu(p) => p.victim(entries),
            Evictor::Belady(p) => p.victim(entries),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            Evictor::Lru => "lru",
            Evictor::Lfu(p) => p.name(),
            Evictor::Belady(p) => p.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_prefetch_replays_future() {
        // Mirror of prefetch::tests::schedule_driven_replays_future with
        // qpsk=0, qam16=1.
        let mut p = SchedulePrefetch::new(vec![1, 0, 1]);
        assert_eq!(p.observe_and_predict(0), 1);
        assert_eq!(p.observe_and_predict(1), 0);
        assert_eq!(p.observe_and_predict(0), 1);
        assert_eq!(p.observe_and_predict(1), NO_MODULE);
    }

    #[test]
    fn markov_matches_reference_tie_break() {
        use crate::prefetch::{FirstOrderMarkov, Predictor};
        // Names chosen so index order disagrees with name order: module 0
        // is "z", module 1 is "a". lex_rank: z -> 1, a -> 0.
        let mut idx = MarkovPrefetch::new(vec![1, 0, 2]);
        let mut s = FirstOrderMarkov::new();
        let names = ["z", "a", "m"];
        // Train cur=2 -> 0 and cur=2 -> 1 once each: tied counts.
        for seq in [[2u32, 0], [2, 1], [2, 0], [2, 1]] {
            for m in seq {
                let got = idx.observe_and_predict(m);
                let want = s.observe_and_predict(names[m as usize]);
                let got_name = if got == NO_MODULE {
                    None
                } else {
                    Some(names[got as usize].to_string())
                };
                assert_eq!(got_name, want, "diverged at observation {m}");
            }
        }
        // On the tie the reference picks the smallest *name* ("a" = 1).
        assert_eq!(idx.observe_and_predict(2), 1);
    }

    #[test]
    fn lfu_victim_prefers_cold_entries() {
        let mut p = LfuEvict::new(3);
        p.on_insert(0);
        p.on_access(0);
        p.on_insert(1);
        p.on_insert(2);
        // Frequencies: 0 -> 2, 1 -> 1, 2 -> 1; tie between 1 and 2 breaks
        // toward the older (earlier) entry.
        assert_eq!(p.victim(&[(0, 10), (1, 10), (2, 10)]), 1);
    }

    #[test]
    fn belady_victim_is_farthest_next_use() {
        // Future: 0 1 0 2. At the start: next use of 0 is pos 0, of 1 is
        // pos 1, of 2 is pos 3.
        let mut p = BeladyEvict::new(vec![0, 1, 0, 2], 3);
        p.on_request(0); // now 0's next use is pos 2
        p.on_request(1); // 1 never recurs -> u32::MAX
        assert_eq!(p.victim(&[(0, 10), (1, 10), (2, 10)]), 1);
        p.on_request(0); // 0 never recurs either now
        assert_eq!(p.victim(&[(0, 10), (2, 10)]), 0);
    }

    #[test]
    fn enum_dispatch_names() {
        assert_eq!(Prefetcher::None.name(), "none");
        assert_eq!(Prefetcher::LastValue.name(), "last-value");
        assert_eq!(
            Prefetcher::Schedule(SchedulePrefetch::new(vec![])).name(),
            "schedule-driven"
        );
        assert_eq!(
            Prefetcher::Markov(MarkovPrefetch::new(vec![])).name(),
            "markov-1"
        );
        assert_eq!(Evictor::Lru.name(), "lru");
        assert_eq!(Evictor::Lfu(LfuEvict::new(0)).name(), "lfu");
        assert_eq!(
            Evictor::Belady(BeladyEvict::new(vec![], 0)).name(),
            "belady"
        );
    }
}
