//! The device loader: functional fidelity for reconfigurations.
//!
//! The [`crate::manager::ConfigurationManager`] is a *timed* model; the
//! [`DeviceLoader`] is the matching *functional* model: it owns the
//! device's [`ConfigMemory`], applies each loaded bitstream to it, tracks
//! which module is physically resident per region, and supports
//! readback-verification after a load — catching any divergence between
//! what the manager believes and what the fabric holds.

use crate::error::RtrError;
use pdr_fabric::{Bitstream, ConfigMemory, Device, ReconfigRegion};
use std::collections::BTreeMap;

/// Loader statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoaderStats {
    /// Bitstreams applied.
    pub loads: u64,
    /// Readback verifications performed.
    pub verifications: u64,
    /// Verifications that failed (should stay zero).
    pub verify_failures: u64,
}

/// Applies bitstreams to a concrete configuration memory.
#[derive(Debug)]
pub struct DeviceLoader {
    memory: ConfigMemory,
    regions: BTreeMap<String, ReconfigRegion>,
    resident: BTreeMap<String, String>,
    /// Verify every load by readback-compare.
    pub verify_loads: bool,
    stats: LoaderStats,
}

impl DeviceLoader {
    /// Loader over a blank device.
    pub fn new(device: Device) -> Self {
        DeviceLoader {
            memory: ConfigMemory::new(device),
            regions: BTreeMap::new(),
            resident: BTreeMap::new(),
            verify_loads: true,
            stats: LoaderStats::default(),
        }
    }

    /// Register a reconfigurable region (from the floorplan).
    pub fn add_region(&mut self, region: ReconfigRegion) -> Result<(), RtrError> {
        region
            .validate_on(self.memory.device())
            .map_err(RtrError::Fabric)?;
        self.regions.insert(region.name.clone(), region);
        Ok(())
    }

    /// The module physically resident in `region`, if any.
    pub fn resident(&self, region: &str) -> Option<&str> {
        self.resident.get(region).map(String::as_str)
    }

    /// Statistics.
    pub fn stats(&self) -> LoaderStats {
        self.stats
    }

    /// Direct access to the configuration memory (diagnostics, tests).
    pub fn memory(&self) -> &ConfigMemory {
        &self.memory
    }

    /// Apply `bs` as module `module` into `region`; verifies by readback
    /// when [`DeviceLoader::verify_loads`] is set.
    pub fn load(&mut self, region: &str, module: &str, bs: &Bitstream) -> Result<(), RtrError> {
        let r = self
            .regions
            .get(region)
            .ok_or_else(|| RtrError::UnknownModule(format!("region `{region}`")))?
            .clone();
        self.memory.apply(bs).map_err(RtrError::Fabric)?;
        self.stats.loads += 1;
        if self.verify_loads {
            self.stats.verifications += 1;
            let ok = self.memory.verify(&r, bs).map_err(RtrError::Fabric)?;
            if !ok {
                self.stats.verify_failures += 1;
                return Err(RtrError::Fabric(
                    pdr_fabric::FabricError::MalformedBitstream {
                        reason: format!("readback verification of `{module}` in `{region}` failed"),
                    },
                ));
            }
        }
        self.resident.insert(region.to_string(), module.to_string());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_fabric::PortProfile;

    fn setup() -> (Device, ReconfigRegion, Bitstream, Bitstream) {
        let d = Device::xc2v2000();
        let r = ReconfigRegion::new("op_dyn", 20, 4).unwrap();
        let qpsk = Bitstream::partial_for_region(&d, &r, 1);
        let qam = Bitstream::partial_for_region(&d, &r, 2);
        (d, r, qpsk, qam)
    }

    #[test]
    fn load_verify_and_track_residency() {
        let (d, r, qpsk, qam) = setup();
        let mut loader = DeviceLoader::new(d);
        loader.add_region(r).unwrap();
        assert_eq!(loader.resident("op_dyn"), None);
        loader.load("op_dyn", "mod_qpsk", &qpsk).unwrap();
        assert_eq!(loader.resident("op_dyn"), Some("mod_qpsk"));
        loader.load("op_dyn", "mod_qam16", &qam).unwrap();
        assert_eq!(loader.resident("op_dyn"), Some("mod_qam16"));
        let s = loader.stats();
        assert_eq!(s.loads, 2);
        assert_eq!(s.verifications, 2);
        assert_eq!(s.verify_failures, 0);
    }

    #[test]
    fn unknown_region_rejected() {
        let (d, _, qpsk, _) = setup();
        let mut loader = DeviceLoader::new(d);
        assert!(loader.load("ghost", "mod_qpsk", &qpsk).is_err());
    }

    #[test]
    fn wrong_device_stream_rejected() {
        let (_, r, ..) = setup();
        let other = Device::by_name("XC2V1000").unwrap();
        let foreign_region = ReconfigRegion::new("op_dyn", 10, 4).unwrap();
        let foreign = Bitstream::partial_for_region(&other, &foreign_region, 1);
        let mut loader = DeviceLoader::new(Device::xc2v2000());
        loader.add_region(r).unwrap();
        assert!(loader.load("op_dyn", "m", &foreign).is_err());
    }

    #[test]
    fn verification_can_be_disabled() {
        let (d, r, qpsk, _) = setup();
        let mut loader = DeviceLoader::new(d);
        loader.verify_loads = false;
        loader.add_region(r).unwrap();
        loader.load("op_dyn", "mod_qpsk", &qpsk).unwrap();
        assert_eq!(loader.stats().verifications, 0);
    }

    #[test]
    fn loader_composes_with_timing_model() {
        // The loader (what) and the port profile (how long) describe the
        // same event: applying the paper module functionally while the
        // timing model reports ~4 ms.
        let (d, r, qpsk, _) = setup();
        let t = PortProfile::paper_calibrated().transfer_time(qpsk.len_bytes());
        assert!((3.5..4.5).contains(&t.as_millis_f64()));
        let mut loader = DeviceLoader::new(d);
        loader.add_region(r.clone()).unwrap();
        loader.load("op_dyn", "mod_qpsk", &qpsk).unwrap();
        assert!(loader.memory().verify(&r, &qpsk).unwrap());
    }
}
