//! Error type for the runtime reconfiguration layer.

use pdr_fabric::FabricError;
use std::fmt;

/// Errors raised by the runtime reconfiguration machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtrError {
    /// A requested module has no bitstream in the store.
    UnknownModule(String),
    /// The staging cache cannot hold the bitstream even when empty.
    CacheTooSmall {
        /// Module whose stream does not fit.
        module: String,
        /// Stream size in bytes.
        needed: usize,
        /// Cache capacity in bytes.
        capacity: usize,
    },
    /// Underlying fabric error (malformed bitstream, device mismatch, ...).
    Fabric(FabricError),
    /// An internal invariant of the runtime machinery was violated; always
    /// a bug in `pdr-rtr`, surfaced as an error rather than a panic.
    Internal(String),
    /// A module was requested for a region it was not built for.
    RegionMismatch {
        /// Module name.
        module: String,
        /// Region the bitstream targets.
        built_for: String,
        /// Region the request names.
        requested: String,
    },
    /// Loading the module would co-reside two mutually exclusive modules
    /// (the §4 "exclusion" dynamic relation), which the runtime refuses.
    ExclusionViolation {
        /// Module being loaded.
        module: String,
        /// Region it was headed for.
        region: String,
        /// The already-resident module it conflicts with.
        conflicting: String,
        /// Where the conflicting module lives.
        resident_in: String,
    },
}

impl fmt::Display for RtrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtrError::UnknownModule(m) => write!(f, "no bitstream stored for module `{m}`"),
            RtrError::CacheTooSmall {
                module,
                needed,
                capacity,
            } => write!(
                f,
                "staging cache ({capacity} B) cannot hold bitstream of `{module}` ({needed} B)"
            ),
            RtrError::Fabric(e) => write!(f, "{e}"),
            RtrError::Internal(msg) => write!(f, "internal runtime invariant: {msg}"),
            RtrError::RegionMismatch {
                module,
                built_for,
                requested,
            } => write!(
                f,
                "module `{module}` was built for region `{built_for}`, requested for `{requested}`"
            ),
            RtrError::ExclusionViolation {
                module,
                region,
                conflicting,
                resident_in,
            } => write!(
                f,
                "loading `{module}` into `{region}` violates exclusion: `{conflicting}` \
                 is resident in `{resident_in}`"
            ),
        }
    }
}

impl std::error::Error for RtrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RtrError::Fabric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FabricError> for RtrError {
    fn from(e: FabricError) -> Self {
        RtrError::Fabric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = RtrError::UnknownModule("mod_qam16".into());
        assert!(e.to_string().contains("mod_qam16"));
        let f: RtrError = FabricError::UnknownDevice("X".into()).into();
        assert!(std::error::Error::source(&f).is_some());
    }
}
