//! The configuration manager — the retained *reference* implementation.
//!
//! This is the original per-region, string-keyed manager, kept verbatim
//! (also importable under its historical path `pdr_rtr::manager`) so the
//! allocation-free [`crate::engine::RtrEngine`] can be parity-gated
//! against it: `tests/rtr_equivalence.rs` and `benches/bench_rtr.rs`
//! replay identical request traces through both and assert identical
//! [`RequestTiming`] sequences and statistics.
//!
//! §5: the manager *"is in charge of the configuration bitstream which must
//! be loaded on the reconfigurable part by sending configuration
//! requests"*; the abstract adds that it *"uses prefetching technic to
//! minimize reconfiguration latency of runtime reconfiguration"*.
//!
//! [`ConfigurationManager`] is a **timed functional model**: callers (the
//! DES simulator, the experiment harness, tests) pass the current simulated
//! time to [`ConfigurationManager::request`] and get back when the region
//! is ready plus a latency decomposition. The manager owns
//!
//! * the external [`BitstreamStore`] + [`MemoryModel`] (fetch leg),
//! * the staging [`BitstreamCache`] (prefetch target, LRU),
//! * the [`ProtocolBuilder`] + port (load leg),
//! * a [`Predictor`] that it consults after every completed load to start
//!   the next speculative fetch.
//!
//! A speculative fetch occupies the memory channel from the moment the
//! prediction is made; if the next request names the predicted module, the
//! request waits only for whatever part of the fetch is still outstanding —
//! zero when the pipeline had enough slack, which is exactly the paper's
//! "prefetching hides the reconfiguration latency".

use crate::error::RtrError;
use crate::exclusion::ExclusionLedger;
use crate::loader::DeviceLoader;
use crate::prefetch::Predictor;
use crate::protocol::ProtocolBuilder;
use crate::store::{BitstreamCache, BitstreamStore, MemoryModel};
use parking_lot::Mutex;
use pdr_fabric::TimePs;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Cumulative manager statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManagerStats {
    /// Requests served (including already-loaded no-ops).
    pub requests: u64,
    /// Requests where the module was already resident in the region.
    pub already_loaded: u64,
    /// Requests served from the staging cache (incl. completed prefetches).
    pub cache_hits: u64,
    /// Requests that had to fetch from external memory on the critical path
    /// (complete misses, or partially-covered prefetches).
    pub fetches: u64,
    /// Requests whose fetch was fully covered by a prefetch in flight or in
    /// cache.
    pub prefetch_hits: u64,
    /// Total time spent waiting for fetches on the critical path.
    pub fetch_wait: TimePs,
    /// Total port load time on the critical path.
    pub load_time: TimePs,
}

/// The timing decomposition of one configuration request — `Copy`, no
/// owned strings, so the simulator's hot loop can call
/// [`ConfigurationManager::request_at`] without allocating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestTiming {
    /// Simulated time at which the region holds the module.
    pub ready_at: TimePs,
    /// `ready_at - now`: the latency the requester observed.
    pub latency: TimePs,
    /// The module was already configured (no work done).
    pub already_loaded: bool,
    /// The fetch leg was fully hidden (cache or completed prefetch).
    pub fetch_hidden: bool,
    /// Critical-path fetch wait component.
    pub fetch_wait: TimePs,
    /// Port load component.
    pub load: TimePs,
}

/// The outcome of one configuration request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestOutcome {
    /// Module requested.
    pub module: String,
    /// Simulated time at which the region holds the module.
    pub ready_at: TimePs,
    /// `ready_at - now`: the latency the requester observed.
    pub latency: TimePs,
    /// The module was already configured (no work done).
    pub already_loaded: bool,
    /// The fetch leg was fully hidden (cache or completed prefetch).
    pub fetch_hidden: bool,
    /// Critical-path fetch wait component.
    pub fetch_wait: TimePs,
    /// Port load component.
    pub load: TimePs,
}

/// The runtime configuration manager for one reconfigurable region.
pub struct ConfigurationManager {
    builder: ProtocolBuilder,
    store: BitstreamStore,
    cache: BitstreamCache,
    memory: MemoryModel,
    region: String,
    loaded: Option<String>,
    predictor: Option<Box<dyn Predictor>>,
    /// Speculative fetch in flight: (module, completes_at).
    inflight: Option<(String, TimePs)>,
    /// Optional functional-fidelity loader (shared across the regions of
    /// one device): every completed load is applied to the configuration
    /// memory and readback-verified.
    loader: Option<Arc<Mutex<DeviceLoader>>>,
    /// Optional shared exclusion ledger (§4 "exclusion" relation): loads
    /// that would co-reside excluded modules across regions are refused.
    exclusions: Option<Arc<Mutex<ExclusionLedger>>>,
    stats: ManagerStats,
}

impl std::fmt::Debug for ConfigurationManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConfigurationManager")
            .field("region", &self.region)
            .field("loaded", &self.loaded)
            .field("inflight", &self.inflight)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl ConfigurationManager {
    /// Manager for `region` with the given plumbing. Prefetching is off
    /// until a predictor is attached.
    pub fn new(
        builder: ProtocolBuilder,
        store: BitstreamStore,
        cache: BitstreamCache,
        memory: MemoryModel,
        region: impl Into<String>,
    ) -> Self {
        ConfigurationManager {
            builder,
            store,
            cache,
            memory,
            region: region.into(),
            loaded: None,
            predictor: None,
            inflight: None,
            loader: None,
            exclusions: None,
            stats: ManagerStats::default(),
        }
    }

    /// Attach a prefetch predictor (enables prefetching).
    pub fn with_predictor(mut self, p: Box<dyn Predictor>) -> Self {
        self.predictor = Some(p);
        self
    }

    /// Attach a shared device loader: every load is applied to the real
    /// configuration memory and readback-verified (functional fidelity on
    /// top of the timing model).
    pub fn with_loader(mut self, loader: Arc<Mutex<DeviceLoader>>) -> Self {
        self.loader = Some(loader);
        self
    }

    /// Attach a shared exclusion ledger: loads violating a cross-region
    /// exclusion are refused with [`RtrError::ExclusionViolation`].
    pub fn with_exclusions(mut self, ledger: Arc<Mutex<ExclusionLedger>>) -> Self {
        self.exclusions = Some(ledger);
        self
    }

    /// The currently configured module.
    pub fn loaded(&self) -> Option<&str> {
        self.loaded.as_deref()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> ManagerStats {
        self.stats
    }

    /// Region name.
    pub fn region(&self) -> &str {
        &self.region
    }

    /// Mark `module` as configured at power-up (constraints-file
    /// `load = at_start`). Consumes no simulated time.
    pub fn preload(&mut self, module: &str) -> Result<(), RtrError> {
        self.store.get(module)?;
        self.loaded = Some(module.to_string());
        Ok(())
    }

    /// Request `module` at simulated time `now`; returns when the region is
    /// ready and the latency decomposition. Launches the next speculative
    /// fetch afterwards when a predictor is attached.
    ///
    /// Convenience wrapper over [`ConfigurationManager::request_at`] that
    /// also carries the module name in the outcome.
    pub fn request(&mut self, module: &str, now: TimePs) -> Result<RequestOutcome, RtrError> {
        let t = self.request_at(module, now)?;
        Ok(RequestOutcome {
            module: module.to_string(),
            ready_at: t.ready_at,
            latency: t.latency,
            already_loaded: t.already_loaded,
            fetch_hidden: t.fetch_hidden,
            fetch_wait: t.fetch_wait,
            load: t.load,
        })
    }

    /// [`ConfigurationManager::request`] without the owned module name in
    /// the result: returns the `Copy` timing decomposition only, and
    /// allocates nothing on the already-loaded and cache-hit fast paths.
    pub fn request_at(&mut self, module: &str, now: TimePs) -> Result<RequestTiming, RtrError> {
        self.stats.requests += 1;
        if self.loaded.as_deref() == Some(module) {
            self.stats.already_loaded += 1;
            return Ok(RequestTiming {
                ready_at: now,
                latency: TimePs::ZERO,
                already_loaded: true,
                fetch_hidden: true,
                fetch_wait: TimePs::ZERO,
                load: TimePs::ZERO,
            });
        }

        // The fetch leg and the staging cache deal in *stored* bytes
        // (compressed when the store compresses); the port plan below deals
        // in raw bytes.
        let bytes = self.store.stored_size_of(module)?;
        let plan = self
            .builder
            .plan(module, &self.region, self.store.get(module)?)?;
        if let Some(ledger) = &self.exclusions {
            ledger.lock().check_and_load(&self.region, module)?;
        }

        // Fetch leg: cache, in-flight prefetch, or cold read.
        let mut fetch_wait = TimePs::ZERO;
        let mut fetch_hidden = false;
        if self.cache.lookup(module) {
            self.stats.cache_hits += 1;
            fetch_hidden = true;
        } else if let Some((m, completes_at)) = self.inflight.take() {
            if m == module {
                // The prediction was right; wait out the remainder (zero if
                // it already completed).
                fetch_wait = completes_at.saturating_sub(now);
                fetch_hidden = fetch_wait.is_zero();
                self.cache.insert(module, bytes)?;
                if fetch_hidden {
                    self.stats.prefetch_hits += 1;
                    self.stats.cache_hits += 1;
                } else {
                    self.stats.fetches += 1;
                }
            } else {
                // Wrong prediction: the speculative fetch is abandoned and
                // the real one starts now.
                fetch_wait = self.memory.read_time(bytes);
                self.cache.insert(module, bytes)?;
                self.stats.fetches += 1;
            }
        } else {
            fetch_wait = self.memory.read_time(bytes);
            self.cache.insert(module, bytes)?;
            self.stats.fetches += 1;
        }

        let ready_at = now + fetch_wait + plan.load_time;
        if let Some(loader) = &self.loader {
            loader
                .lock()
                .load(&self.region, module, self.store.get(module)?)?;
        }
        self.loaded = Some(module.to_string());
        self.stats.fetch_wait += fetch_wait;
        self.stats.load_time += plan.load_time;

        // Kick the next speculative fetch.
        if let Some(pred) = self.predictor.as_mut() {
            if let Some(next) = pred.observe_and_predict(module) {
                if next != module && !self.cache.contains(&next) {
                    if let Ok(nbytes) = self.store.stored_size_of(&next) {
                        if nbytes <= self.cache.capacity() {
                            self.inflight = Some((next, ready_at + self.memory.read_time(nbytes)));
                        }
                    }
                }
            }
        }

        Ok(RequestTiming {
            ready_at,
            latency: ready_at - now,
            already_loaded: false,
            fetch_hidden,
            fetch_wait,
            load: plan.load_time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefetch::{LastValue, ScheduleDriven};
    use pdr_fabric::{Bitstream, Device, PortProfile, ReconfigRegion};

    fn manager(
        cache_modules: usize,
        predictor: Option<Box<dyn Predictor>>,
    ) -> ConfigurationManager {
        let d = Device::xc2v2000();
        let r = ReconfigRegion::new("op_dyn", 20, 4).unwrap();
        let mut store = BitstreamStore::new();
        let qpsk = Bitstream::partial_for_region(&d, &r, 1);
        let qam = Bitstream::partial_for_region(&d, &r, 2);
        let bytes = qpsk.len_bytes();
        store.insert("mod_qpsk", qpsk);
        store.insert("mod_qam16", qam);
        let cache = BitstreamCache::sized_for(cache_modules, bytes);
        let builder = ProtocolBuilder::new(d, PortProfile::icap_virtex2());
        let mut m =
            ConfigurationManager::new(builder, store, cache, MemoryModel::paper_flash(), "op_dyn");
        if let Some(p) = predictor {
            m = m.with_predictor(p);
        }
        m
    }

    #[test]
    fn cold_request_pays_fetch_plus_load() {
        let mut m = manager(2, None);
        let out = m.request("mod_qpsk", TimePs::ZERO).unwrap();
        assert!(!out.already_loaded);
        assert!(!out.fetch_hidden);
        // ~3 ms fetch + ~1 ms load ≈ 4 ms: the paper's number.
        let ms = out.latency.as_millis_f64();
        assert!((3.5..4.6).contains(&ms), "cold latency {ms} ms");
        assert_eq!(m.loaded(), Some("mod_qpsk"));
    }

    #[test]
    fn repeat_request_is_free() {
        let mut m = manager(2, None);
        let t1 = m.request("mod_qpsk", TimePs::ZERO).unwrap().ready_at;
        let out = m.request("mod_qpsk", t1).unwrap();
        assert!(out.already_loaded);
        assert_eq!(out.latency, TimePs::ZERO);
        assert_eq!(m.stats().already_loaded, 1);
    }

    #[test]
    fn cache_hit_skips_fetch() {
        let mut m = manager(2, None);
        let t1 = m.request("mod_qpsk", TimePs::ZERO).unwrap().ready_at;
        let t2 = m.request("mod_qam16", t1).unwrap().ready_at;
        // Back to qpsk: still cached (capacity 2).
        let out = m.request("mod_qpsk", t2).unwrap();
        assert!(out.fetch_hidden);
        assert_eq!(out.fetch_wait, TimePs::ZERO);
        // Only the ~1 ms load remains.
        let ms = out.latency.as_millis_f64();
        assert!((0.8..1.3).contains(&ms), "warm latency {ms} ms");
    }

    #[test]
    fn eviction_with_tiny_cache() {
        let mut m = manager(1, None);
        let t1 = m.request("mod_qpsk", TimePs::ZERO).unwrap().ready_at;
        let t2 = m.request("mod_qam16", t1).unwrap().ready_at;
        // qpsk was evicted by qam16.
        let out = m.request("mod_qpsk", t2).unwrap();
        assert!(!out.fetch_hidden);
        assert!(out.fetch_wait > TimePs::ZERO);
    }

    #[test]
    fn correct_prefetch_hides_fetch_given_slack() {
        let seq = vec!["mod_qam16".to_string(), "mod_qpsk".to_string()];
        let mut m = manager(2, Some(Box::new(ScheduleDriven::new(seq))));
        m.preload("mod_qpsk").unwrap();
        // Warm the predictor: request qpsk (no-op but... already loaded
        // short-circuits before prediction). Request qam16 cold instead.
        let out1 = m.request("mod_qam16", TimePs::ZERO).unwrap();
        // After loading qam16, the manager prefetches mod_qpsk; give it
        // plenty of slack (10 ms later).
        let later = out1.ready_at + TimePs::from_ms(10);
        let out2 = m.request("mod_qpsk", later).unwrap();
        assert!(out2.fetch_hidden, "prefetch should hide the fetch");
        assert_eq!(out2.fetch_wait, TimePs::ZERO);
        assert_eq!(m.stats().prefetch_hits, 1);
    }

    #[test]
    fn prefetch_partially_covers_without_slack() {
        let seq = vec!["mod_qam16".to_string(), "mod_qpsk".to_string()];
        let mut m = manager(2, Some(Box::new(ScheduleDriven::new(seq))));
        let out1 = m.request("mod_qam16", TimePs::ZERO).unwrap();
        // Request immediately: the ~3 ms speculative fetch just started.
        let out2 = m.request("mod_qpsk", out1.ready_at).unwrap();
        assert!(!out2.fetch_hidden);
        assert!(out2.fetch_wait > TimePs::ZERO);
        // But never worse than a cold fetch.
        let cold = MemoryModel::paper_flash().read_time(50_000);
        assert!(out2.fetch_wait <= cold + TimePs::from_us(100));
    }

    #[test]
    fn wrong_prediction_costs_full_fetch() {
        // LastValue predicts "no change", which is always wrong on switches.
        let mut m = manager(2, Some(Box::new(LastValue)));
        let t1 = m.request("mod_qpsk", TimePs::ZERO).unwrap().ready_at;
        let out = m.request("mod_qam16", t1 + TimePs::from_ms(50)).unwrap();
        assert!(!out.fetch_hidden);
        assert!(out.fetch_wait > TimePs::from_ms(2));
    }

    #[test]
    fn unknown_module_errors() {
        let mut m = manager(2, None);
        assert!(matches!(
            m.request("ghost", TimePs::ZERO),
            Err(RtrError::UnknownModule(_))
        ));
        assert!(m.preload("ghost").is_err());
    }

    #[test]
    fn loader_keeps_configuration_memory_in_sync() {
        use crate::loader::DeviceLoader;
        use parking_lot::Mutex;
        use std::sync::Arc;

        let d = Device::xc2v2000();
        let region = ReconfigRegion::new("op_dyn", 20, 4).unwrap();
        let mut loader = DeviceLoader::new(d);
        loader.add_region(region).unwrap();
        let loader = Arc::new(Mutex::new(loader));
        let mut m = manager(2, None).with_loader(loader.clone());

        let t1 = m.request("mod_qpsk", TimePs::ZERO).unwrap().ready_at;
        assert_eq!(loader.lock().resident("op_dyn"), Some("mod_qpsk"));
        let _ = m.request("mod_qam16", t1).unwrap();
        assert_eq!(loader.lock().resident("op_dyn"), Some("mod_qam16"));
        let stats = loader.lock().stats();
        assert_eq!(stats.loads, 2);
        assert_eq!(stats.verify_failures, 0);
    }

    #[test]
    fn compressed_storage_shortens_only_the_fetch_leg() {
        let d = Device::xc2v2000();
        let r = ReconfigRegion::new("op_dyn", 20, 4).unwrap();
        let bs = Bitstream::partial_for_region(&d, &r, 7);
        let raw_bytes = bs.len_bytes();

        let build = |compressed: bool| {
            let mut store = if compressed {
                BitstreamStore::with_compression()
            } else {
                BitstreamStore::new()
            };
            store.insert("mod_qpsk", bs.clone());
            ConfigurationManager::new(
                ProtocolBuilder::new(d.clone(), PortProfile::icap_virtex2()),
                store,
                BitstreamCache::new(raw_bytes * 2),
                MemoryModel::paper_flash(),
                "op_dyn",
            )
        };
        let raw = build(false).request("mod_qpsk", TimePs::ZERO).unwrap();
        let packed = build(true).request("mod_qpsk", TimePs::ZERO).unwrap();
        // Same port-load time, much smaller fetch.
        assert_eq!(raw.load, packed.load);
        assert!(
            packed.fetch_wait.as_ps() * 3 < raw.fetch_wait.as_ps() * 2,
            "compressed fetch {} !<< raw {}",
            packed.fetch_wait,
            raw.fetch_wait
        );
        assert!(packed.latency < raw.latency);
    }

    #[test]
    fn exclusion_ledger_blocks_cross_region_conflicts() {
        use crate::exclusion::ExclusionLedger;
        use parking_lot::Mutex;
        use std::sync::Arc;

        // Two regions, one shared ledger declaring the modules exclusive.
        let d = Device::xc2v2000();
        let r1 = ReconfigRegion::new("r1", 2, 4).unwrap();
        let r2 = ReconfigRegion::new("r2", 10, 4).unwrap();
        let mut ledger = ExclusionLedger::new();
        ledger.exclude("mod_a", "mod_b");
        let ledger = Arc::new(Mutex::new(ledger));

        let build = |region: &ReconfigRegion, module: &str, fp: u64| {
            let mut store = BitstreamStore::new();
            let bs = Bitstream::partial_for_region(&d, region, fp);
            let bytes = bs.len_bytes();
            store.insert(module, bs);
            ConfigurationManager::new(
                ProtocolBuilder::new(d.clone(), PortProfile::icap_virtex2()),
                store,
                BitstreamCache::sized_for(1, bytes),
                MemoryModel::paper_flash(),
                region.name.clone(),
            )
        };
        let mut m1 = build(&r1, "mod_a", 1).with_exclusions(ledger.clone());
        let mut m2 = build(&r2, "mod_b", 2).with_exclusions(ledger.clone());

        let t1 = m1.request("mod_a", TimePs::ZERO).unwrap().ready_at;
        let err = m2.request("mod_b", t1).unwrap_err();
        assert!(matches!(err, RtrError::ExclusionViolation { .. }));
        // Releasing region r1 clears the way.
        ledger.lock().unload("r1");
        assert!(m2.request("mod_b", t1).is_ok());
    }

    #[test]
    fn stats_accumulate() {
        let mut m = manager(2, None);
        let t1 = m.request("mod_qpsk", TimePs::ZERO).unwrap().ready_at;
        let t2 = m.request("mod_qam16", t1).unwrap().ready_at;
        let _ = m.request("mod_qam16", t2).unwrap();
        let s = m.stats();
        assert_eq!(s.requests, 3);
        assert_eq!(s.fetches, 2);
        assert_eq!(s.already_loaded, 1);
        assert!(s.load_time > TimePs::ZERO);
        assert!(s.fetch_wait > s.load_time);
    }
}
