//! # pdr-rtr — runtime reconfiguration
//!
//! §5 of the paper divides run-time reconfiguration into two cooperating
//! parts: *"a configuration manager is in charge of the configuration
//! bitstream which must be loaded on the reconfigurable part by sending
//! configuration requests. Configuration requests are sent to the protocol
//! configuration builder which is in charge to construct a valid
//! reconfiguration stream in agreement with the used protocol mode (e.g.
//! selectmap)."*
//!
//! This crate implements both, plus the storage and prediction machinery the
//! paper's prefetching claim rests on:
//!
//! * [`store`] — the external bitstream memory ([`store::BitstreamStore`])
//!   with a read-bandwidth model, and a bounded on-chip staging cache
//!   ([`store::BitstreamCache`], LRU) that prefetching fills;
//! * [`protocol`] — the protocol configuration builder: validates a stream
//!   and packetizes it for a configuration port, yielding exact load times;
//! * [`prefetch`] — next-configuration predictors (schedule-driven, last
//!   value, first-order Markov) behind one trait;
//! * [`mod@reference`] — the configuration manager: a *timed functional model*
//!   (`request(module, now) → ready_at` plus a latency breakdown) with
//!   cache, prefetch hints, and statistics. This is the retained
//!   string-keyed reference implementation (also importable under its
//!   historical path [`manager`]); unit tests and parity gates drive it;
//! * [`engine`] — the allocation-free indexed runtime: one
//!   [`engine::RtrEngine`] manages *all* dynamic regions with dense
//!   module/region ids, precomputed transfer tables and pluggable
//!   [`policy`] prefetch/eviction policies, byte-identical to the
//!   reference manager on every request trace but built for millions of
//!   requests per second. The discrete-event simulator (`pdr-sim`)
//!   drives it;
//! * [`policy`] — indexed prefetch (schedule-driven, last-value, Markov)
//!   and eviction (LRU, LFU, offline Belady) policies, enum-dispatched so
//!   the hot path never boxes;
//! * [`arch`] — the Fig. 2 design space: case (a) standalone
//!   self-reconfiguration through ICAP vs case (b) processor-hosted
//!   reconfiguration through an interrupt and SelectMAP, with the manager
//!   (`M`) and protocol-builder (`P`) placements, each yielding a latency
//!   decomposition.

pub mod arch;
pub mod engine;
pub mod error;
pub mod exclusion;
pub mod loader;
pub mod policy;
pub mod prefetch;
pub mod protocol;
pub mod reference;
pub mod store;

/// Historical alias of [`mod@reference`] — the original module path of the
/// string-keyed configuration manager.
pub use self::reference as manager;

pub use arch::{LatencyBreakdown, ReconfigArchitecture};
pub use engine::{EvictionSpec, PrefetchSpec, RegionSpec, RtrEngine, RtrEngineBuilder};
pub use error::RtrError;
pub use exclusion::ExclusionLedger;
pub use loader::{DeviceLoader, LoaderStats};
pub use policy::{EvictionPolicy, Evictor, PrefetchPolicy, Prefetcher, NO_MODULE};
pub use prefetch::{FirstOrderMarkov, LastValue, Predictor, ScheduleDriven};
pub use protocol::ProtocolBuilder;
pub use reference::{ConfigurationManager, ManagerStats, RequestOutcome, RequestTiming};
pub use store::{BitstreamCache, BitstreamStore, CacheStats, MemoryModel};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::arch::{LatencyBreakdown, ReconfigArchitecture};
    pub use crate::engine::{EvictionSpec, PrefetchSpec, RegionSpec, RtrEngine, RtrEngineBuilder};
    pub use crate::error::RtrError;
    pub use crate::exclusion::ExclusionLedger;
    pub use crate::loader::{DeviceLoader, LoaderStats};
    pub use crate::policy::{EvictionPolicy, Evictor, PrefetchPolicy, Prefetcher, NO_MODULE};
    pub use crate::prefetch::{FirstOrderMarkov, LastValue, Predictor, ScheduleDriven};
    pub use crate::protocol::ProtocolBuilder;
    pub use crate::reference::{ConfigurationManager, ManagerStats, RequestOutcome, RequestTiming};
    pub use crate::store::{BitstreamCache, BitstreamStore, CacheStats, MemoryModel};
}
