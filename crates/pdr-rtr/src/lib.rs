//! # pdr-rtr — runtime reconfiguration
//!
//! §5 of the paper divides run-time reconfiguration into two cooperating
//! parts: *"a configuration manager is in charge of the configuration
//! bitstream which must be loaded on the reconfigurable part by sending
//! configuration requests. Configuration requests are sent to the protocol
//! configuration builder which is in charge to construct a valid
//! reconfiguration stream in agreement with the used protocol mode (e.g.
//! selectmap)."*
//!
//! This crate implements both, plus the storage and prediction machinery the
//! paper's prefetching claim rests on:
//!
//! * [`store`] — the external bitstream memory ([`store::BitstreamStore`])
//!   with a read-bandwidth model, and a bounded on-chip staging cache
//!   ([`store::BitstreamCache`], LRU) that prefetching fills;
//! * [`protocol`] — the protocol configuration builder: validates a stream
//!   and packetizes it for a configuration port, yielding exact load times;
//! * [`prefetch`] — next-configuration predictors (schedule-driven, last
//!   value, first-order Markov) behind one trait;
//! * [`manager`] — the configuration manager: a *timed functional model*
//!   (`request(module, now) → ready_at` plus a latency breakdown) with
//!   cache, prefetch hints, and statistics. The discrete-event simulator
//!   (`pdr-sim`) drives it; unit tests drive it directly;
//! * [`arch`] — the Fig. 2 design space: case (a) standalone
//!   self-reconfiguration through ICAP vs case (b) processor-hosted
//!   reconfiguration through an interrupt and SelectMAP, with the manager
//!   (`M`) and protocol-builder (`P`) placements, each yielding a latency
//!   decomposition.

pub mod arch;
pub mod error;
pub mod exclusion;
pub mod loader;
pub mod manager;
pub mod prefetch;
pub mod protocol;
pub mod store;

pub use arch::{LatencyBreakdown, ReconfigArchitecture};
pub use error::RtrError;
pub use exclusion::ExclusionLedger;
pub use loader::{DeviceLoader, LoaderStats};
pub use manager::{ConfigurationManager, ManagerStats, RequestOutcome, RequestTiming};
pub use prefetch::{FirstOrderMarkov, LastValue, Predictor, ScheduleDriven};
pub use protocol::ProtocolBuilder;
pub use store::{BitstreamCache, BitstreamStore, MemoryModel};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::arch::{LatencyBreakdown, ReconfigArchitecture};
    pub use crate::error::RtrError;
    pub use crate::exclusion::ExclusionLedger;
    pub use crate::loader::{DeviceLoader, LoaderStats};
    pub use crate::manager::{ConfigurationManager, ManagerStats, RequestOutcome, RequestTiming};
    pub use crate::prefetch::{FirstOrderMarkov, LastValue, Predictor, ScheduleDriven};
    pub use crate::protocol::ProtocolBuilder;
    pub use crate::store::{BitstreamCache, BitstreamStore, MemoryModel};
}
