//! The protocol configuration builder.
//!
//! §5: the builder *"is in charge to construct a valid reconfiguration
//! stream in agreement with the used protocol mode (e.g. selectmap)"*.
//! Concretely it:
//!
//! 1. validates the stored stream (structure + CRC) for the target device,
//! 2. checks the stream actually targets the requested region,
//! 3. packetizes it into port beats and reports the exact load time for the
//!    configured [`PortProfile`].
//!
//! The builder is stateless across requests; per-request work is returned as
//! a [`LoadPlan`] that the manager (and the DES simulator) consume.

use crate::error::RtrError;
use pdr_fabric::{Bitstream, BitstreamKind, Device, PortProfile, TimePs};
use serde::{Deserialize, Serialize};

/// A validated, timed plan to push one bitstream through a port.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadPlan {
    /// Module being configured.
    pub module: String,
    /// Stream length in bytes.
    pub bytes: usize,
    /// Port beats required.
    pub beats: u64,
    /// Total port time (setup + beats).
    pub load_time: TimePs,
}

/// The protocol configuration builder for one device + port pairing.
#[derive(Debug, Clone)]
pub struct ProtocolBuilder {
    device: Device,
    port: PortProfile,
    /// Validate CRC/structure on every request (costs an encode pass; can
    /// be disabled for large batch simulations).
    pub verify_streams: bool,
}

impl ProtocolBuilder {
    /// Builder for `device` driving `port`.
    pub fn new(device: Device, port: PortProfile) -> Self {
        ProtocolBuilder {
            device,
            port,
            verify_streams: true,
        }
    }

    /// The port profile in use.
    pub fn port(&self) -> &PortProfile {
        &self.port
    }

    /// The target device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Build the load plan for `module`'s bitstream targeting `region`.
    pub fn plan(&self, module: &str, region: &str, bs: &Bitstream) -> Result<LoadPlan, RtrError> {
        bs.check_device(&self.device)?;
        match &bs.kind {
            BitstreamKind::Partial { region: built_for } if built_for != region => {
                return Err(RtrError::RegionMismatch {
                    module: module.to_string(),
                    built_for: built_for.clone(),
                    requested: region.to_string(),
                });
            }
            _ => {}
        }
        if self.verify_streams {
            let bytes = bs.encode();
            Bitstream::decode(&bytes, &self.device, bs.kind.clone(), bs.module_fingerprint)?;
        }
        let bytes = bs.len_bytes();
        Ok(LoadPlan {
            module: module.to_string(),
            bytes,
            beats: self.port.beats_for(bytes),
            load_time: self.port.transfer_time(bytes),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_fabric::ReconfigRegion;

    fn setup() -> (Device, ReconfigRegion, Bitstream) {
        let d = Device::xc2v2000();
        let r = ReconfigRegion::new("op_dyn", 20, 4).unwrap();
        let bs = Bitstream::partial_for_region(&d, &r, 0xABCD);
        (d, r, bs)
    }

    #[test]
    fn plan_reports_exact_load_time() {
        let (d, _, bs) = setup();
        let pb = ProtocolBuilder::new(d, PortProfile::icap_virtex2());
        let plan = pb.plan("mod_qpsk", "op_dyn", &bs).unwrap();
        assert_eq!(plan.bytes, bs.len_bytes());
        assert_eq!(plan.beats, bs.len_bytes() as u64);
        assert_eq!(plan.load_time, pb.port().transfer_time(bs.len_bytes()));
        // Raw ICAP: ~1 ms for the paper module.
        assert!((0.8..1.3).contains(&plan.load_time.as_millis_f64()));
    }

    #[test]
    fn region_mismatch_rejected() {
        let (d, _, bs) = setup();
        let pb = ProtocolBuilder::new(d, PortProfile::icap_virtex2());
        let err = pb.plan("mod_qpsk", "other_region", &bs).unwrap_err();
        assert!(matches!(err, RtrError::RegionMismatch { .. }));
    }

    #[test]
    fn device_mismatch_rejected() {
        let (_, _, bs) = setup();
        let other = Device::by_name("XC2V1000").unwrap();
        let pb = ProtocolBuilder::new(other, PortProfile::icap_virtex2());
        assert!(pb.plan("m", "op_dyn", &bs).is_err());
    }

    #[test]
    fn full_streams_load_on_any_region_request() {
        // Full-device streams are not region-bound.
        let d = Device::xc2v2000();
        let full = Bitstream::full_for_device(&d, 7);
        let pb = ProtocolBuilder::new(d, PortProfile::selectmap_virtex2());
        assert!(pb.plan("boot", "whatever", &full).is_ok());
    }

    #[test]
    fn verification_can_be_disabled() {
        let (d, _, bs) = setup();
        let mut pb = ProtocolBuilder::new(d, PortProfile::icap_virtex2());
        pb.verify_streams = false;
        // Still produces identical timing.
        let p1 = pb.plan("m", "op_dyn", &bs).unwrap();
        pb.verify_streams = true;
        let p2 = pb.plan("m", "op_dyn", &bs).unwrap();
        assert_eq!(p1, p2);
    }
}
