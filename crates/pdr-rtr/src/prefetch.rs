//! Configuration prefetching: next-configuration predictors.
//!
//! The abstract promises a manager that *"uses prefetching technic to
//! minimize reconfiguration latency"*. Prefetching needs a prediction of
//! the next configuration; this module provides three predictors behind the
//! [`Predictor`] trait:
//!
//! * [`ScheduleDriven`] — the adequation already knows the selector trace
//!   (off-line scheduling, §3); the predictor replays it. This is the
//!   paper's setting: dynamic specification is known at a high level.
//! * [`LastValue`] — predict "no change" (cheap hardware, catches nothing
//!   on alternating workloads; the natural straw-man baseline).
//! * [`FirstOrderMarkov`] — learn the most frequent follower of each
//!   configuration on-line (what an adaptive manager can do when the trace
//!   is not known).

use std::collections::HashMap;

/// A next-configuration predictor.
pub trait Predictor {
    /// Called after `module` becomes the active configuration; returns the
    /// predicted *next* configuration to prefetch (None = no prediction).
    fn observe_and_predict(&mut self, module: &str) -> Option<String>;

    /// Predictor name (for reports).
    fn name(&self) -> &'static str;
}

/// Replays a known future sequence (off-line, schedule-driven prefetching).
#[derive(Debug, Clone)]
pub struct ScheduleDriven {
    future: Vec<String>,
    cursor: usize,
}

impl ScheduleDriven {
    /// Predictor over the known load sequence (in load order).
    pub fn new(sequence: Vec<String>) -> Self {
        ScheduleDriven {
            future: sequence,
            cursor: 0,
        }
    }
}

impl Predictor for ScheduleDriven {
    fn observe_and_predict(&mut self, module: &str) -> Option<String> {
        // Advance the cursor past the observation if it matches the
        // schedule; then the next scheduled entry is the prediction.
        if self.future.get(self.cursor).map(String::as_str) == Some(module) {
            self.cursor += 1;
        }
        self.future.get(self.cursor).cloned()
    }

    fn name(&self) -> &'static str {
        "schedule-driven"
    }
}

/// Predicts the configuration will not change.
#[derive(Debug, Clone, Default)]
pub struct LastValue;

impl Predictor for LastValue {
    fn observe_and_predict(&mut self, module: &str) -> Option<String> {
        Some(module.to_string())
    }

    fn name(&self) -> &'static str {
        "last-value"
    }
}

/// Learns, per configuration, its most frequent successor.
#[derive(Debug, Clone, Default)]
pub struct FirstOrderMarkov {
    /// follower counts: (current, next) -> count.
    counts: HashMap<(String, String), u64>,
    last: Option<String>,
}

impl FirstOrderMarkov {
    /// Fresh, untrained predictor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Predictor for FirstOrderMarkov {
    fn observe_and_predict(&mut self, module: &str) -> Option<String> {
        if let Some(prev) = self.last.take() {
            if prev != module {
                *self.counts.entry((prev, module.to_string())).or_insert(0) += 1;
            }
        }
        self.last = Some(module.to_string());
        // Most frequent follower of `module`; ties broken lexicographically
        // for determinism.
        self.counts
            .iter()
            .filter(|((cur, _), _)| cur == module)
            .max_by(|((_, a), ca), ((_, b), cb)| ca.cmp(cb).then(b.cmp(a)))
            .map(|((_, next), _)| next.clone())
    }

    fn name(&self) -> &'static str {
        "markov-1"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_driven_replays_future() {
        let mut p = ScheduleDriven::new(vec!["qam16".into(), "qpsk".into(), "qam16".into()]);
        // Initially loaded qpsk (not in the sequence head): prediction is
        // the first scheduled load.
        assert_eq!(p.observe_and_predict("qpsk").as_deref(), Some("qam16"));
        // qam16 loads; next is qpsk.
        assert_eq!(p.observe_and_predict("qam16").as_deref(), Some("qpsk"));
        assert_eq!(p.observe_and_predict("qpsk").as_deref(), Some("qam16"));
        // Sequence exhausted after the final load.
        assert_eq!(p.observe_and_predict("qam16"), None);
        assert_eq!(p.name(), "schedule-driven");
    }

    #[test]
    fn last_value_predicts_no_change() {
        let mut p = LastValue;
        assert_eq!(p.observe_and_predict("a").as_deref(), Some("a"));
        assert_eq!(p.observe_and_predict("b").as_deref(), Some("b"));
    }

    #[test]
    fn markov_learns_alternation() {
        let mut p = FirstOrderMarkov::new();
        // Train on a,b,a,b.
        assert_eq!(p.observe_and_predict("a"), None);
        let _ = p.observe_and_predict("b");
        let _ = p.observe_and_predict("a");
        let _ = p.observe_and_predict("b");
        // Now it knows a -> b and b -> a.
        assert_eq!(p.observe_and_predict("a").as_deref(), Some("b"));
        assert_eq!(p.observe_and_predict("b").as_deref(), Some("a"));
    }

    #[test]
    fn markov_prefers_most_frequent_follower() {
        let mut p = FirstOrderMarkov::new();
        for next in ["b", "c", "b"] {
            let _ = p.observe_and_predict("a");
            let _ = p.observe_and_predict(next);
        }
        assert_eq!(p.observe_and_predict("a").as_deref(), Some("b"));
    }

    #[test]
    fn markov_self_transitions_ignored() {
        let mut p = FirstOrderMarkov::new();
        let _ = p.observe_and_predict("a");
        let _ = p.observe_and_predict("a");
        let _ = p.observe_and_predict("a");
        // No cross-module history: no prediction.
        assert_eq!(p.observe_and_predict("a"), None);
    }
}
