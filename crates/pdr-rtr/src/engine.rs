//! The allocation-free indexed runtime reconfiguration engine.
//!
//! [`RtrEngine`] is the reference [`crate::reference::ConfigurationManager`]
//! rebuilt the way PR 3 rebuilt the simulator: one dense structure manages
//! *all* dynamic regions of a deployed system, with every per-request
//! string lookup, CRC validation and heap allocation hoisted to
//! construction time.
//!
//! * Module and region names are interned once into dense `u32` ids; the
//!   hot [`RtrEngine::request`] takes ids and touches only flat arrays.
//! * Per-module `{stored_bytes, fetch_time, load_time}` are precomputed
//!   into a `Copy` table — the reference re-derives all three per request
//!   (a `HashMap` walk plus an encode/decode CRC pass through the
//!   protocol builder). The engine runs the protocol builder exactly once
//!   per module at [`RtrEngineBuilder::build`] time, so a corrupt or
//!   misdirected bitstream still fails loudly, just earlier.
//! * Prefetch and eviction policies ([`crate::policy`]) are
//!   enum-dispatched — no `Box<dyn>` on the request path.
//! * The staging cache keeps its entries in a preallocated `Vec` whose
//!   capacity is fixed at build time, so steady-state requests perform
//!   zero heap allocations (proved by the counting allocator in
//!   `bench_rtr`).
//!
//! Parity contract: for any request trace, a region driven through
//! [`RtrEngine::request`] produces the *same* [`RequestTiming`] sequence,
//! [`ManagerStats`] and [`CacheStats`] as a reference manager built over
//! the same store/cache/memory/predictor (LRU eviction). A `(region,
//! module)` pair where the module belongs to another region reports
//! [`RtrError::UnknownModule`] — exactly what the reference's per-region
//! store does. `tests/rtr_equivalence.rs` fuzzes this contract;
//! `benches/bench_rtr.rs` gates it in CI together with the throughput
//! floor.

use crate::error::RtrError;
use crate::policy::{
    BeladyEvict, EvictionPolicy, Evictor, LfuEvict, MarkovPrefetch, PrefetchPolicy, Prefetcher,
    SchedulePrefetch, NO_MODULE,
};
use crate::protocol::ProtocolBuilder;
use crate::reference::{ManagerStats, RequestTiming};
use crate::store::{CacheStats, MemoryModel};
use pdr_fabric::{Bitstream, Device, PortProfile, TimePs};
use std::collections::HashMap;

/// Sentinel region index: "no region".
pub const NO_REGION: u32 = u32::MAX;

/// Which prefetch policy a region runs (resolved to an indexed
/// [`Prefetcher`] at build time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefetchSpec {
    /// No prefetching.
    None,
    /// Replay a known future load sequence (module names, in load order).
    Schedule(Vec<String>),
    /// Predict "no change".
    LastValue,
    /// First-order Markov learner.
    Markov,
}

/// Which eviction policy a region's staging cache runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvictionSpec {
    /// Least recently used — the reference cache's behavior.
    Lru,
    /// Least frequently used.
    Lfu,
    /// Offline Belady oracle over the given future request trace
    /// (module names; include repeats).
    Belady(Vec<String>),
}

/// One dynamic region's configuration for [`RtrEngineBuilder`].
#[derive(Debug, Clone)]
pub struct RegionSpec {
    /// Region name (must match each module bitstream's target region).
    pub name: String,
    /// Staging-cache capacity in bytes.
    pub cache_bytes: usize,
    /// Prefetch policy.
    pub prefetch: PrefetchSpec,
    /// Eviction policy.
    pub eviction: EvictionSpec,
    /// The region's modules and their partial bitstreams.
    pub modules: Vec<(String, Bitstream)>,
}

impl RegionSpec {
    /// Region with no prefetching and LRU eviction.
    pub fn new(name: impl Into<String>, cache_bytes: usize) -> Self {
        RegionSpec {
            name: name.into(),
            cache_bytes,
            prefetch: PrefetchSpec::None,
            eviction: EvictionSpec::Lru,
            modules: Vec::new(),
        }
    }

    /// Add a module bitstream.
    pub fn module(mut self, name: impl Into<String>, bs: Bitstream) -> Self {
        self.modules.push((name.into(), bs));
        self
    }

    /// Set the prefetch policy.
    pub fn prefetch(mut self, p: PrefetchSpec) -> Self {
        self.prefetch = p;
        self
    }

    /// Set the eviction policy.
    pub fn eviction(mut self, e: EvictionSpec) -> Self {
        self.eviction = e;
        self
    }
}

/// Precomputed per-module constants (the engine's replacement for the
/// per-request `BitstreamStore` + `ProtocolBuilder` work).
#[derive(Debug, Clone, Copy)]
struct ModuleInfo {
    /// Owning region id.
    region: u32,
    /// Stored size in bytes — what the fetch leg and the staging cache
    /// account (compressed when the builder compresses).
    stored_bytes: usize,
    /// Memory read time for `stored_bytes` (the fetch leg).
    fetch_time: TimePs,
    /// Port transfer time for the raw stream (the load leg).
    load_time: TimePs,
}

/// The staging cache of one region: the reference
/// [`crate::store::BitstreamCache`] re-keyed on module ids with a
/// pluggable eviction victim. Entries live in a `Vec` preallocated to the
/// region's module count, most recently used last — steady-state lookups
/// and inserts never allocate.
#[derive(Debug, Clone)]
struct EngineCache {
    capacity_bytes: usize,
    used_bytes: usize,
    /// (module, bytes), most recently used last.
    entries: Vec<(u32, usize)>,
    stats: CacheStats,
}

impl EngineCache {
    fn new(capacity_bytes: usize, max_entries: usize) -> Self {
        EngineCache {
            capacity_bytes,
            used_bytes: 0,
            entries: Vec::with_capacity(max_entries),
            stats: CacheStats::default(),
        }
    }

    #[inline]
    fn lookup(&mut self, module: u32, evict: &mut Evictor) -> bool {
        if let Some(pos) = self.entries.iter().position(|&(m, _)| m == module) {
            let e = self.entries.remove(pos);
            self.entries.push(e);
            self.stats.hits += 1;
            evict.on_access(module);
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    #[inline]
    fn contains(&self, module: u32) -> bool {
        self.entries.iter().any(|&(m, _)| m == module)
    }

    /// Insert `module`, evicting policy-chosen victims while over
    /// capacity. Returns `false` when `bytes` exceeds the capacity
    /// outright (the caller turns that into [`RtrError::CacheTooSmall`]).
    #[inline]
    fn insert(&mut self, module: u32, bytes: usize, evict: &mut Evictor) -> bool {
        if bytes > self.capacity_bytes {
            return false;
        }
        if let Some(pos) = self.entries.iter().position(|&(m, _)| m == module) {
            let (_, old) = self.entries.remove(pos);
            self.used_bytes -= old;
        }
        while self.used_bytes + bytes > self.capacity_bytes {
            let victim = evict.victim(&self.entries);
            let (_, evicted) = self.entries.remove(victim);
            self.used_bytes -= evicted;
            self.stats.evictions += 1;
        }
        self.entries.push((module, bytes));
        self.used_bytes += bytes;
        evict.on_insert(module);
        true
    }
}

/// Flat per-region state.
#[derive(Debug, Clone)]
struct RegionState {
    name: String,
    /// Module configured on the fabric ([`NO_MODULE`] at power-up).
    resident: u32,
    /// Module recorded in the exclusion ledger (requests record here;
    /// [`RtrEngine::preload`] intentionally does not, mirroring the
    /// reference where `preload` never touches the shared ledger).
    ledger_resident: u32,
    /// Speculative fetch in flight ([`NO_MODULE`] when idle) and when it
    /// completes.
    inflight_mod: u32,
    inflight_at: TimePs,
    cache: EngineCache,
    prefetch: Prefetcher,
    evict: Evictor,
    stats: ManagerStats,
}

/// Builder for [`RtrEngine`]: collects regions, modules and policies,
/// then validates every bitstream once and freezes the dense tables.
#[derive(Debug, Clone)]
pub struct RtrEngineBuilder {
    device: Device,
    port: PortProfile,
    memory: MemoryModel,
    compressed: bool,
    verify_streams: bool,
    regions: Vec<RegionSpec>,
    exclusions: Vec<(String, String)>,
}

impl RtrEngineBuilder {
    /// Engine for `device` driving `port`, fetching from `memory`.
    pub fn new(device: Device, port: PortProfile, memory: MemoryModel) -> Self {
        RtrEngineBuilder {
            device,
            port,
            memory,
            compressed: false,
            verify_streams: true,
            regions: Vec::new(),
            exclusions: Vec::new(),
        }
    }

    /// Store zero-RLE-compressed images: the fetch leg (and cache
    /// accounting) shrinks, the port load leg is unchanged.
    pub fn compressed_storage(mut self, on: bool) -> Self {
        self.compressed = on;
        self
    }

    /// Validate structure + CRC of every stream at build time (on by
    /// default; the engine never re-validates per request).
    pub fn verify_streams(mut self, on: bool) -> Self {
        self.verify_streams = on;
        self
    }

    /// Add a dynamic region.
    pub fn region(mut self, spec: RegionSpec) -> Self {
        self.regions.push(spec);
        self
    }

    /// Declare two modules mutually exclusive across regions.
    pub fn exclude(mut self, a: impl Into<String>, b: impl Into<String>) -> Self {
        let (a, b) = (a.into(), b.into());
        if a != b {
            self.exclusions.push((a, b));
        }
        self
    }

    /// Validate every module once and freeze the engine.
    ///
    /// Fails with the same errors the reference manager would report per
    /// request: device mismatch, CRC corruption, or a bitstream built for
    /// a different region than the one it was registered under.
    pub fn build(self) -> Result<RtrEngine, RtrError> {
        let mut builder = ProtocolBuilder::new(self.device, self.port);
        builder.verify_streams = self.verify_streams;

        let mut module_names: Vec<String> = Vec::new();
        let mut module_ids: HashMap<String, u32> = HashMap::new();
        let mut modules: Vec<ModuleInfo> = Vec::new();
        let mut region_ids: HashMap<String, u32> = HashMap::new();

        // First pass: intern everything and precompute the module table
        // (validating each stream exactly once).
        for (rid, spec) in self.regions.iter().enumerate() {
            if region_ids.insert(spec.name.clone(), rid as u32).is_some() {
                return Err(RtrError::Internal(format!(
                    "region `{}` declared twice",
                    spec.name
                )));
            }
            for (mname, bs) in &spec.modules {
                if module_ids.contains_key(mname) {
                    return Err(RtrError::Internal(format!(
                        "module `{mname}` declared twice"
                    )));
                }
                let plan = builder.plan(mname, &spec.name, bs)?;
                let stored_bytes = if self.compressed {
                    pdr_fabric::compress::compress(&bs.encode()).len()
                } else {
                    bs.len_bytes()
                };
                module_ids.insert(mname.clone(), modules.len() as u32);
                module_names.push(mname.clone());
                modules.push(ModuleInfo {
                    region: rid as u32,
                    stored_bytes,
                    fetch_time: self.memory.read_time(stored_bytes),
                    load_time: plan.load_time,
                });
            }
        }

        let n = modules.len();
        // Lexicographic name ranks (the Markov tie-break compares names).
        let mut lex_rank = vec![0u32; n];
        {
            let mut order: Vec<u32> = (0..n as u32).collect();
            order
                .sort_unstable_by(|&a, &b| module_names[a as usize].cmp(&module_names[b as usize]));
            for (rank, &m) in order.iter().enumerate() {
                lex_rank[m as usize] = rank as u32;
            }
        }

        // Exclusion bitset (row-major n×n). Pairs naming unknown modules
        // can never be resident and are dropped, as in the reference
        // ledger where such names simply never match.
        let words_per_row = n.div_ceil(64).max(1);
        let mut excl = vec![0u64; words_per_row * n.max(1)];
        let mut any_exclusions = false;
        for (a, b) in &self.exclusions {
            if let (Some(&ia), Some(&ib)) = (module_ids.get(a), module_ids.get(b)) {
                let (ia, ib) = (ia as usize, ib as usize);
                excl[ia * words_per_row + ib / 64] |= 1 << (ib % 64);
                excl[ib * words_per_row + ia / 64] |= 1 << (ia % 64);
                any_exclusions = true;
            }
        }

        let resolve = |names: &[String]| -> Vec<u32> {
            names
                .iter()
                .map(|m| module_ids.get(m).copied().unwrap_or(NO_MODULE))
                .collect()
        };

        // Second pass: freeze per-region state with resolved policies.
        let mut regions: Vec<RegionState> = Vec::with_capacity(self.regions.len());
        for spec in &self.regions {
            let prefetch = match &spec.prefetch {
                PrefetchSpec::None => Prefetcher::None,
                PrefetchSpec::Schedule(future) => {
                    Prefetcher::Schedule(SchedulePrefetch::new(resolve(future)))
                }
                PrefetchSpec::LastValue => Prefetcher::LastValue,
                PrefetchSpec::Markov => Prefetcher::Markov(MarkovPrefetch::new(lex_rank.clone())),
            };
            let evict = match &spec.eviction {
                EvictionSpec::Lru => Evictor::Lru,
                EvictionSpec::Lfu => Evictor::Lfu(LfuEvict::new(n)),
                EvictionSpec::Belady(future) => {
                    Evictor::Belady(BeladyEvict::new(resolve(future), n))
                }
            };
            regions.push(RegionState {
                name: spec.name.clone(),
                resident: NO_MODULE,
                ledger_resident: NO_MODULE,
                inflight_mod: NO_MODULE,
                inflight_at: TimePs::ZERO,
                cache: EngineCache::new(spec.cache_bytes, spec.modules.len()),
                prefetch,
                evict,
                stats: ManagerStats::default(),
            });
        }

        let mut regions_by_name: Vec<u32> = (0..regions.len() as u32).collect();
        regions_by_name
            .sort_unstable_by(|&a, &b| regions[a as usize].name.cmp(&regions[b as usize].name));

        Ok(RtrEngine {
            modules,
            module_names,
            module_ids,
            region_ids,
            regions,
            regions_by_name,
            excl,
            words_per_row,
            any_exclusions,
            refusals: 0,
        })
    }
}

/// The indexed runtime reconfiguration engine over all dynamic regions.
///
/// Construct with [`RtrEngineBuilder`]; drive with [`RtrEngine::request`]
/// (ids) or [`RtrEngine::request_named`] (names, resolving per call).
#[derive(Debug, Clone)]
pub struct RtrEngine {
    modules: Vec<ModuleInfo>,
    module_names: Vec<String>,
    module_ids: HashMap<String, u32>,
    region_ids: HashMap<String, u32>,
    regions: Vec<RegionState>,
    /// Region ids sorted by region name — the exclusion scan iterates in
    /// name order like the reference `BTreeMap` ledger, so the *first*
    /// violation reported is the same one.
    regions_by_name: Vec<u32>,
    /// Row-major module×module exclusion bitset.
    excl: Vec<u64>,
    words_per_row: usize,
    any_exclusions: bool,
    refusals: u64,
}

impl RtrEngine {
    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Number of modules (across all regions).
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }

    /// Dense id of `region`.
    pub fn region_index(&self, region: &str) -> Option<u32> {
        self.region_ids.get(region).copied()
    }

    /// Dense id of `module`.
    pub fn module_index(&self, module: &str) -> Option<u32> {
        self.module_ids.get(module).copied()
    }

    /// Name of region `region`.
    pub fn region_name(&self, region: u32) -> &str {
        &self.regions[region as usize].name
    }

    /// Name of module `module`.
    pub fn module_name(&self, module: u32) -> &str {
        &self.module_names[module as usize]
    }

    /// Owning region of module `module`.
    pub fn region_of(&self, module: u32) -> u32 {
        self.modules[module as usize].region
    }

    /// The module currently configured in `region`.
    pub fn loaded(&self, region: u32) -> Option<&str> {
        let r = self.regions[region as usize].resident;
        (r != NO_MODULE).then(|| self.module_names[r as usize].as_str())
    }

    /// Cumulative manager statistics of `region`.
    pub fn stats(&self, region: u32) -> ManagerStats {
        self.regions[region as usize].stats
    }

    /// Staging-cache statistics of `region`.
    pub fn cache_stats(&self, region: u32) -> CacheStats {
        self.regions[region as usize].cache.stats
    }

    /// Prefetch / eviction policy names of `region` (for reports).
    pub fn policy_names(&self, region: u32) -> (&'static str, &'static str) {
        let st = &self.regions[region as usize];
        (st.prefetch.name(), st.evict.name())
    }

    /// Cross-region exclusion loads refused so far.
    pub fn refusals(&self) -> u64 {
        self.refusals
    }

    /// Are `a` and `b` declared exclusive?
    #[inline]
    fn excluded(&self, a: u32, b: u32) -> bool {
        let word = self.excl[a as usize * self.words_per_row + b as usize / 64];
        word >> (b % 64) & 1 != 0
    }

    /// Mark `module` as configured in `region` at power-up (constraints
    /// `load = at_start`). Consumes no simulated time and — like the
    /// reference — does not register in the exclusion ledger.
    pub fn preload(&mut self, region: u32, module: u32) -> Result<(), RtrError> {
        let m = module as usize;
        if m >= self.modules.len() || self.modules[m].region != region {
            return Err(RtrError::UnknownModule(self.describe_module(module)));
        }
        self.regions[region as usize].resident = module;
        Ok(())
    }

    fn describe_module(&self, module: u32) -> String {
        self.module_names
            .get(module as usize)
            .cloned()
            .unwrap_or_else(|| format!("#{module}"))
    }

    /// Resolve names and [`RtrEngine::request`]. Unknown module names
    /// fail with [`RtrError::UnknownModule`] (like the reference store);
    /// unknown regions are a caller bug and fail with
    /// [`RtrError::Internal`].
    pub fn request_named(
        &mut self,
        region: &str,
        module: &str,
        now: TimePs,
    ) -> Result<RequestTiming, RtrError> {
        let Some(rid) = self.region_index(region) else {
            return Err(RtrError::Internal(format!("unknown region `{region}`")));
        };
        self.request_in(rid, module, now)
    }

    /// [`RtrEngine::request`] with the module given by name (the region
    /// already resolved to its id). Unknown module names fail with
    /// [`RtrError::UnknownModule`], charging the request like the
    /// reference manager does.
    pub fn request_in(
        &mut self,
        region: u32,
        module: &str,
        now: TimePs,
    ) -> Result<RequestTiming, RtrError> {
        match self.module_index(module) {
            Some(mid) => self.request(region, mid, now),
            None => {
                // The reference charges the request before discovering the
                // store has no such module.
                self.regions[region as usize].stats.requests += 1;
                Err(RtrError::UnknownModule(module.to_string()))
            }
        }
    }

    /// Request `module` in `region` at simulated time `now`; returns when
    /// the region is ready plus the latency decomposition, and launches
    /// the region's next speculative fetch.
    ///
    /// Semantics are step-for-step those of
    /// [`crate::reference::ConfigurationManager::request_at`]; the
    /// steady-state path performs no heap allocation.
    pub fn request(
        &mut self,
        region: u32,
        module: u32,
        now: TimePs,
    ) -> Result<RequestTiming, RtrError> {
        let r = region as usize;
        {
            let st = &mut self.regions[r];
            st.stats.requests += 1;
            // The eviction oracle tracks the full request trace (repeats
            // included), so advance it before the short-circuit.
            st.evict.on_request(module);
            if st.resident == module {
                st.stats.already_loaded += 1;
                return Ok(RequestTiming {
                    ready_at: now,
                    latency: TimePs::ZERO,
                    already_loaded: true,
                    fetch_hidden: true,
                    fetch_wait: TimePs::ZERO,
                    load: TimePs::ZERO,
                });
            }
        }

        let m = module as usize;
        if m >= self.modules.len() || self.modules[m].region != region {
            // Outside this region's store: the reference reports the
            // module unknown (its per-region store has never heard of it).
            return Err(RtrError::UnknownModule(self.describe_module(module)));
        }
        let info = self.modules[m];

        if self.any_exclusions {
            for &or in &self.regions_by_name {
                if or == region {
                    continue;
                }
                let res = self.regions[or as usize].ledger_resident;
                if res != NO_MODULE && self.excluded(module, res) {
                    self.refusals += 1;
                    return Err(RtrError::ExclusionViolation {
                        module: self.module_names[m].clone(),
                        region: self.regions[r].name.clone(),
                        conflicting: self.module_names[res as usize].clone(),
                        resident_in: self.regions[or as usize].name.clone(),
                    });
                }
            }
        }
        self.regions[r].ledger_resident = module;

        // Fetch leg: cache, in-flight prefetch, or cold read.
        let st = &mut self.regions[r];
        let mut fetch_wait = TimePs::ZERO;
        let mut fetch_hidden = false;
        if st.cache.lookup(module, &mut st.evict) {
            st.stats.cache_hits += 1;
            fetch_hidden = true;
        } else if st.inflight_mod != NO_MODULE {
            let (im, completes_at) = (st.inflight_mod, st.inflight_at);
            st.inflight_mod = NO_MODULE;
            if im == module {
                // The prediction was right; wait out the remainder (zero
                // if it already completed).
                fetch_wait = completes_at.saturating_sub(now);
                fetch_hidden = fetch_wait.is_zero();
                if !st.cache.insert(module, info.stored_bytes, &mut st.evict) {
                    return Err(RtrError::CacheTooSmall {
                        module: self.module_names[m].clone(),
                        needed: info.stored_bytes,
                        capacity: st.cache.capacity_bytes,
                    });
                }
                if fetch_hidden {
                    st.stats.prefetch_hits += 1;
                    st.stats.cache_hits += 1;
                } else {
                    st.stats.fetches += 1;
                }
            } else {
                // Wrong prediction: the speculative fetch is abandoned
                // and the real one starts now.
                fetch_wait = info.fetch_time;
                if !st.cache.insert(module, info.stored_bytes, &mut st.evict) {
                    return Err(RtrError::CacheTooSmall {
                        module: self.module_names[m].clone(),
                        needed: info.stored_bytes,
                        capacity: st.cache.capacity_bytes,
                    });
                }
                st.stats.fetches += 1;
            }
        } else {
            fetch_wait = info.fetch_time;
            if !st.cache.insert(module, info.stored_bytes, &mut st.evict) {
                return Err(RtrError::CacheTooSmall {
                    module: self.module_names[m].clone(),
                    needed: info.stored_bytes,
                    capacity: st.cache.capacity_bytes,
                });
            }
            st.stats.fetches += 1;
        }

        let ready_at = now + fetch_wait + info.load_time;
        st.resident = module;
        st.stats.fetch_wait += fetch_wait;
        st.stats.load_time += info.load_time;

        // Kick the next speculative fetch.
        let next = st.prefetch.observe_and_predict(module);
        if next != NO_MODULE && next != module && !st.cache.contains(next) {
            let ni = self.modules[next as usize];
            // Only this region's own store can feed its prefetcher (the
            // reference consults its per-region store), and only modules
            // that fit the cache are worth fetching speculatively.
            if ni.region == region && ni.stored_bytes <= st.cache.capacity_bytes {
                st.inflight_mod = next;
                st.inflight_at = ready_at + ni.fetch_time;
            }
        }

        Ok(RequestTiming {
            ready_at,
            latency: ready_at - now,
            already_loaded: false,
            fetch_hidden,
            fetch_wait,
            load: info.load_time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_fabric::ReconfigRegion;

    fn paper_engine(cache_modules: usize, prefetch: PrefetchSpec) -> RtrEngine {
        let d = Device::xc2v2000();
        let r = ReconfigRegion::new("op_dyn", 20, 4).unwrap();
        let qpsk = Bitstream::partial_for_region(&d, &r, 1);
        let qam = Bitstream::partial_for_region(&d, &r, 2);
        let bytes = qpsk.len_bytes();
        RtrEngineBuilder::new(d, PortProfile::icap_virtex2(), MemoryModel::paper_flash())
            .region(
                RegionSpec::new("op_dyn", cache_modules * bytes)
                    .module("mod_qpsk", qpsk)
                    .module("mod_qam16", qam)
                    .prefetch(prefetch),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn cold_request_pays_fetch_plus_load() {
        let mut e = paper_engine(2, PrefetchSpec::None);
        let qpsk = e.module_index("mod_qpsk").unwrap();
        let out = e.request(0, qpsk, TimePs::ZERO).unwrap();
        assert!(!out.already_loaded && !out.fetch_hidden);
        let ms = out.latency.as_millis_f64();
        assert!((3.5..4.6).contains(&ms), "cold latency {ms} ms");
        assert_eq!(e.loaded(0), Some("mod_qpsk"));
    }

    #[test]
    fn repeat_request_is_free() {
        let mut e = paper_engine(2, PrefetchSpec::None);
        let qpsk = e.module_index("mod_qpsk").unwrap();
        let t1 = e.request(0, qpsk, TimePs::ZERO).unwrap().ready_at;
        let out = e.request(0, qpsk, t1).unwrap();
        assert!(out.already_loaded);
        assert_eq!(out.latency, TimePs::ZERO);
        assert_eq!(e.stats(0).already_loaded, 1);
    }

    #[test]
    fn correct_prefetch_hides_fetch_given_slack() {
        let seq = vec!["mod_qam16".to_string(), "mod_qpsk".to_string()];
        let mut e = paper_engine(2, PrefetchSpec::Schedule(seq));
        let (qpsk, qam) = (
            e.module_index("mod_qpsk").unwrap(),
            e.module_index("mod_qam16").unwrap(),
        );
        e.preload(0, qpsk).unwrap();
        let out1 = e.request(0, qam, TimePs::ZERO).unwrap();
        let later = out1.ready_at + TimePs::from_ms(10);
        let out2 = e.request(0, qpsk, later).unwrap();
        assert!(out2.fetch_hidden, "prefetch should hide the fetch");
        assert_eq!(out2.fetch_wait, TimePs::ZERO);
        assert_eq!(e.stats(0).prefetch_hits, 1);
    }

    #[test]
    fn request_named_resolves_and_rejects() {
        let mut e = paper_engine(2, PrefetchSpec::None);
        assert!(e.request_named("op_dyn", "mod_qpsk", TimePs::ZERO).is_ok());
        assert!(matches!(
            e.request_named("op_dyn", "ghost", TimePs::ZERO),
            Err(RtrError::UnknownModule(_))
        ));
        // The failed request was still charged, like the reference.
        assert_eq!(e.stats(0).requests, 2);
        assert!(matches!(
            e.request_named("nowhere", "mod_qpsk", TimePs::ZERO),
            Err(RtrError::Internal(_))
        ));
    }

    #[test]
    fn cross_region_module_is_unknown_here() {
        let d = Device::xc2v2000();
        let r1 = ReconfigRegion::new("r1", 2, 4).unwrap();
        let r2 = ReconfigRegion::new("r2", 10, 4).unwrap();
        let a = Bitstream::partial_for_region(&d, &r1, 1);
        let b = Bitstream::partial_for_region(&d, &r2, 2);
        let bytes = a.len_bytes();
        let mut e =
            RtrEngineBuilder::new(d, PortProfile::icap_virtex2(), MemoryModel::paper_flash())
                .region(RegionSpec::new("r1", bytes).module("mod_a", a))
                .region(RegionSpec::new("r2", bytes).module("mod_b", b))
                .build()
                .unwrap();
        let (r1, mod_b) = (
            e.region_index("r1").unwrap(),
            e.module_index("mod_b").unwrap(),
        );
        assert!(matches!(
            e.request(r1, mod_b, TimePs::ZERO),
            Err(RtrError::UnknownModule(_))
        ));
        assert!(e.preload(r1, mod_b).is_err());
    }

    #[test]
    fn exclusion_blocks_cross_region_conflicts() {
        let d = Device::xc2v2000();
        let r1 = ReconfigRegion::new("r1", 2, 4).unwrap();
        let r2 = ReconfigRegion::new("r2", 10, 4).unwrap();
        let a = Bitstream::partial_for_region(&d, &r1, 1);
        let b = Bitstream::partial_for_region(&d, &r2, 2);
        let bytes = a.len_bytes();
        let mut e =
            RtrEngineBuilder::new(d, PortProfile::icap_virtex2(), MemoryModel::paper_flash())
                .region(RegionSpec::new("r1", bytes).module("mod_a", a))
                .region(RegionSpec::new("r2", bytes).module("mod_b", b))
                .exclude("mod_a", "mod_b")
                .build()
                .unwrap();
        let (ra, rb) = (e.region_index("r1").unwrap(), e.region_index("r2").unwrap());
        let (ma, mb) = (
            e.module_index("mod_a").unwrap(),
            e.module_index("mod_b").unwrap(),
        );
        let t1 = e.request(ra, ma, TimePs::ZERO).unwrap().ready_at;
        let err = e.request(rb, mb, t1).unwrap_err();
        assert!(matches!(err, RtrError::ExclusionViolation { .. }));
        assert_eq!(e.refusals(), 1);
        // Preload never registers in the ledger: a preloaded conflicting
        // module does not block (reference behavior).
        assert!(e.preload(rb, mb).is_ok());
    }

    #[test]
    fn mismatched_bitstream_rejected_at_build() {
        let d = Device::xc2v2000();
        let r1 = ReconfigRegion::new("r1", 2, 4).unwrap();
        let bs = Bitstream::partial_for_region(&d, &r1, 1);
        let bytes = bs.len_bytes();
        let err = RtrEngineBuilder::new(d, PortProfile::icap_virtex2(), MemoryModel::paper_flash())
            .region(RegionSpec::new("other", bytes).module("mod_a", bs))
            .build()
            .unwrap_err();
        assert!(matches!(err, RtrError::RegionMismatch { .. }));
    }

    #[test]
    fn compressed_storage_shortens_only_the_fetch_leg() {
        let d = Device::xc2v2000();
        let r = ReconfigRegion::new("op_dyn", 20, 4).unwrap();
        let bs = Bitstream::partial_for_region(&d, &r, 7);
        let bytes = bs.len_bytes();
        let build = |compressed: bool| {
            RtrEngineBuilder::new(
                d.clone(),
                PortProfile::icap_virtex2(),
                MemoryModel::paper_flash(),
            )
            .compressed_storage(compressed)
            .region(RegionSpec::new("op_dyn", bytes * 2).module("mod_x", bs.clone()))
            .build()
            .unwrap()
        };
        let raw = build(false).request(0, 0, TimePs::ZERO).unwrap();
        let packed = build(true).request(0, 0, TimePs::ZERO).unwrap();
        assert_eq!(raw.load, packed.load);
        assert!(packed.fetch_wait < raw.fetch_wait);
    }

    #[test]
    fn duplicate_declarations_rejected() {
        let d = Device::xc2v2000();
        let r = ReconfigRegion::new("op_dyn", 20, 4).unwrap();
        let bs = Bitstream::partial_for_region(&d, &r, 1);
        let bytes = bs.len_bytes();
        let err = RtrEngineBuilder::new(
            d.clone(),
            PortProfile::icap_virtex2(),
            MemoryModel::paper_flash(),
        )
        .region(
            RegionSpec::new("op_dyn", bytes)
                .module("m", bs.clone())
                .module("m", bs.clone()),
        )
        .build()
        .unwrap_err();
        assert!(matches!(err, RtrError::Internal(_)));
    }
}
