//! Runtime enforcement of the §4 *exclusion* dynamic relation.
//!
//! The constraints file may declare modules that "must never be resident
//! simultaneously" — even across *different* regions (e.g. two modules
//! that share an external pin or exceed a power budget together). The
//! scheduler avoids such co-residency; the [`ExclusionLedger`] is the
//! runtime guard that *proves* it: every configuration manager registers
//! its loads, and a load whose module is excluded against a module
//! resident elsewhere fails loudly instead of silently producing an
//! illegal configuration.

use crate::error::RtrError;
use std::collections::{BTreeMap, BTreeSet};

/// A shared ledger of resident modules and exclusion pairs.
#[derive(Debug, Default)]
pub struct ExclusionLedger {
    /// Symmetric exclusion pairs (stored with a <= b).
    pairs: BTreeSet<(String, String)>,
    /// region -> resident module.
    resident: BTreeMap<String, String>,
    /// Violations refused (diagnostics).
    refusals: u64,
}

impl ExclusionLedger {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare `a` and `b` mutually exclusive (symmetric).
    pub fn exclude(&mut self, a: &str, b: &str) {
        if a == b {
            return;
        }
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        self.pairs.insert((x.to_string(), y.to_string()));
    }

    /// Import every exclusion pair of a constraints file.
    pub fn from_constraints(constraints: &pdr_graph::ConstraintsFile) -> Self {
        let mut ledger = ExclusionLedger::new();
        for m in constraints.modules() {
            for other in &m.exclusive_with {
                ledger.exclude(&m.module, other);
            }
        }
        ledger
    }

    /// Are `a` and `b` declared exclusive?
    pub fn excluded(&self, a: &str, b: &str) -> bool {
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        self.pairs.contains(&(x.to_string(), y.to_string()))
    }

    /// The module currently resident in `region`, per the ledger.
    pub fn resident(&self, region: &str) -> Option<&str> {
        self.resident.get(region).map(String::as_str)
    }

    /// Loads refused so far.
    pub fn refusals(&self) -> u64 {
        self.refusals
    }

    /// Record that `region` is about to load `module`; fails when a module
    /// exclusive with it is resident in a *different* region (the region's
    /// own previous occupant is being replaced, so it never conflicts).
    pub fn check_and_load(&mut self, region: &str, module: &str) -> Result<(), RtrError> {
        for (other_region, other_module) in &self.resident {
            if other_region != region && self.excluded(module, other_module) {
                self.refusals += 1;
                return Err(RtrError::ExclusionViolation {
                    module: module.to_string(),
                    region: region.to_string(),
                    conflicting: other_module.clone(),
                    resident_in: other_region.clone(),
                });
            }
        }
        self.resident.insert(region.to_string(), module.to_string());
        Ok(())
    }

    /// Explicitly unload whatever `region` holds.
    pub fn unload(&mut self, region: &str) {
        self.resident.remove(region);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_graph::constraints::ModuleConstraints;
    use pdr_graph::ConstraintsFile;

    #[test]
    fn exclusion_is_symmetric_and_irreflexive() {
        let mut l = ExclusionLedger::new();
        l.exclude("a", "b");
        assert!(l.excluded("a", "b"));
        assert!(l.excluded("b", "a"));
        l.exclude("c", "c");
        assert!(!l.excluded("c", "c"));
    }

    #[test]
    fn cross_region_conflict_refused() {
        let mut l = ExclusionLedger::new();
        l.exclude("hot_a", "hot_b");
        l.check_and_load("r1", "hot_a").unwrap();
        let err = l.check_and_load("r2", "hot_b").unwrap_err();
        assert!(matches!(err, RtrError::ExclusionViolation { .. }));
        assert!(err.to_string().contains("hot_a"));
        assert_eq!(l.refusals(), 1);
        // Unloading r1 clears the conflict.
        l.unload("r1");
        l.check_and_load("r2", "hot_b").unwrap();
        assert_eq!(l.resident("r2"), Some("hot_b"));
    }

    #[test]
    fn same_region_replacement_never_conflicts() {
        let mut l = ExclusionLedger::new();
        l.exclude("a", "b");
        l.check_and_load("r", "a").unwrap();
        // Replacing a with its own excluded partner in the same region is
        // fine: the old module leaves as the new one arrives.
        l.check_and_load("r", "b").unwrap();
        assert_eq!(l.resident("r"), Some("b"));
    }

    #[test]
    fn non_excluded_modules_coexist() {
        let mut l = ExclusionLedger::new();
        l.exclude("a", "b");
        l.check_and_load("r1", "a").unwrap();
        l.check_and_load("r2", "c").unwrap();
        assert_eq!(l.refusals(), 0);
    }

    #[test]
    fn built_from_constraints_file() {
        let mut f = ConstraintsFile::new();
        let mut a = ModuleConstraints::new("mod_a", "r1");
        a.exclusive_with = vec!["mod_b".into()];
        f.add(a).unwrap();
        f.add(ModuleConstraints::new("mod_b", "r2")).unwrap();
        let l = ExclusionLedger::from_constraints(&f);
        assert!(l.excluded("mod_a", "mod_b"));
        assert!(!l.excluded("mod_a", "mod_c"));
    }
}
