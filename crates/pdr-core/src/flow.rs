//! The [`DesignFlow`] builder: Fig. 3 end to end.

use crate::error::FlowError;
use pdr_adequation::executive::generate_executive;
use pdr_adequation::{adequate, AdequationOptions, AdequationResult, Executive};
use pdr_codegen::{generate_design, ucf, vhdl, CostModel, GeneratedDesign};
use pdr_fabric::Device;
use pdr_graph::prelude::*;
use pdr_ir::{IrExecutive, SymbolTable};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Every artifact the flow produces, stage by stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowArtifacts {
    /// Stage 1: mapping + schedule (the adequation).
    pub adequation: AdequationResult,
    /// Stage 2: the synchronized executive (macro-code) — the
    /// human-readable render/golden surface.
    pub executive: Executive,
    /// Stage 2: the same executive lowered to the interned, index-based
    /// form — what verification and deployment actually run on.
    pub ir_executive: IrExecutive,
    /// The symbol table the whole flow interns through: seeded with the
    /// graphs' names at modelisation, extended by lowering. Resolves every
    /// id in [`FlowArtifacts::ir_executive`].
    pub symbols: SymbolTable,
    /// Stage 2b: the §4 constraints file, serialized (travels with the
    /// design to the placement step, as in Fig. 3).
    pub constraints_text: String,
    /// Stage 3+4: structural design, floorplan, bitstreams, estimates.
    pub design: GeneratedDesign,
    /// Stage 3 artifact: VHDL-like source per entity and module.
    pub vhdl: BTreeMap<String, String>,
    /// Stage 4 artifact: the UCF-style placement constraints (area groups
    /// + bus-macro LOCs) handed to the Modular Design analog.
    pub ucf: String,
}

impl FlowArtifacts {
    /// Total generated VHDL-like source size (a Fig. 3 "artifact size"
    /// metric for the flow benchmark).
    pub fn vhdl_bytes(&self) -> usize {
        self.vhdl.values().map(String::len).sum()
    }
}

/// The top-down flow builder.
#[derive(Debug, Clone)]
pub struct DesignFlow {
    algo: AlgorithmGraph,
    arch: ArchGraph,
    chars: Characterization,
    constraints: ConstraintsFile,
    device: Device,
    adequation_options: AdequationOptions,
    cost_model: CostModel,
}

impl DesignFlow {
    /// A flow over the given models, targeting `device`.
    pub fn new(
        algo: AlgorithmGraph,
        arch: ArchGraph,
        chars: Characterization,
        device: Device,
    ) -> Self {
        DesignFlow {
            algo,
            arch,
            chars,
            constraints: ConstraintsFile::new(),
            device,
            adequation_options: AdequationOptions::default(),
            cost_model: CostModel::default(),
        }
    }

    /// Attach the §4 dynamic-constraints file.
    pub fn with_constraints(mut self, constraints: ConstraintsFile) -> Self {
        self.constraints = constraints;
        self
    }

    /// Override the adequation options (pins, reconfiguration awareness).
    pub fn with_adequation_options(mut self, options: AdequationOptions) -> Self {
        self.adequation_options = options;
        self
    }

    /// Override the synthesis-analog cost model.
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost_model = cost;
        self
    }

    /// The algorithm graph.
    pub fn algorithm(&self) -> &AlgorithmGraph {
        &self.algo
    }

    /// The architecture graph.
    pub fn architecture(&self) -> &ArchGraph {
        &self.arch
    }

    /// The characterization tables.
    pub fn characterization(&self) -> &Characterization {
        &self.chars
    }

    /// The target device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The §4 constraints file.
    pub fn constraints(&self) -> &ConstraintsFile {
        &self.constraints
    }

    /// The adequation options (pins, reconfiguration awareness).
    pub fn adequation_options(&self) -> &AdequationOptions {
        &self.adequation_options
    }

    /// Run the complete pipeline.
    pub fn run(&self) -> Result<FlowArtifacts, FlowError> {
        // 1. Modelisation is validated inside adequation; run it.
        let adequation = adequate(
            &self.algo,
            &self.arch,
            &self.chars,
            &self.constraints,
            &self.adequation_options,
        )?;
        // 2. Macro-code generation.
        let executive = generate_executive(
            &self.algo,
            &self.arch,
            &self.chars,
            &adequation.mapping,
            &adequation.schedule,
        )?;
        // 3+4. VHDL generation + Modular Design analog.
        let design = generate_design(
            &self.algo,
            &self.arch,
            &self.chars,
            &self.constraints,
            &adequation.mapping,
            &executive,
            &self.device,
            &self.cost_model,
        )?;
        let mut vhdl_out = BTreeMap::new();
        for (name, entity) in &design.entities {
            vhdl_out.insert(format!("{name}.vhd"), vhdl::emit_entity(entity));
        }
        for module in &design.modules {
            vhdl_out.insert(
                format!("dyn_{}.vhd", module.module),
                vhdl::emit_module(module),
            );
        }
        let ucf_text = ucf::emit_ucf(&design.floorplan);
        // Lower through one symbol table seeded with every name the graphs
        // interned at construction, so ids stay shared across the flow.
        let mut symbols = self.arch.symbols().clone();
        symbols.absorb(self.algo.symbols());
        let ir_executive = executive.lower(&mut symbols);
        Ok(FlowArtifacts {
            adequation,
            executive,
            ir_executive,
            symbols,
            constraints_text: self.constraints.to_string(),
            design,
            vhdl: vhdl_out,
            ucf: ucf_text,
        })
    }

    /// Statically analyze produced artifacts with `pdr-lint`: rendezvous
    /// matching, deadlock freedom, reconfiguration safety and floorplan
    /// legality — the verification stage between generation and
    /// deployment. Runs over the lowered executive through the artifacts'
    /// symbol table; diagnostics are identical to linting the string form.
    pub fn verify(&self, artifacts: &FlowArtifacts) -> pdr_lint::Report {
        pdr_lint::lint_ir(
            &pdr_lint::IrLintInput::new(&artifacts.ir_executive, &artifacts.symbols)
                .with_arch(&self.arch)
                .with_chars(&self.chars)
                .with_constraints(&self.constraints)
                .with_floorplan(&artifacts.design.floorplan),
        )
    }

    /// Run the pipeline and gate the artifacts on a clean static
    /// analysis: any error-level diagnostic aborts with
    /// [`FlowError::Lint`] carrying the rendered report.
    pub fn run_verified(&self) -> Result<FlowArtifacts, FlowError> {
        let artifacts = self.run()?;
        let report = self.verify(&artifacts);
        if report.has_errors() {
            return Err(FlowError::Lint(pdr_lint::render::to_text(&report)));
        }
        Ok(artifacts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_graph::paper;

    fn paper_flow() -> DesignFlow {
        DesignFlow::new(
            paper::mccdma_algorithm(),
            paper::sundance_architecture(),
            paper::mccdma_characterization(),
            Device::xc2v2000(),
        )
        .with_constraints(paper::mccdma_constraints())
        .with_adequation_options(
            AdequationOptions::default()
                .pin("interface_in", "dsp")
                .pin("select", "dsp")
                .pin("interface_out", "fpga_static"),
        )
    }

    #[test]
    fn full_pipeline_produces_all_artifacts() {
        let art = paper_flow().run().unwrap();
        assert!(art.adequation.makespan > pdr_fabric::TimePs::ZERO);
        assert!(!art.executive.is_empty());
        assert!(art.constraints_text.contains("[module mod_qpsk]"));
        assert_eq!(art.design.floorplan.bitstreams.len(), 3);
        // VHDL for the static entity and both dynamic modules.
        assert!(art.vhdl.contains_key("fpga_static.vhd"));
        assert!(art.vhdl.contains_key("dyn_mod_qpsk.vhd"));
        assert!(art.vhdl.contains_key("dyn_mod_qam16.vhd"));
        assert!(art.vhdl_bytes() > 1000);
        // The UCF pins the paper region and its bus macros.
        assert!(art.ucf.contains("AG_op_dyn"));
        assert!(art.ucf.contains("MODE = RECONFIG"));
        assert!(art.ucf.matches("LOC = ").count() >= 10);
    }

    #[test]
    fn constraints_text_roundtrips() {
        let art = paper_flow().run().unwrap();
        let parsed = ConstraintsFile::parse(&art.constraints_text).unwrap();
        assert_eq!(parsed, paper::mccdma_constraints());
    }

    #[test]
    fn paper_flow_verifies_clean() {
        let flow = paper_flow();
        let art = flow.run_verified().unwrap();
        let report = flow.verify(&art);
        assert!(report.is_clean(), "{}", pdr_lint::render::to_text(&report));
    }

    #[test]
    fn run_verified_rejects_corrupted_artifacts() {
        use pdr_adequation::executive::MacroInstr;
        let flow = paper_flow();
        let mut art = flow.run().unwrap();
        // Seed a dangling rendezvous into the executive, and re-lower so
        // the index-based twin verification runs on sees the corruption.
        art.executive
            .per_operator
            .get_mut("dsp")
            .unwrap()
            .push(MacroInstr::Receive {
                from: "nowhere".into(),
                medium: "shb".into(),
                bits: 1,
                tag: 9_999,
            });
        art.ir_executive = art.executive.lower(&mut art.symbols);
        let report = flow.verify(&art);
        assert!(report.has_errors());
        assert!(report.has_code(pdr_lint::Code::DanglingRendezvous));
    }

    #[test]
    fn flow_is_deterministic() {
        let a = paper_flow().run().unwrap();
        let b = paper_flow().run().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn lowered_executive_renders_like_the_string_one() {
        let art = paper_flow().run().unwrap();
        assert_eq!(
            art.ir_executive.render(&art.symbols),
            art.executive.render()
        );
        // The table is seeded from the graphs: every architecture name is
        // resolvable even if the executive never mentions it.
        assert!(art.symbols.lookup("dsp").is_some());
    }

    #[test]
    fn fixed_variant_produces_no_dynamic_modules() {
        // The same flow over the fixed-QPSK graph: everything static.
        let flow = DesignFlow::new(
            paper::mccdma_fixed("mod_qpsk"),
            paper::sundance_architecture(),
            paper::mccdma_characterization(),
            Device::xc2v2000(),
        )
        .with_adequation_options(
            AdequationOptions::default()
                .pin("interface_in", "dsp")
                .pin("interface_out", "fpga_static")
                // Keep the fixed modulation out of the dynamic region.
                .pin("modulation", "fpga_static"),
        );
        let art = flow.run().unwrap();
        assert!(art.design.modules.is_empty());
        assert!(art.design.floorplan.floorplan.regions().is_empty());
    }

    #[test]
    fn accessors() {
        let flow = paper_flow();
        assert_eq!(flow.device().name, "XC2V2000");
        assert_eq!(flow.algorithm().name, "mccdma_tx");
        assert_eq!(flow.architecture().name, "sundance_c6201_xc2v2000");
        assert!(flow.characterization().duration_entries() > 0);
    }
}
