//! The [`DesignFlow`] builder: Fig. 3 end to end.

use crate::error::FlowError;
use pdr_adequation::executive::generate_executive;
use pdr_adequation::{
    adequate_with_index, AdequationIndex, AdequationOptions, AdequationResult, Executive,
    IndexOptions,
};
use pdr_codegen::{generate_design, ucf, vhdl, CostModel, GeneratedDesign};
use pdr_fabric::Device;
use pdr_graph::prelude::*;
use pdr_ir::{IrExecutive, SymbolTable};
use pdr_sweep::digest::Fnv64;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Every artifact the flow produces, stage by stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowArtifacts {
    /// Stage 1: mapping + schedule (the adequation).
    pub adequation: AdequationResult,
    /// Stage 2: the synchronized executive (macro-code) — the
    /// human-readable render/golden surface.
    pub executive: Executive,
    /// Stage 2: the same executive lowered to the interned, index-based
    /// form — what verification and deployment actually run on.
    pub ir_executive: IrExecutive,
    /// The symbol table the whole flow interns through: seeded with the
    /// graphs' names at modelisation, extended by lowering. Resolves every
    /// id in [`FlowArtifacts::ir_executive`].
    pub symbols: SymbolTable,
    /// Stage 2b: the §4 constraints file, serialized (travels with the
    /// design to the placement step, as in Fig. 3).
    pub constraints_text: String,
    /// Stage 3+4: structural design, floorplan, bitstreams, estimates.
    pub design: GeneratedDesign,
    /// Stage 3 artifact: VHDL-like source per entity and module.
    pub vhdl: BTreeMap<String, String>,
    /// Stage 4 artifact: the UCF-style placement constraints (area groups
    /// + bus-macro LOCs) handed to the Modular Design analog.
    pub ucf: String,
}

impl FlowArtifacts {
    /// Total generated VHDL-like source size (a Fig. 3 "artifact size"
    /// metric for the flow benchmark).
    pub fn vhdl_bytes(&self) -> usize {
        self.vhdl.values().map(String::len).sum()
    }

    /// Canonical content digest of the compiled result: FNV-1a over the
    /// interned executive (rendered through the symbol table, so it is
    /// byte-identical to the string executive's render) followed by the
    /// §4 constraints text. The hasher is [`pdr_sweep::digest::Fnv64`] —
    /// the same implementation behind the sweep engine's outcome digests
    /// and `pdr-server`'s content-addressed cache, so the layers can
    /// never drift apart on what a digest means.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        h.eat_str(&self.ir_executive.render(&self.symbols));
        h.eat_str(&self.constraints_text);
        h.finish()
    }
}

/// The top-down flow builder.
#[derive(Debug, Clone)]
pub struct DesignFlow {
    algo: AlgorithmGraph,
    arch: ArchGraph,
    chars: Characterization,
    constraints: ConstraintsFile,
    device: Device,
    adequation_options: AdequationOptions,
    cost_model: CostModel,
}

impl DesignFlow {
    /// A flow over the given models, targeting `device`.
    pub fn new(
        algo: AlgorithmGraph,
        arch: ArchGraph,
        chars: Characterization,
        device: Device,
    ) -> Self {
        DesignFlow {
            algo,
            arch,
            chars,
            constraints: ConstraintsFile::new(),
            device,
            adequation_options: AdequationOptions::default(),
            cost_model: CostModel::default(),
        }
    }

    /// Attach the §4 dynamic-constraints file.
    pub fn with_constraints(mut self, constraints: ConstraintsFile) -> Self {
        self.constraints = constraints;
        self
    }

    /// Override the adequation options (pins, reconfiguration awareness).
    pub fn with_adequation_options(mut self, options: AdequationOptions) -> Self {
        self.adequation_options = options;
        self
    }

    /// Override the synthesis-analog cost model.
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost_model = cost;
        self
    }

    /// The algorithm graph.
    pub fn algorithm(&self) -> &AlgorithmGraph {
        &self.algo
    }

    /// The architecture graph.
    pub fn architecture(&self) -> &ArchGraph {
        &self.arch
    }

    /// The characterization tables.
    pub fn characterization(&self) -> &Characterization {
        &self.chars
    }

    /// The target device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The §4 constraints file.
    pub fn constraints(&self) -> &ConstraintsFile {
        &self.constraints
    }

    /// The adequation options (pins, reconfiguration awareness).
    pub fn adequation_options(&self) -> &AdequationOptions {
        &self.adequation_options
    }

    /// Absorb the [`AdequationIndex`] inputs — algorithm, architecture,
    /// characterization — into `h`, element by element in id order
    /// (characterization tables in sorted order; their backing maps are
    /// unordered).
    fn eat_index_inputs(&self, h: &mut Fnv64) {
        h.eat_str(&self.algo.name);
        for (_, op) in self.algo.ops() {
            h.eat_str(&format!("{op:?}"));
        }
        for e in self.algo.edges() {
            h.eat_str(&format!("{e:?}"));
        }
        h.eat_str(&self.arch.name);
        for (id, o) in self.arch.operators() {
            h.eat_str(&format!("{o:?}"));
            for m in self.arch.media_of(id) {
                h.eat_u64(m.0 as u64);
            }
        }
        for (_, m) in self.arch.media() {
            h.eat_str(&format!("{m:?}"));
        }
        for (f, o, t) in self.chars.sorted_durations() {
            h.eat_str(f);
            h.eat_str(o);
            h.eat_u64(t.as_ps());
        }
        for (f, r) in self.chars.sorted_resources() {
            h.eat_str(f);
            h.eat_str(&format!("{r:?}"));
        }
        for (o, f, t) in self.chars.sorted_reconfig() {
            h.eat_str(o);
            h.eat_str(f);
            h.eat_u64(t.as_ps());
        }
    }

    /// Canonical digest of the [`AdequationIndex`] inputs. Two flows with
    /// equal `index_digest` produce identical indexes, so a service can
    /// build the index once and schedule both against it (the index is a
    /// pure function of algorithm + architecture + characterization;
    /// constraints, device and options don't enter it).
    pub fn index_digest(&self) -> u64 {
        let mut h = Fnv64::new();
        self.eat_index_inputs(&mut h);
        h.finish()
    }

    /// Canonical digest of the *complete* model content: everything that
    /// determines this flow's artifacts — the index inputs plus device,
    /// constraints file, adequation options and cost model. This is the
    /// content address `pdr-server` keys its result cache on: equal
    /// digests ⇒ byte-identical [`FlowArtifacts`].
    pub fn model_digest(&self) -> u64 {
        let mut h = Fnv64::new();
        self.eat_index_inputs(&mut h);
        h.eat_str(&self.device.name);
        h.eat_str(&self.constraints.to_string());
        h.eat_str(&format!("{:?}", self.adequation_options));
        h.eat_str(&format!("{:?}", self.cost_model));
        h.finish()
    }

    /// Build the scheduler's precomputation index for this flow's models.
    /// Expensive relative to scheduling a small flow — share it across
    /// [`DesignFlow::run_with_index`] calls whenever
    /// [`DesignFlow::index_digest`] matches.
    pub fn build_index(&self) -> Result<AdequationIndex, FlowError> {
        Ok(AdequationIndex::build(&self.algo, &self.arch, &self.chars)?)
    }

    /// [`DesignFlow::build_index`] with explicit build options (thread
    /// count); the result is identical for every option value.
    pub fn build_index_with(&self, options: &IndexOptions) -> Result<AdequationIndex, FlowError> {
        Ok(AdequationIndex::build_with(
            &self.algo,
            &self.arch,
            &self.chars,
            options,
        )?)
    }

    /// Run the complete pipeline.
    pub fn run(&self) -> Result<FlowArtifacts, FlowError> {
        let index = self.build_index()?;
        self.run_with_index(&index)
    }

    /// Run the complete pipeline against a caller-supplied (typically
    /// shared) [`AdequationIndex`] — it must come from models with this
    /// flow's [`DesignFlow::index_digest`]. Artifacts are byte-identical
    /// to [`DesignFlow::run`].
    pub fn run_with_index(&self, index: &AdequationIndex) -> Result<FlowArtifacts, FlowError> {
        // 1. Modelisation is validated inside adequation; run it.
        let adequation = adequate_with_index(
            &self.algo,
            &self.arch,
            &self.chars,
            &self.constraints,
            &self.adequation_options,
            index,
        )?;
        // 2. Macro-code generation.
        let executive = generate_executive(
            &self.algo,
            &self.arch,
            &self.chars,
            &adequation.mapping,
            &adequation.schedule,
        )?;
        // 3+4. VHDL generation + Modular Design analog.
        let design = generate_design(
            &self.algo,
            &self.arch,
            &self.chars,
            &self.constraints,
            &adequation.mapping,
            &executive,
            &self.device,
            &self.cost_model,
        )?;
        let mut vhdl_out = BTreeMap::new();
        for (name, entity) in &design.entities {
            vhdl_out.insert(format!("{name}.vhd"), vhdl::emit_entity(entity));
        }
        for module in &design.modules {
            vhdl_out.insert(
                format!("dyn_{}.vhd", module.module),
                vhdl::emit_module(module),
            );
        }
        let ucf_text = ucf::emit_ucf(&design.floorplan);
        // Lower through one symbol table seeded with every name the graphs
        // interned at construction, so ids stay shared across the flow.
        let mut symbols = self.arch.symbols().clone();
        symbols.absorb(self.algo.symbols());
        let ir_executive = executive.lower(&mut symbols);
        Ok(FlowArtifacts {
            adequation,
            executive,
            ir_executive,
            symbols,
            constraints_text: self.constraints.to_string(),
            design,
            vhdl: vhdl_out,
            ucf: ucf_text,
        })
    }

    /// Statically analyze produced artifacts with `pdr-lint`: rendezvous
    /// matching, deadlock freedom, reconfiguration safety and floorplan
    /// legality — the verification stage between generation and
    /// deployment. Runs over the lowered executive through the artifacts'
    /// symbol table, with the exhaustive interleaving model checker
    /// (PDR013–PDR017) at its default state budget; [`Self::verify_with`]
    /// tunes or disables it.
    pub fn verify(&self, artifacts: &FlowArtifacts) -> pdr_lint::Report {
        self.verify_with(artifacts, Some(pdr_lint::ModelConfig::default()))
    }

    /// [`Self::verify`] with explicit model-checker control: `None` keeps
    /// the greedy single-interleaving deadlock pass (byte-identical to
    /// the historical output), `Some(config)` runs the exhaustive checker
    /// under that configuration.
    pub fn verify_with(
        &self,
        artifacts: &FlowArtifacts,
        model: Option<pdr_lint::ModelConfig>,
    ) -> pdr_lint::Report {
        let mut input = pdr_lint::IrLintInput::new(&artifacts.ir_executive, &artifacts.symbols)
            .with_arch(&self.arch)
            .with_chars(&self.chars)
            .with_constraints(&self.constraints)
            .with_floorplan(&artifacts.design.floorplan);
        input.model = model;
        pdr_lint::lint_ir(&input)
    }

    /// Run the pipeline and gate the artifacts on a clean static
    /// analysis: any error-level diagnostic aborts with
    /// [`FlowError::Lint`] carrying the rendered report.
    pub fn run_verified(&self) -> Result<FlowArtifacts, FlowError> {
        let artifacts = self.run()?;
        let report = self.verify(&artifacts);
        if report.has_errors() {
            return Err(FlowError::Lint(pdr_lint::render::to_text(&report)));
        }
        Ok(artifacts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_graph::paper;

    fn paper_flow() -> DesignFlow {
        DesignFlow::new(
            paper::mccdma_algorithm(),
            paper::sundance_architecture(),
            paper::mccdma_characterization(),
            Device::xc2v2000(),
        )
        .with_constraints(paper::mccdma_constraints())
        .with_adequation_options(
            AdequationOptions::default()
                .pin("interface_in", "dsp")
                .pin("select", "dsp")
                .pin("interface_out", "fpga_static"),
        )
    }

    #[test]
    fn full_pipeline_produces_all_artifacts() {
        let art = paper_flow().run().unwrap();
        assert!(art.adequation.makespan > pdr_fabric::TimePs::ZERO);
        assert!(!art.executive.is_empty());
        assert!(art.constraints_text.contains("[module mod_qpsk]"));
        assert_eq!(art.design.floorplan.bitstreams.len(), 3);
        // VHDL for the static entity and both dynamic modules.
        assert!(art.vhdl.contains_key("fpga_static.vhd"));
        assert!(art.vhdl.contains_key("dyn_mod_qpsk.vhd"));
        assert!(art.vhdl.contains_key("dyn_mod_qam16.vhd"));
        assert!(art.vhdl_bytes() > 1000);
        // The UCF pins the paper region and its bus macros.
        assert!(art.ucf.contains("AG_op_dyn"));
        assert!(art.ucf.contains("MODE = RECONFIG"));
        assert!(art.ucf.matches("LOC = ").count() >= 10);
    }

    #[test]
    fn constraints_text_roundtrips() {
        let art = paper_flow().run().unwrap();
        let parsed = ConstraintsFile::parse(&art.constraints_text).unwrap();
        assert_eq!(parsed, paper::mccdma_constraints());
    }

    #[test]
    fn paper_flow_verifies_clean() {
        let flow = paper_flow();
        let art = flow.run_verified().unwrap();
        let report = flow.verify(&art);
        assert!(report.is_clean(), "{}", pdr_lint::render::to_text(&report));
    }

    #[test]
    fn run_verified_rejects_corrupted_artifacts() {
        use pdr_adequation::executive::MacroInstr;
        let flow = paper_flow();
        let mut art = flow.run().unwrap();
        // Seed a dangling rendezvous into the executive, and re-lower so
        // the index-based twin verification runs on sees the corruption.
        art.executive
            .per_operator
            .get_mut("dsp")
            .unwrap()
            .push(MacroInstr::Receive {
                from: "nowhere".into(),
                medium: "shb".into(),
                bits: 1,
                tag: 9_999,
            });
        art.ir_executive = art.executive.lower(&mut art.symbols);
        let report = flow.verify(&art);
        assert!(report.has_errors());
        assert!(report.has_code(pdr_lint::Code::DanglingRendezvous));
    }

    #[test]
    fn flow_is_deterministic() {
        let a = paper_flow().run().unwrap();
        let b = paper_flow().run().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn run_with_shared_index_is_byte_identical() {
        let flow = paper_flow();
        let index = flow.build_index().unwrap();
        let fresh = flow.run().unwrap();
        let shared = flow.run_with_index(&index).unwrap();
        let again = flow.run_with_index(&index).unwrap();
        assert_eq!(fresh, shared);
        assert_eq!(shared, again);
        assert_eq!(fresh.digest(), shared.digest());
    }

    #[test]
    fn model_digest_is_stable_and_content_sensitive() {
        let flow = paper_flow();
        assert_eq!(flow.model_digest(), paper_flow().model_digest());
        assert_eq!(flow.index_digest(), paper_flow().index_digest());
        // Dropping the constraints file changes the model digest but not
        // the index digest (constraints don't enter the index).
        let unconstrained = paper_flow().with_constraints(ConstraintsFile::new());
        assert_ne!(flow.model_digest(), unconstrained.model_digest());
        assert_eq!(flow.index_digest(), unconstrained.index_digest());
        // A different pin set changes the model digest too.
        let repinned = paper_flow()
            .with_adequation_options(AdequationOptions::default().pin("interface_in", "dsp"));
        assert_ne!(flow.model_digest(), repinned.model_digest());
    }

    #[test]
    fn artifact_digest_tracks_content() {
        let a = paper_flow().run().unwrap();
        let mut b = a.clone();
        assert_eq!(a.digest(), b.digest());
        b.constraints_text.push('x');
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn same_models_on_two_devices_share_an_index() {
        let g3 = crate::gallery::by_name("two_regions").unwrap().flow;
        let g4 = crate::gallery::by_name("two_regions_xc2v4000")
            .unwrap()
            .flow;
        // Same algorithm/architecture/characterization, different device:
        // the scheduler index is shareable, the full model address is not.
        assert_eq!(g3.index_digest(), g4.index_digest());
        assert_ne!(g3.model_digest(), g4.model_digest());
        let shared = g3.build_index().unwrap();
        let a = g4.run_with_index(&shared).unwrap();
        assert_eq!(a, g4.run().unwrap());
    }

    #[test]
    fn lowered_executive_renders_like_the_string_one() {
        let art = paper_flow().run().unwrap();
        assert_eq!(
            art.ir_executive.render(&art.symbols),
            art.executive.render()
        );
        // The table is seeded from the graphs: every architecture name is
        // resolvable even if the executive never mentions it.
        assert!(art.symbols.lookup("dsp").is_some());
    }

    #[test]
    fn fixed_variant_produces_no_dynamic_modules() {
        // The same flow over the fixed-QPSK graph: everything static.
        let flow = DesignFlow::new(
            paper::mccdma_fixed("mod_qpsk"),
            paper::sundance_architecture(),
            paper::mccdma_characterization(),
            Device::xc2v2000(),
        )
        .with_adequation_options(
            AdequationOptions::default()
                .pin("interface_in", "dsp")
                .pin("interface_out", "fpga_static")
                // Keep the fixed modulation out of the dynamic region.
                .pin("modulation", "fpga_static"),
        );
        let art = flow.run().unwrap();
        assert!(art.design.modules.is_empty());
        assert!(art.design.floorplan.floorplan.regions().is_empty());
    }

    #[test]
    fn accessors() {
        let flow = paper_flow();
        assert_eq!(flow.device().name, "XC2V2000");
        assert_eq!(flow.algorithm().name, "mccdma_tx");
        assert_eq!(flow.architecture().name, "sundance_c6201_xc2v2000");
        assert!(flow.characterization().duration_entries() > 0);
    }
}
