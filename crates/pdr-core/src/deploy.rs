//! Deployment: flow artifacts → a runnable simulated system.
//!
//! [`DeployedSystem`] wires the generated bitstreams into per-region
//! [`ConfigurationManager`]s (external store + staging cache + protocol
//! builder on the chosen port) and runs the synchronized executive on the
//! discrete-event simulator. [`RuntimeOptions`] selects the Fig. 2
//! reconfiguration chain and the prefetching policy.

use crate::error::FlowError;
use crate::flow::FlowArtifacts;
use parking_lot::Mutex;
use pdr_fabric::{Device, PortProfile};
use pdr_graph::ArchGraph;
use pdr_rtr::{
    BitstreamCache, BitstreamStore, ConfigurationManager, DeviceLoader, ExclusionLedger,
    FirstOrderMarkov, LastValue, LoaderStats, MemoryModel, Predictor, ProtocolBuilder,
    ScheduleDriven,
};
use pdr_sim::{IrSimSystem, SimConfig, SimReport, SimSystem};
use std::sync::Arc;

/// Prefetching policy selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefetchChoice {
    /// No prefetching: every miss pays the full fetch.
    None,
    /// Schedule-driven: replay the known load sequence (the paper's
    /// off-line setting).
    ScheduleDriven(Vec<String>),
    /// Predict "no change" (straw man).
    LastValue,
    /// First-order Markov learner.
    Markov,
}

/// Runtime plumbing choices for deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeOptions {
    /// Configuration-port timing (Fig. 2 chain).
    pub port: PortProfile,
    /// External bitstream memory.
    pub memory: MemoryModel,
    /// Staging-cache capacity in module-sized units.
    pub cache_modules: usize,
    /// Prefetching policy.
    pub prefetch: PrefetchChoice,
    /// Store bitstreams zero-RLE-compressed in external memory (an on-chip
    /// decompressor restores them before the port; only the fetch leg
    /// shrinks).
    pub compressed_storage: bool,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        RuntimeOptions {
            port: PortProfile::icap_virtex2(),
            memory: MemoryModel::paper_flash(),
            cache_modules: 1,
            prefetch: PrefetchChoice::None,
            compressed_storage: false,
        }
    }
}

impl RuntimeOptions {
    /// The paper's §6 chain: self-reconfiguration over ICAP from board
    /// flash, no prefetching — the configuration whose request-to-ready
    /// time is "about 4 ms".
    pub fn paper_baseline() -> Self {
        Self::default()
    }

    /// The prefetching configuration promised by the abstract:
    /// schedule-driven prediction into a 2-module staging cache.
    pub fn paper_prefetch(load_sequence: Vec<String>) -> Self {
        RuntimeOptions {
            cache_modules: 2,
            prefetch: PrefetchChoice::ScheduleDriven(load_sequence),
            ..Self::default()
        }
    }
}

/// A deployed system ready to simulate.
pub struct DeployedSystem<'a> {
    arch: &'a ArchGraph,
    artifacts: &'a FlowArtifacts,
    device: Device,
    options: RuntimeOptions,
}

impl<'a> DeployedSystem<'a> {
    /// Deploy flow artifacts onto their architecture.
    pub fn new(
        arch: &'a ArchGraph,
        artifacts: &'a FlowArtifacts,
        device: Device,
        options: RuntimeOptions,
    ) -> Self {
        DeployedSystem {
            arch,
            artifacts,
            device,
            options,
        }
    }

    /// Build the configuration manager for one region from the generated
    /// bitstreams.
    fn manager_for(&self, region: &str) -> Result<ConfigurationManager, FlowError> {
        let mut store = if self.options.compressed_storage {
            BitstreamStore::with_compression()
        } else {
            BitstreamStore::new()
        };
        let mut module_bytes = 0usize;
        for (module, target) in &self.artifacts.design.floorplan.region_of {
            if target == region {
                let bs = self
                    .artifacts
                    .design
                    .floorplan
                    .bitstream_of(module)
                    .ok_or_else(|| {
                        FlowError::Config(format!("no bitstream generated for `{module}`"))
                    })?
                    .clone();
                module_bytes = module_bytes.max(bs.len_bytes());
                store.insert(module.clone(), bs);
            }
        }
        if store.is_empty() {
            return Err(FlowError::Config(format!(
                "region `{region}` has no modules"
            )));
        }
        let cache = BitstreamCache::sized_for(self.options.cache_modules.max(1), module_bytes);
        let builder = ProtocolBuilder::new(self.device.clone(), self.options.port.clone());
        let mut mgr = ConfigurationManager::new(builder, store, cache, self.options.memory, region);
        let predictor: Option<Box<dyn Predictor>> = match &self.options.prefetch {
            PrefetchChoice::None => None,
            PrefetchChoice::ScheduleDriven(seq) => Some(Box::new(ScheduleDriven::new(seq.clone()))),
            PrefetchChoice::LastValue => Some(Box::new(LastValue)),
            PrefetchChoice::Markov => Some(Box::new(FirstOrderMarkov::new())),
        };
        if let Some(p) = predictor {
            mgr = mgr.with_predictor(p);
        }
        // Honor load = at_start from the constraints file.
        let constraints = pdr_graph::ConstraintsFile::parse(&self.artifacts.constraints_text)
            .map_err(FlowError::Graph)?;
        for mc in constraints.modules_in_region(region) {
            if mc.load == pdr_graph::LoadPolicy::AtStart {
                mgr.preload(&mc.module).map_err(FlowError::Runtime)?;
            }
        }
        Ok(mgr)
    }

    /// The shared exclusion ledger implied by the constraints file.
    fn exclusion_ledger(&self) -> Result<Arc<Mutex<ExclusionLedger>>, FlowError> {
        let constraints = pdr_graph::ConstraintsFile::parse(&self.artifacts.constraints_text)
            .map_err(FlowError::Graph)?;
        Ok(Arc::new(Mutex::new(ExclusionLedger::from_constraints(
            &constraints,
        ))))
    }

    /// Build every region's configuration manager, with the shared
    /// exclusion ledger attached — ready to hand to either interpreter.
    /// Useful to separate deployment setup from interpretation (the
    /// `bench_ir_sim` benchmark times `run()` alone).
    pub fn managers(&self) -> Result<Vec<(String, ConfigurationManager)>, FlowError> {
        let ledger = self.exclusion_ledger()?;
        let mut out = Vec::new();
        for region in self.artifacts.design.floorplan.floorplan.regions() {
            out.push((
                region.name.clone(),
                self.manager_for(&region.name)?
                    .with_exclusions(ledger.clone()),
            ));
        }
        Ok(out)
    }

    /// Simulate the deployed system. Cross-region exclusions from the
    /// constraints file are enforced at run time by a shared ledger.
    pub fn simulate(&self, config: &SimConfig) -> Result<SimReport, FlowError> {
        let mut sys = SimSystem::new(self.arch, &self.artifacts.executive);
        for (region, mgr) in self.managers()? {
            sys.add_manager(&region, mgr);
        }
        sys.run(config).map_err(FlowError::Sim)
    }

    /// Simulate the deployed system on the interned interpreter: the
    /// lowered executive runs with zero per-event allocation, resolving
    /// names through the artifacts' symbol table only when the report is
    /// materialized. Produces a report identical to
    /// [`DeployedSystem::simulate`].
    pub fn simulate_ir(&self, config: &SimConfig) -> Result<SimReport, FlowError> {
        let mut sys = IrSimSystem::new(
            self.arch,
            &self.artifacts.ir_executive,
            &self.artifacts.symbols,
        );
        for (region, mgr) in self.managers()? {
            sys.add_manager(&region, mgr);
        }
        sys.run(config).map_err(FlowError::Sim)
    }

    /// Simulate with *functional fidelity*: every reconfiguration is also
    /// applied to a real [`pdr_fabric::ConfigMemory`] and readback-verified
    /// by a shared [`DeviceLoader`]. Returns the loader statistics next to
    /// the report (verify failures would surface as simulation errors).
    pub fn simulate_verified(
        &self,
        config: &SimConfig,
    ) -> Result<(SimReport, LoaderStats), FlowError> {
        let mut loader = DeviceLoader::new(self.device.clone());
        for region in self.artifacts.design.floorplan.floorplan.regions() {
            loader
                .add_region(region.clone())
                .map_err(FlowError::Runtime)?;
        }
        let loader = Arc::new(Mutex::new(loader));
        let ledger = self.exclusion_ledger()?;
        let mut sys = SimSystem::new(self.arch, &self.artifacts.executive);
        for region in self.artifacts.design.floorplan.floorplan.regions() {
            let mgr = self
                .manager_for(&region.name)?
                .with_loader(loader.clone())
                .with_exclusions(ledger.clone());
            sys.add_manager(&region.name, mgr);
        }
        let report = sys.run(config).map_err(FlowError::Sim)?;
        let stats = loader.lock().stats();
        Ok((report, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::DesignFlow;
    use pdr_adequation::AdequationOptions;
    use pdr_fabric::TimePs;
    use pdr_graph::paper;

    fn build() -> (ArchGraph, FlowArtifacts) {
        let arch = paper::sundance_architecture();
        let art = DesignFlow::new(
            paper::mccdma_algorithm(),
            arch.clone(),
            paper::mccdma_characterization(),
            Device::xc2v2000(),
        )
        .with_constraints(paper::mccdma_constraints())
        .with_adequation_options(
            AdequationOptions::default()
                .pin("interface_in", "dsp")
                .pin("select", "dsp")
                .pin("interface_out", "fpga_static"),
        )
        .run()
        .unwrap();
        (arch, art)
    }

    fn switching(n: u32) -> Vec<String> {
        (0..n)
            .map(|i| {
                if (i / 8) % 2 == 0 {
                    "mod_qpsk".to_string()
                } else {
                    "mod_qam16".to_string()
                }
            })
            .collect()
    }

    #[test]
    fn baseline_deployment_reconfigures_in_about_4ms() {
        let (arch, art) = build();
        let dep = DeployedSystem::new(
            &arch,
            &art,
            Device::xc2v2000(),
            RuntimeOptions::paper_baseline(),
        );
        let cfg = SimConfig::iterations(32).with_selection("op_dyn", switching(32));
        let report = dep.simulate(&cfg).unwrap();
        assert_eq!(report.reconfig_count(), 3);
        for rc in &report.reconfigs {
            let ms = rc.latency().as_millis_f64();
            assert!((3.5..4.6).contains(&ms), "latency {ms} ms");
        }
    }

    #[test]
    fn prefetch_deployment_beats_baseline() {
        let (arch, art) = build();
        let cfg = SimConfig::iterations(32).with_selection("op_dyn", switching(32));
        let base = DeployedSystem::new(
            &arch,
            &art,
            Device::xc2v2000(),
            RuntimeOptions::paper_baseline(),
        )
        .simulate(&cfg)
        .unwrap();
        // The load sequence after the preloaded qpsk: qam16, qpsk, qam16...
        let loads: Vec<String> = (0..3)
            .map(|i| {
                if i % 2 == 0 {
                    "mod_qam16".to_string()
                } else {
                    "mod_qpsk".to_string()
                }
            })
            .collect();
        let pf = DeployedSystem::new(
            &arch,
            &art,
            Device::xc2v2000(),
            RuntimeOptions::paper_prefetch(loads),
        )
        .simulate(&cfg)
        .unwrap();
        assert_eq!(base.reconfig_count(), pf.reconfig_count());
        assert!(pf.lockup_time() < base.lockup_time());
        assert!(pf.makespan < base.makespan);
    }

    #[test]
    fn interned_deployment_matches_string_deployment() {
        let (arch, art) = build();
        let dep = DeployedSystem::new(
            &arch,
            &art,
            Device::xc2v2000(),
            RuntimeOptions::paper_baseline(),
        );
        let cfg = SimConfig::iterations(32).with_selection("op_dyn", switching(32));
        let via_string = dep.simulate(&cfg).unwrap();
        let via_ir = dep.simulate_ir(&cfg).unwrap();
        assert_eq!(via_string, via_ir);
    }

    #[test]
    fn at_start_module_is_preloaded() {
        let (arch, art) = build();
        let dep = DeployedSystem::new(
            &arch,
            &art,
            Device::xc2v2000(),
            RuntimeOptions::paper_baseline(),
        );
        // All-qpsk: the preloaded module means zero reconfigurations.
        let cfg =
            SimConfig::iterations(8).with_selection("op_dyn", vec!["mod_qpsk".to_string(); 8]);
        let report = dep.simulate(&cfg).unwrap();
        assert_eq!(report.reconfig_count(), 0);
        assert_eq!(report.lockup_time(), TimePs::ZERO);
    }

    #[test]
    fn markov_prefetch_learns_alternation() {
        let (arch, art) = build();
        let opts = RuntimeOptions {
            cache_modules: 2,
            prefetch: PrefetchChoice::Markov,
            ..RuntimeOptions::default()
        };
        let dep = DeployedSystem::new(&arch, &art, Device::xc2v2000(), opts);
        // Fast alternation: after training, Markov predicts the follower.
        let sel: Vec<String> = (0..64)
            .map(|i| {
                if (i / 4) % 2 == 0 {
                    "mod_qpsk".to_string()
                } else {
                    "mod_qam16".to_string()
                }
            })
            .collect();
        let cfg = SimConfig::iterations(64).with_selection("op_dyn", sel);
        let report = dep.simulate(&cfg).unwrap();
        assert!(report.reconfig_count() > 10);
        // Later reconfigurations benefit from learned prefetches (and the
        // 2-module cache): at least half the fetches are hidden.
        assert!(
            report.hidden_fetches() * 2 >= report.reconfig_count(),
            "{} of {} hidden",
            report.hidden_fetches(),
            report.reconfig_count()
        );
    }
}

#[cfg(test)]
mod verified_tests {
    use super::*;
    use crate::paper::PaperCaseStudy;
    use pdr_sim::SimConfig;

    #[test]
    fn verified_simulation_applies_and_checks_every_load() {
        let study = PaperCaseStudy::build().unwrap();
        let sel: Vec<String> = (0..24u32)
            .map(|i| {
                if (i / 6) % 2 == 0 {
                    "mod_qpsk".to_string()
                } else {
                    "mod_qam16".to_string()
                }
            })
            .collect();
        let dep = study.deploy(RuntimeOptions::paper_baseline());
        let cfg = SimConfig::iterations(24).with_selection("op_dyn", sel);
        let (report, loader_stats) = dep.simulate_verified(&cfg).unwrap();
        assert_eq!(report.reconfig_count(), 3);
        assert_eq!(loader_stats.loads, 3);
        assert_eq!(loader_stats.verifications, 3);
        assert_eq!(loader_stats.verify_failures, 0);
        // Timing is identical to the unverified run (fidelity is free).
        let plain = study
            .deploy(RuntimeOptions::paper_baseline())
            .simulate(&cfg)
            .unwrap();
        assert_eq!(plain.makespan, report.makespan);
    }
}
