//! Deployment: flow artifacts → a runnable simulated system.
//!
//! [`DeployedSystem`] wires the generated bitstreams into per-region
//! [`ConfigurationManager`]s (external store + staging cache + protocol
//! builder on the chosen port) and runs the synchronized executive on the
//! discrete-event simulator. [`RuntimeOptions`] selects the Fig. 2
//! reconfiguration chain and the prefetching policy.

use crate::error::FlowError;
use crate::flow::FlowArtifacts;
use parking_lot::Mutex;
use pdr_fabric::{Device, PortProfile};
use pdr_graph::ArchGraph;
use pdr_rtr::{
    BitstreamCache, BitstreamStore, ConfigurationManager, DeviceLoader, EvictionSpec,
    ExclusionLedger, FirstOrderMarkov, LastValue, LoaderStats, MemoryModel, Predictor,
    PrefetchSpec, ProtocolBuilder, RegionSpec, RtrEngine, RtrEngineBuilder, ScheduleDriven,
};
use pdr_sim::{IrSimSystem, SimConfig, SimReport, SimSystem};
use std::sync::Arc;

/// Prefetching policy selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefetchChoice {
    /// No prefetching: every miss pays the full fetch.
    None,
    /// Schedule-driven: replay the known load sequence (the paper's
    /// off-line setting).
    ScheduleDriven(Vec<String>),
    /// Predict "no change" (straw man).
    LastValue,
    /// First-order Markov learner.
    Markov,
}

/// Staging-cache eviction policy selection.
///
/// The reference manager always evicts LRU; the indexed engine
/// ([`DeployedSystem::rtr_engine`] / [`DeployedSystem::simulate_rtr`])
/// honors this choice. The offline Belady oracle needs a per-region
/// future trace and is therefore built directly through
/// [`RtrEngineBuilder`] (the `bench_rtr` study does this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionChoice {
    /// Least recently used (the reference behavior).
    #[default]
    Lru,
    /// Least frequently used.
    Lfu,
}

/// Runtime plumbing choices for deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeOptions {
    /// Configuration-port timing (Fig. 2 chain).
    pub port: PortProfile,
    /// External bitstream memory.
    pub memory: MemoryModel,
    /// Staging-cache capacity in module-sized units.
    pub cache_modules: usize,
    /// Prefetching policy.
    pub prefetch: PrefetchChoice,
    /// Staging-cache eviction policy (engine deployments only; the
    /// reference manager is always LRU).
    pub eviction: EvictionChoice,
    /// Store bitstreams zero-RLE-compressed in external memory (an on-chip
    /// decompressor restores them before the port; only the fetch leg
    /// shrinks).
    pub compressed_storage: bool,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        RuntimeOptions {
            port: PortProfile::icap_virtex2(),
            memory: MemoryModel::paper_flash(),
            cache_modules: 1,
            prefetch: PrefetchChoice::None,
            eviction: EvictionChoice::Lru,
            compressed_storage: false,
        }
    }
}

impl RuntimeOptions {
    /// The paper's §6 chain: self-reconfiguration over ICAP from board
    /// flash, no prefetching — the configuration whose request-to-ready
    /// time is "about 4 ms".
    pub fn paper_baseline() -> Self {
        Self::default()
    }

    /// The prefetching configuration promised by the abstract:
    /// schedule-driven prediction into a 2-module staging cache.
    pub fn paper_prefetch(load_sequence: Vec<String>) -> Self {
        RuntimeOptions {
            cache_modules: 2,
            prefetch: PrefetchChoice::ScheduleDriven(load_sequence),
            ..Self::default()
        }
    }
}

/// A deployed system ready to simulate.
pub struct DeployedSystem<'a> {
    arch: &'a ArchGraph,
    artifacts: &'a FlowArtifacts,
    device: Device,
    options: RuntimeOptions,
}

impl<'a> DeployedSystem<'a> {
    /// Deploy flow artifacts onto their architecture.
    pub fn new(
        arch: &'a ArchGraph,
        artifacts: &'a FlowArtifacts,
        device: Device,
        options: RuntimeOptions,
    ) -> Self {
        DeployedSystem {
            arch,
            artifacts,
            device,
            options,
        }
    }

    /// Build the configuration manager for one region from the generated
    /// bitstreams.
    fn manager_for(&self, region: &str) -> Result<ConfigurationManager, FlowError> {
        let mut store = if self.options.compressed_storage {
            BitstreamStore::with_compression()
        } else {
            BitstreamStore::new()
        };
        let mut module_bytes = 0usize;
        for (module, target) in &self.artifacts.design.floorplan.region_of {
            if target == region {
                let bs = self
                    .artifacts
                    .design
                    .floorplan
                    .bitstream_of(module)
                    .ok_or_else(|| {
                        FlowError::Config(format!("no bitstream generated for `{module}`"))
                    })?
                    .clone();
                module_bytes = module_bytes.max(bs.len_bytes());
                store.insert(module.clone(), bs);
            }
        }
        if store.is_empty() {
            return Err(FlowError::Config(format!(
                "region `{region}` has no modules"
            )));
        }
        let cache = BitstreamCache::sized_for(self.options.cache_modules.max(1), module_bytes);
        let builder = ProtocolBuilder::new(self.device.clone(), self.options.port.clone());
        let mut mgr = ConfigurationManager::new(builder, store, cache, self.options.memory, region);
        let predictor: Option<Box<dyn Predictor>> = match &self.options.prefetch {
            PrefetchChoice::None => None,
            PrefetchChoice::ScheduleDriven(seq) => Some(Box::new(ScheduleDriven::new(seq.clone()))),
            PrefetchChoice::LastValue => Some(Box::new(LastValue)),
            PrefetchChoice::Markov => Some(Box::new(FirstOrderMarkov::new())),
        };
        if let Some(p) = predictor {
            mgr = mgr.with_predictor(p);
        }
        // Honor load = at_start from the constraints file.
        let constraints = pdr_graph::ConstraintsFile::parse(&self.artifacts.constraints_text)
            .map_err(FlowError::Graph)?;
        for mc in constraints.modules_in_region(region) {
            if mc.load == pdr_graph::LoadPolicy::AtStart {
                mgr.preload(&mc.module).map_err(FlowError::Runtime)?;
            }
        }
        Ok(mgr)
    }

    /// The shared exclusion ledger implied by the constraints file.
    fn exclusion_ledger(&self) -> Result<Arc<Mutex<ExclusionLedger>>, FlowError> {
        let constraints = pdr_graph::ConstraintsFile::parse(&self.artifacts.constraints_text)
            .map_err(FlowError::Graph)?;
        Ok(Arc::new(Mutex::new(ExclusionLedger::from_constraints(
            &constraints,
        ))))
    }

    /// Build every region's configuration manager, with the shared
    /// exclusion ledger attached — ready to hand to either interpreter.
    /// Useful to separate deployment setup from interpretation (the
    /// `bench_ir_sim` benchmark times `run()` alone).
    pub fn managers(&self) -> Result<Vec<(String, ConfigurationManager)>, FlowError> {
        let ledger = self.exclusion_ledger()?;
        let mut out = Vec::new();
        for region in self.artifacts.design.floorplan.floorplan.regions() {
            out.push((
                region.name.clone(),
                self.manager_for(&region.name)?
                    .with_exclusions(ledger.clone()),
            ));
        }
        Ok(out)
    }

    /// Build the indexed [`RtrEngine`] over *all* regions from the
    /// generated bitstreams: the allocation-free equivalent of
    /// [`DeployedSystem::managers`], with every stream validated once at
    /// construction, exclusions imported from the constraints file, and
    /// `load = at_start` modules preloaded.
    pub fn rtr_engine(&self) -> Result<RtrEngine, FlowError> {
        let constraints = pdr_graph::ConstraintsFile::parse(&self.artifacts.constraints_text)
            .map_err(FlowError::Graph)?;
        let mut builder = RtrEngineBuilder::new(
            self.device.clone(),
            self.options.port.clone(),
            self.options.memory,
        )
        .compressed_storage(self.options.compressed_storage);
        for region in self.artifacts.design.floorplan.floorplan.regions() {
            let mut spec = RegionSpec::new(&region.name, 0);
            let mut module_bytes = 0usize;
            for (module, target) in &self.artifacts.design.floorplan.region_of {
                if *target == region.name {
                    let bs = self
                        .artifacts
                        .design
                        .floorplan
                        .bitstream_of(module)
                        .ok_or_else(|| {
                            FlowError::Config(format!("no bitstream generated for `{module}`"))
                        })?
                        .clone();
                    module_bytes = module_bytes.max(bs.len_bytes());
                    spec = spec.module(module.clone(), bs);
                }
            }
            if spec.modules.is_empty() {
                return Err(FlowError::Config(format!(
                    "region `{}` has no modules",
                    region.name
                )));
            }
            spec.cache_bytes = self.options.cache_modules.max(1) * module_bytes;
            spec.prefetch = match &self.options.prefetch {
                PrefetchChoice::None => PrefetchSpec::None,
                PrefetchChoice::ScheduleDriven(seq) => PrefetchSpec::Schedule(seq.clone()),
                PrefetchChoice::LastValue => PrefetchSpec::LastValue,
                PrefetchChoice::Markov => PrefetchSpec::Markov,
            };
            spec.eviction = match self.options.eviction {
                EvictionChoice::Lru => EvictionSpec::Lru,
                EvictionChoice::Lfu => EvictionSpec::Lfu,
            };
            builder = builder.region(spec);
        }
        for m in constraints.modules() {
            for other in &m.exclusive_with {
                builder = builder.exclude(&m.module, other);
            }
        }
        let mut engine = builder.build().map_err(FlowError::Runtime)?;
        for region in self.artifacts.design.floorplan.floorplan.regions() {
            let rid = engine
                .region_index(&region.name)
                .expect("engine is built over these regions");
            for mc in constraints.modules_in_region(&region.name) {
                if mc.load == pdr_graph::LoadPolicy::AtStart {
                    let mid = engine.module_index(&mc.module).ok_or_else(|| {
                        FlowError::Runtime(pdr_rtr::RtrError::UnknownModule(mc.module.clone()))
                    })?;
                    engine.preload(rid, mid).map_err(FlowError::Runtime)?;
                }
            }
        }
        Ok(engine)
    }

    /// Simulate the deployed system. Cross-region exclusions from the
    /// constraints file are enforced at run time by a shared ledger.
    pub fn simulate(&self, config: &SimConfig) -> Result<SimReport, FlowError> {
        let mut sys = SimSystem::new(self.arch, &self.artifacts.executive);
        for (region, mgr) in self.managers()? {
            sys.add_manager(&region, mgr);
        }
        sys.run(config).map_err(FlowError::Sim)
    }

    /// Simulate the deployed system on the interned interpreter: the
    /// lowered executive runs with zero per-event allocation, resolving
    /// names through the artifacts' symbol table only when the report is
    /// materialized. Produces a report identical to
    /// [`DeployedSystem::simulate`].
    pub fn simulate_ir(&self, config: &SimConfig) -> Result<SimReport, FlowError> {
        let mut sys = IrSimSystem::new(
            self.arch,
            &self.artifacts.ir_executive,
            &self.artifacts.symbols,
        );
        for (region, mgr) in self.managers()? {
            sys.add_manager(&region, mgr);
        }
        sys.run(config).map_err(FlowError::Sim)
    }

    /// Simulate on the interned interpreter with the indexed
    /// [`RtrEngine`] serving every dynamic region instead of per-region
    /// reference managers. Produces a report identical to
    /// [`DeployedSystem::simulate_ir`] (and therefore to
    /// [`DeployedSystem::simulate`]) — the parity gate in `bench_rtr`
    /// asserts exactly that — while performing zero heap allocations per
    /// reconfiguration request.
    pub fn simulate_rtr(&self, config: &SimConfig) -> Result<SimReport, FlowError> {
        let engine = self.rtr_engine()?;
        let mut sys = IrSimSystem::new(
            self.arch,
            &self.artifacts.ir_executive,
            &self.artifacts.symbols,
        );
        let names: Vec<String> = self
            .artifacts
            .design
            .floorplan
            .floorplan
            .regions()
            .iter()
            .map(|r| r.name.clone())
            .collect();
        let bindings: Vec<(&str, &str)> = names.iter().map(|n| (n.as_str(), n.as_str())).collect();
        sys.attach_engine(engine, &bindings);
        sys.run(config).map_err(FlowError::Sim)
    }

    /// Simulate with *functional fidelity*: every reconfiguration is also
    /// applied to a real [`pdr_fabric::ConfigMemory`] and readback-verified
    /// by a shared [`DeviceLoader`]. Returns the loader statistics next to
    /// the report (verify failures would surface as simulation errors).
    pub fn simulate_verified(
        &self,
        config: &SimConfig,
    ) -> Result<(SimReport, LoaderStats), FlowError> {
        let mut loader = DeviceLoader::new(self.device.clone());
        for region in self.artifacts.design.floorplan.floorplan.regions() {
            loader
                .add_region(region.clone())
                .map_err(FlowError::Runtime)?;
        }
        let loader = Arc::new(Mutex::new(loader));
        let ledger = self.exclusion_ledger()?;
        let mut sys = SimSystem::new(self.arch, &self.artifacts.executive);
        for region in self.artifacts.design.floorplan.floorplan.regions() {
            let mgr = self
                .manager_for(&region.name)?
                .with_loader(loader.clone())
                .with_exclusions(ledger.clone());
            sys.add_manager(&region.name, mgr);
        }
        let report = sys.run(config).map_err(FlowError::Sim)?;
        let stats = loader.lock().stats();
        Ok((report, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::DesignFlow;
    use pdr_adequation::AdequationOptions;
    use pdr_fabric::TimePs;
    use pdr_graph::paper;

    fn build() -> (ArchGraph, FlowArtifacts) {
        let arch = paper::sundance_architecture();
        let art = DesignFlow::new(
            paper::mccdma_algorithm(),
            arch.clone(),
            paper::mccdma_characterization(),
            Device::xc2v2000(),
        )
        .with_constraints(paper::mccdma_constraints())
        .with_adequation_options(
            AdequationOptions::default()
                .pin("interface_in", "dsp")
                .pin("select", "dsp")
                .pin("interface_out", "fpga_static"),
        )
        .run()
        .unwrap();
        (arch, art)
    }

    fn switching(n: u32) -> Vec<String> {
        (0..n)
            .map(|i| {
                if (i / 8) % 2 == 0 {
                    "mod_qpsk".to_string()
                } else {
                    "mod_qam16".to_string()
                }
            })
            .collect()
    }

    #[test]
    fn baseline_deployment_reconfigures_in_about_4ms() {
        let (arch, art) = build();
        let dep = DeployedSystem::new(
            &arch,
            &art,
            Device::xc2v2000(),
            RuntimeOptions::paper_baseline(),
        );
        let cfg = SimConfig::iterations(32).with_selection("op_dyn", switching(32));
        let report = dep.simulate(&cfg).unwrap();
        assert_eq!(report.reconfig_count(), 3);
        for rc in &report.reconfigs {
            let ms = rc.latency().as_millis_f64();
            assert!((3.5..4.6).contains(&ms), "latency {ms} ms");
        }
    }

    #[test]
    fn prefetch_deployment_beats_baseline() {
        let (arch, art) = build();
        let cfg = SimConfig::iterations(32).with_selection("op_dyn", switching(32));
        let base = DeployedSystem::new(
            &arch,
            &art,
            Device::xc2v2000(),
            RuntimeOptions::paper_baseline(),
        )
        .simulate(&cfg)
        .unwrap();
        // The load sequence after the preloaded qpsk: qam16, qpsk, qam16...
        let loads: Vec<String> = (0..3)
            .map(|i| {
                if i % 2 == 0 {
                    "mod_qam16".to_string()
                } else {
                    "mod_qpsk".to_string()
                }
            })
            .collect();
        let pf = DeployedSystem::new(
            &arch,
            &art,
            Device::xc2v2000(),
            RuntimeOptions::paper_prefetch(loads),
        )
        .simulate(&cfg)
        .unwrap();
        assert_eq!(base.reconfig_count(), pf.reconfig_count());
        assert!(pf.lockup_time() < base.lockup_time());
        assert!(pf.makespan < base.makespan);
    }

    #[test]
    fn interned_deployment_matches_string_deployment() {
        let (arch, art) = build();
        let dep = DeployedSystem::new(
            &arch,
            &art,
            Device::xc2v2000(),
            RuntimeOptions::paper_baseline(),
        );
        let cfg = SimConfig::iterations(32).with_selection("op_dyn", switching(32));
        let via_string = dep.simulate(&cfg).unwrap();
        let via_ir = dep.simulate_ir(&cfg).unwrap();
        assert_eq!(via_string, via_ir);
    }

    #[test]
    fn engine_deployment_matches_manager_deployment() {
        let (arch, art) = build();
        let loads: Vec<String> = (0..3)
            .map(|i| {
                if i % 2 == 0 {
                    "mod_qam16".to_string()
                } else {
                    "mod_qpsk".to_string()
                }
            })
            .collect();
        for options in [
            RuntimeOptions::paper_baseline(),
            RuntimeOptions::paper_prefetch(loads),
            RuntimeOptions {
                cache_modules: 2,
                prefetch: PrefetchChoice::Markov,
                compressed_storage: true,
                ..RuntimeOptions::default()
            },
        ] {
            let dep = DeployedSystem::new(&arch, &art, Device::xc2v2000(), options);
            let cfg = SimConfig::iterations(32)
                .with_selection("op_dyn", switching(32))
                .with_trace();
            let via_ir = dep.simulate_ir(&cfg).unwrap();
            let via_engine = dep.simulate_rtr(&cfg).unwrap();
            assert_eq!(via_ir, via_engine);
        }
    }

    #[test]
    fn lfu_eviction_deployment_runs() {
        let (arch, art) = build();
        let opts = RuntimeOptions {
            cache_modules: 1,
            eviction: EvictionChoice::Lfu,
            ..RuntimeOptions::default()
        };
        let dep = DeployedSystem::new(&arch, &art, Device::xc2v2000(), opts);
        let cfg = SimConfig::iterations(16).with_selection("op_dyn", switching(16));
        let report = dep.simulate_rtr(&cfg).unwrap();
        assert!(report.reconfig_count() > 0);
    }

    #[test]
    fn at_start_module_is_preloaded() {
        let (arch, art) = build();
        let dep = DeployedSystem::new(
            &arch,
            &art,
            Device::xc2v2000(),
            RuntimeOptions::paper_baseline(),
        );
        // All-qpsk: the preloaded module means zero reconfigurations.
        let cfg =
            SimConfig::iterations(8).with_selection("op_dyn", vec!["mod_qpsk".to_string(); 8]);
        let report = dep.simulate(&cfg).unwrap();
        assert_eq!(report.reconfig_count(), 0);
        assert_eq!(report.lockup_time(), TimePs::ZERO);
    }

    #[test]
    fn markov_prefetch_learns_alternation() {
        let (arch, art) = build();
        let opts = RuntimeOptions {
            cache_modules: 2,
            prefetch: PrefetchChoice::Markov,
            ..RuntimeOptions::default()
        };
        let dep = DeployedSystem::new(&arch, &art, Device::xc2v2000(), opts);
        // Fast alternation: after training, Markov predicts the follower.
        let sel: Vec<String> = (0..64)
            .map(|i| {
                if (i / 4) % 2 == 0 {
                    "mod_qpsk".to_string()
                } else {
                    "mod_qam16".to_string()
                }
            })
            .collect();
        let cfg = SimConfig::iterations(64).with_selection("op_dyn", sel);
        let report = dep.simulate(&cfg).unwrap();
        assert!(report.reconfig_count() > 10);
        // Later reconfigurations benefit from learned prefetches (and the
        // 2-module cache): at least half the fetches are hidden.
        assert!(
            report.hidden_fetches() * 2 >= report.reconfig_count(),
            "{} of {} hidden",
            report.hidden_fetches(),
            report.reconfig_count()
        );
    }
}

#[cfg(test)]
mod verified_tests {
    use super::*;
    use crate::paper::PaperCaseStudy;
    use pdr_sim::SimConfig;

    #[test]
    fn verified_simulation_applies_and_checks_every_load() {
        let study = PaperCaseStudy::build().unwrap();
        let sel: Vec<String> = (0..24u32)
            .map(|i| {
                if (i / 6) % 2 == 0 {
                    "mod_qpsk".to_string()
                } else {
                    "mod_qam16".to_string()
                }
            })
            .collect();
        let dep = study.deploy(RuntimeOptions::paper_baseline());
        let cfg = SimConfig::iterations(24).with_selection("op_dyn", sel);
        let (report, loader_stats) = dep.simulate_verified(&cfg).unwrap();
        assert_eq!(report.reconfig_count(), 3);
        assert_eq!(loader_stats.loads, 3);
        assert_eq!(loader_stats.verifications, 3);
        assert_eq!(loader_stats.verify_failures, 0);
        // Timing is identical to the unverified run (fidelity is free).
        let plain = study
            .deploy(RuntimeOptions::paper_baseline())
            .simulate(&cfg)
            .unwrap();
        assert_eq!(plain.makespan, report.makespan);
    }
}
