//! A gallery of named, self-contained design flows.
//!
//! Every entry builds a complete [`DesignFlow`] from in-tree models, so
//! tools that need "all the example designs" — the `pdr-lint` CLI, ci.sh,
//! the lint regression suite — can enumerate them by name instead of
//! duplicating model-building code. The set covers both §6 case-study
//! variants (dynamic and the two fixed implementations) and the §7
//! outlook of multiple dynamic regions, on two device sizes.

use crate::flow::DesignFlow;
use crate::paper::PaperCaseStudy;
use pdr_adequation::AdequationOptions;
use pdr_fabric::{Device, Resources, TimePs};
use pdr_graph::constraints::{LoadPolicy, ModuleConstraints};
use pdr_graph::paper as models;
use pdr_graph::prelude::*;

/// A named flow with a one-line description.
pub struct GalleryFlow {
    /// Stable flow name (CLI argument).
    pub name: &'static str,
    /// What the flow models.
    pub description: &'static str,
    /// The ready-to-run flow.
    pub flow: DesignFlow,
}

/// Names of every gallery flow, in gallery order.
pub fn names() -> Vec<&'static str> {
    all().into_iter().map(|g| g.name).collect()
}

/// Look up one gallery flow by name.
pub fn by_name(name: &str) -> Option<GalleryFlow> {
    all().into_iter().find(|g| g.name == name)
}

/// Build every gallery flow.
pub fn all() -> Vec<GalleryFlow> {
    vec![
        GalleryFlow {
            name: "paper",
            description: "§6 MC-CDMA transmitter, dynamic modulation on op_dyn (XC2V2000)",
            flow: paper_flow(),
        },
        GalleryFlow {
            name: "paper_fixed_qpsk",
            description: "§6 case study, modulation fixed to mod_qpsk in static logic",
            flow: paper_fixed_flow("mod_qpsk"),
        },
        GalleryFlow {
            name: "paper_fixed_qam16",
            description: "§6 case study, modulation fixed to mod_qam16 in static logic",
            flow: paper_fixed_flow("mod_qam16"),
        },
        GalleryFlow {
            name: "two_regions",
            description: "§7 outlook: SDR receiver with two dynamic regions (XC2V3000)",
            flow: sdr_flow(Device::by_name("XC2V3000").expect("catalog device")),
        },
        GalleryFlow {
            name: "two_regions_xc2v4000",
            description: "the two-region SDR receiver on the larger XC2V4000",
            flow: sdr_flow(Device::by_name("XC2V4000").expect("catalog device")),
        },
        GalleryFlow {
            name: "synthetic_large",
            description: "512-op layered DAG over 8 operators with 2 dynamic regions (XC2V4000)",
            flow: synthetic_large_flow(),
        },
        GalleryFlow {
            name: "sdr_series7",
            description: "the two-region SDR receiver on a series7-like XC7A50T (2D rectangles)",
            flow: sdr_series7_flow(),
        },
    ]
}

/// The §6 case-study flow (dynamic modulation).
fn paper_flow() -> DesignFlow {
    DesignFlow::new(
        models::mccdma_algorithm(),
        models::sundance_architecture(),
        models::mccdma_characterization(),
        Device::xc2v2000(),
    )
    .with_constraints(models::mccdma_constraints())
    .with_adequation_options(PaperCaseStudy::adequation_options())
}

/// The §6 case study with the modulation fixed to one implementation
/// (everything static; the paper's Table 2 comparison baseline).
fn paper_fixed_flow(module: &str) -> DesignFlow {
    DesignFlow::new(
        models::mccdma_fixed(module),
        models::sundance_architecture(),
        models::mccdma_characterization(),
        Device::xc2v2000(),
    )
    .with_adequation_options(
        AdequationOptions::default()
            .pin("interface_in", "dsp")
            .pin("interface_out", "fpga_static")
            .pin("modulation", "fpga_static"),
    )
}

/// The two-region software-defined-radio receiver front end: a
/// conditioned channel filter on region `d1`, a conditioned decoder on
/// region `d2`, fixed AGC/sync blocks in the static part.
pub fn sdr_algorithm() -> AlgorithmGraph {
    let mut g = AlgorithmGraph::new("sdr_rx_front_end");
    let adc = g.add_op("adc", OpKind::Source).expect("fresh graph");
    let band_sel = g
        .add_op("band_select", OpKind::Source)
        .expect("fresh graph");
    let code_sel = g
        .add_op("code_select", OpKind::Source)
        .expect("fresh graph");
    let agc = g.add_compute("agc").expect("fresh graph");
    let filter = g
        .add_op(
            "channel_filter",
            OpKind::Conditioned {
                alternatives: vec!["fir_narrow".into(), "fir_wide".into()],
            },
        )
        .expect("fresh graph");
    let sync = g.add_compute("symbol_sync").expect("fresh graph");
    let decoder = g
        .add_op(
            "decoder",
            OpKind::Conditioned {
                alternatives: vec!["dec_viterbi".into(), "dec_turbo".into()],
            },
        )
        .expect("fresh graph");
    let sink = g.add_op("payload_out", OpKind::Sink).expect("fresh graph");
    g.connect(adc, agc, 4096).expect("valid edge");
    g.connect(agc, filter, 4096).expect("valid edge");
    g.connect(band_sel, filter, 2).expect("valid edge");
    g.connect(filter, sync, 2048).expect("valid edge");
    g.connect(sync, decoder, 1024).expect("valid edge");
    g.connect(code_sel, decoder, 2).expect("valid edge");
    g.connect(decoder, sink, 512).expect("valid edge");
    g
}

/// The two-region platform: one CPU and one FPGA whose fabric hosts two
/// independent dynamic regions behind the internal link.
pub fn sdr_architecture() -> ArchGraph {
    let mut a = ArchGraph::new("fig1_style_two_regions");
    let cpu = a
        .add_operator("cpu", OperatorKind::Processor)
        .expect("fresh graph");
    let f1 = a
        .add_operator("f1", OperatorKind::FpgaStatic)
        .expect("fresh graph");
    let d1 = a
        .add_operator("d1", OperatorKind::FpgaDynamic { host: "f1".into() })
        .expect("fresh graph");
    let d2 = a
        .add_operator("d2", OperatorKind::FpgaDynamic { host: "f1".into() })
        .expect("fresh graph");
    let bus = a
        .add_medium(
            "host_bus",
            MediumKind::Bus,
            800_000_000,
            TimePs::from_ns(300),
        )
        .expect("fresh graph");
    let il = a
        .add_medium(
            "il",
            MediumKind::InternalLink,
            1_600_000_000,
            TimePs::from_ns(20),
        )
        .expect("fresh graph");
    a.link(cpu, bus).expect("valid link");
    a.link(f1, bus).expect("valid link");
    a.link(f1, il).expect("valid link");
    a.link(d1, il).expect("valid link");
    a.link(d2, il).expect("valid link");
    a
}

/// Characterization of the SDR functions on the two-region platform.
pub fn sdr_characterization() -> Characterization {
    let mut c = Characterization::new();
    let us = TimePs::from_us;
    c.set_duration("agc", "f1", us(3))
        .set_duration("agc", "cpu", us(50))
        .set_duration("symbol_sync", "f1", us(4))
        .set_duration("symbol_sync", "cpu", us(70));
    for (f, wcet_us, region) in [
        ("fir_narrow", 5u64, "d1"),
        ("fir_wide", 8, "d1"),
        ("dec_viterbi", 10, "d2"),
        ("dec_turbo", 18, "d2"),
    ] {
        c.set_duration(f, region, us(wcet_us));
        c.set_duration(f, "cpu", us(wcet_us * 20));
    }
    c.set_resources("agc", Resources::logic(80, 140, 120));
    c.set_resources("symbol_sync", Resources::logic(110, 190, 160));
    c.set_resources("fir_narrow", Resources::logic(220, 380, 340));
    c.set_resources("fir_wide", Resources::logic(420, 760, 660));
    c.set_resources("dec_viterbi", Resources::logic(350, 620, 540));
    c.set_resources("dec_turbo", Resources::logic(780, 1_400, 1_180));
    c.set_reconfig_default("d1", TimePs::from_ms(3));
    c.set_reconfig_default("d2", TimePs::from_ms(6));
    c
}

/// Constraints of the SDR design: one share group per region, the
/// initially selected module of each region preloaded at start.
pub fn sdr_constraints() -> ConstraintsFile {
    let mut f = ConstraintsFile::new();
    for (module, region, preload) in [
        ("fir_narrow", "d1", true),
        ("fir_wide", "d1", false),
        ("dec_viterbi", "d2", true),
        ("dec_turbo", "d2", false),
    ] {
        let mut mc = ModuleConstraints::new(module, region);
        if preload {
            mc.load = LoadPolicy::AtStart;
        }
        mc.share_group = Some(region.to_string());
        f.add(mc).expect("unique module names");
    }
    f
}

/// The complete two-region SDR flow on the given device.
pub fn sdr_flow(device: Device) -> DesignFlow {
    DesignFlow::new(
        sdr_algorithm(),
        sdr_architecture(),
        sdr_characterization(),
        device,
    )
    .with_constraints(sdr_constraints())
    .with_adequation_options(
        AdequationOptions::default()
            .pin("adc", "cpu")
            .pin("band_select", "cpu")
            .pin("code_select", "cpu")
            .pin("payload_out", "f1"),
    )
}

/// The SDR characterization re-targeted at a series7-like part: same
/// functions and timing, but the filter/decoder modules now declare
/// block-RAM and DSP demand — the resource axes a 2D rectangular region
/// must cover in addition to slices.
pub fn sdr_series7_characterization() -> Characterization {
    let mut c = sdr_characterization();
    c.set_resources(
        "fir_narrow",
        Resources {
            brams: 2,
            mults: 8,
            ..Resources::logic(220, 380, 340)
        },
    );
    c.set_resources(
        "fir_wide",
        Resources {
            brams: 4,
            mults: 16,
            ..Resources::logic(420, 760, 660)
        },
    );
    c.set_resources(
        "dec_viterbi",
        Resources {
            brams: 6,
            mults: 2,
            ..Resources::logic(350, 620, 540)
        },
    );
    c.set_resources(
        "dec_turbo",
        Resources {
            brams: 10,
            mults: 4,
            ..Resources::logic(780, 1_400, 1_180)
        },
    );
    c
}

/// The two-region SDR flow on the second device generation: clock-region
/// rectangles instead of full-height columns, heterogeneous BRAM/DSP
/// columns inside the windows.
pub fn sdr_series7_flow() -> DesignFlow {
    DesignFlow::new(
        sdr_algorithm(),
        sdr_architecture(),
        sdr_series7_characterization(),
        Device::by_name("XC7A50T").expect("catalog device"),
    )
    .with_constraints(sdr_constraints())
    .with_adequation_options(
        AdequationOptions::default()
            .pin("adc", "cpu")
            .pin("band_select", "cpu")
            .pin("code_select", "cpu")
            .pin("payload_out", "f1"),
    )
}

/// Number of compute layers in the synthetic large algorithm.
const SYN_LAYERS: usize = 64;

/// Compute operations per layer (also the fan-in bound per operation).
const SYN_WIDTH: usize = 8;

/// The large synthetic algorithm: a 64×8 layered DAG of 512 compute
/// operations (each reading up to three operations of the previous
/// layer) feeding two conditioned operations — an equalizer on region
/// `d1` and a postcoder on region `d2`. Non-toy input for benches,
/// lints and sweeps; the structure is deterministic so every run and
/// every session sees the same graph.
pub fn synthetic_large_algorithm() -> AlgorithmGraph {
    let mut g = AlgorithmGraph::new("synthetic_large");
    let src = g.add_op("stream_in", OpKind::Source).expect("fresh graph");
    let mode_sel = g
        .add_op("mode_select", OpKind::Source)
        .expect("fresh graph");
    let rate_sel = g
        .add_op("rate_select", OpKind::Source)
        .expect("fresh graph");
    let mut prev: Vec<OpId> = Vec::new();
    for layer in 0..SYN_LAYERS {
        let mut row = Vec::with_capacity(SYN_WIDTH);
        for slot in 0..SYN_WIDTH {
            let idx = layer * SYN_WIDTH + slot;
            let op = g
                .add_compute(&format!("c{layer:02}_{slot}"))
                .expect("fresh graph");
            let bits = 256 + (idx as u64 % 5) * 128;
            if layer == 0 {
                g.connect(src, op, bits).expect("valid edge");
            } else if layer % 6 == 0 {
                // Every sixth layer couples neighbouring slots (up to
                // three distinct predecessors chosen by a fixed stride),
                // so the graph is reproducible and never decouples into
                // embarrassingly parallel chains.
                let mut preds = vec![slot, (slot + 1) % SYN_WIDTH, (slot + layer) % SYN_WIDTH];
                preds.sort_unstable();
                preds.dedup();
                for p in preds {
                    g.connect(prev[p], op, bits).expect("valid edge");
                }
            } else {
                // The other layers are slot-local: runs of independent
                // computation between the coupling layers, which is what
                // gives the scheduled executive genuine cross-operator
                // concurrency (and interleaving-level analyses a state
                // space worth reducing).
                g.connect(prev[slot], op, bits).expect("valid edge");
            }
            row.push(op);
        }
        prev = row;
    }
    let equalizer = g
        .add_op(
            "equalizer",
            OpKind::Conditioned {
                alternatives: vec!["eq_short".into(), "eq_long".into()],
            },
        )
        .expect("fresh graph");
    let postcoder = g
        .add_op(
            "postcoder",
            OpKind::Conditioned {
                alternatives: vec!["pc_fast".into(), "pc_dense".into()],
            },
        )
        .expect("fresh graph");
    let sink = g.add_op("stream_out", OpKind::Sink).expect("fresh graph");
    for &op in &prev {
        g.connect(op, equalizer, 1024).expect("valid edge");
    }
    g.connect(mode_sel, equalizer, 2).expect("valid edge");
    g.connect(equalizer, postcoder, 2048).expect("valid edge");
    g.connect(rate_sel, postcoder, 2).expect("valid edge");
    g.connect(postcoder, sink, 512).expect("valid edge");
    g
}

/// The 8-operator synthetic platform: five processors and one static
/// FPGA on the host bus, two dynamic regions behind the FPGA's internal
/// link.
pub fn synthetic_large_architecture() -> ArchGraph {
    let mut a = ArchGraph::new("synthetic_large_platform");
    let bus = a
        .add_medium(
            "host_bus",
            MediumKind::Bus,
            800_000_000,
            TimePs::from_ns(300),
        )
        .expect("fresh graph");
    for i in 0..5 {
        let cpu = a
            .add_operator(format!("cpu{i}"), OperatorKind::Processor)
            .expect("fresh graph");
        a.link(cpu, bus).expect("valid link");
    }
    let f1 = a
        .add_operator("f1", OperatorKind::FpgaStatic)
        .expect("fresh graph");
    let d1 = a
        .add_operator("d1", OperatorKind::FpgaDynamic { host: "f1".into() })
        .expect("fresh graph");
    let d2 = a
        .add_operator("d2", OperatorKind::FpgaDynamic { host: "f1".into() })
        .expect("fresh graph");
    let il = a
        .add_medium(
            "il",
            MediumKind::InternalLink,
            1_600_000_000,
            TimePs::from_ns(20),
        )
        .expect("fresh graph");
    a.link(f1, bus).expect("valid link");
    a.link(f1, il).expect("valid link");
    a.link(d1, il).expect("valid link");
    a.link(d2, il).expect("valid link");
    a
}

/// Characterization of the synthetic functions: every layered compute is
/// feasible on the five processors with deterministic, varied WCETs (the
/// static FPGA only hosts the regions and the communication fabric, so
/// its entity stays within the device); the conditioned alternatives
/// live on their regions.
pub fn synthetic_large_characterization() -> Characterization {
    let mut c = Characterization::new();
    let us = TimePs::from_us;
    for layer in 0..SYN_LAYERS {
        for slot in 0..SYN_WIDTH {
            let idx = (layer * SYN_WIDTH + slot) as u64;
            let f = format!("c{layer:02}_{slot}");
            for k in 0..5u64 {
                // Each slot chain has a consistently cheapest processor
                // (slot-affine term) with per-op jitter on top: chains
                // stay put between coupling layers instead of hopping
                // processors, the way a pipeline stage sticks to the
                // core its kernel is tuned for.
                let affinity = if slot as u64 % 5 == k { 0 } else { 12 };
                c.set_duration(&f, &format!("cpu{k}"), us(6 + affinity + (idx * 7) % 5));
            }
        }
    }
    for (f, wcet_us, region) in [
        ("eq_short", 6u64, "d1"),
        ("eq_long", 9, "d1"),
        ("pc_fast", 11, "d2"),
        ("pc_dense", 17, "d2"),
    ] {
        c.set_duration(f, region, us(wcet_us));
        c.set_duration(f, "cpu0", us(wcet_us * 20));
    }
    c.set_resources("eq_short", Resources::logic(240, 420, 380));
    c.set_resources("eq_long", Resources::logic(460, 800, 700));
    c.set_resources("pc_fast", Resources::logic(380, 680, 560));
    c.set_resources("pc_dense", Resources::logic(820, 1_500, 1_260));
    c.set_reconfig_default("d1", TimePs::from_ms(3));
    c.set_reconfig_default("d2", TimePs::from_ms(6));
    c
}

/// Constraints of the synthetic design: one share group per region, the
/// initially selected module of each region preloaded at start.
pub fn synthetic_large_constraints() -> ConstraintsFile {
    let mut f = ConstraintsFile::new();
    for (module, region, preload) in [
        ("eq_short", "d1", true),
        ("eq_long", "d1", false),
        ("pc_fast", "d2", true),
        ("pc_dense", "d2", false),
    ] {
        let mut mc = ModuleConstraints::new(module, region);
        if preload {
            mc.load = LoadPolicy::AtStart;
        }
        mc.share_group = Some(region.to_string());
        f.add(mc).expect("unique module names");
    }
    f
}

/// The complete large synthetic flow on the XC2V4000.
pub fn synthetic_large_flow() -> DesignFlow {
    DesignFlow::new(
        synthetic_large_algorithm(),
        synthetic_large_architecture(),
        synthetic_large_characterization(),
        Device::by_name("XC2V4000").expect("catalog device"),
    )
    .with_constraints(synthetic_large_constraints())
    .with_adequation_options(
        AdequationOptions::default()
            .pin("stream_in", "cpu0")
            .pin("mode_select", "cpu0")
            .pin("rate_select", "cpu1")
            .pin("stream_out", "cpu0"),
    )
}

/// Parameters for the seeded flow generator [`synthetic`].
///
/// Everything is derived from `seed` through a splitmix64 stream, so a
/// given parameter set names exactly one flow — across runs, sessions and
/// thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticParams {
    /// PRNG seed; every structural and timing choice derives from it.
    pub seed: u64,
    /// Compute layers in the DAG.
    pub layers: usize,
    /// Compute operations per layer.
    pub width: usize,
    /// Every `coupling`-th layer reads up to three slots of the previous
    /// layer instead of one (`0` disables coupling entirely).
    pub coupling: usize,
    /// Processor count on the host bus.
    pub cpus: usize,
    /// Dynamic regions behind the static FPGA (each gets one conditioned
    /// tail operation and its own selector source).
    pub regions: usize,
    /// Function symbols the plain computes draw from: realistic designs
    /// instantiate a handful of kernels many times, and the pool is what
    /// makes characterization probes repeat.
    pub fn_pool: usize,
    /// Alternatives per conditioned tail operation (≥ 2).
    pub alternatives: usize,
    /// Base WCET of a pool kernel, microseconds.
    pub wcet_base_us: u64,
    /// Uniform jitter added on top of the base, microseconds.
    pub wcet_spread_us: u64,
}

impl Default for SyntheticParams {
    fn default() -> Self {
        SyntheticParams {
            seed: 1,
            layers: 32,
            width: 16,
            coupling: 6,
            cpus: 16,
            regions: 2,
            fn_pool: 64,
            alternatives: 4,
            wcet_base_us: 6,
            wcet_spread_us: 5,
        }
    }
}

impl SyntheticParams {
    /// A parameter set with roughly `n_ops` compute operations (width 16,
    /// defaults elsewhere) — the size-sweep constructor.
    pub fn sized(n_ops: usize) -> Self {
        let width = 16;
        SyntheticParams {
            layers: n_ops.div_ceil(width).max(1),
            width,
            ..SyntheticParams::default()
        }
    }

    /// Compute operations the generated DAG will contain.
    pub fn compute_ops(&self) -> usize {
        self.layers * self.width
    }
}

/// Inline splitmix64: pdr-core carries no RNG dependency, and the
/// generator only needs a deterministic, well-mixed u64 stream.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n ≥ 1); bias is irrelevant for a generator.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Generate a complete, lint-clean design flow from `params`.
///
/// The shape mirrors `synthetic_large` — a layered compute DAG with
/// periodic coupling layers, feeding one conditioned operation per
/// dynamic region — but every count is a parameter and the edge widths,
/// kernel assignment and WCET tables are drawn from the seed. The same
/// `params` always yields the same flow (see the determinism test), which
/// is what lets differential suites quote failures by seed.
pub fn synthetic(params: &SyntheticParams) -> DesignFlow {
    assert!(params.width >= 1 && params.layers >= 1, "non-empty DAG");
    assert!(params.cpus >= 1, "at least one processor");
    assert!(params.regions >= 1, "at least one dynamic region");
    assert!(params.alternatives >= 2, "conditioned ops need ≥ 2 alts");
    assert!(params.fn_pool >= 1, "non-empty kernel pool");
    let mut rng = SplitMix64(params.seed ^ 0xa076_1d64_78bd_642f);

    // --- algorithm -----------------------------------------------------
    let mut g = AlgorithmGraph::new("synthetic_gen");
    let src = g.add_op("stream_in", OpKind::Source).expect("fresh graph");
    let mut prev: Vec<OpId> = Vec::new();
    for layer in 0..params.layers {
        let mut row = Vec::with_capacity(params.width);
        for slot in 0..params.width {
            let kern = rng.below(params.fn_pool as u64);
            let op = g
                .add_op(
                    format!("g{layer:03}_{slot:02}"),
                    OpKind::Compute {
                        function: format!("synth_block_{kern:02}_fir_decim_q15"),
                    },
                )
                .expect("fresh graph");
            let bits = 256 + rng.below(5) * 128;
            if layer == 0 {
                g.connect(src, op, bits).expect("valid edge");
            } else if params.coupling != 0 && layer % params.coupling == 0 {
                let mut preds = vec![
                    slot,
                    (slot + 1) % params.width,
                    (slot + layer) % params.width,
                ];
                preds.sort_unstable();
                preds.dedup();
                for p in preds {
                    g.connect(prev[p], op, bits).expect("valid edge");
                }
            } else {
                g.connect(prev[slot], op, bits).expect("valid edge");
            }
            row.push(op);
        }
        prev = row;
    }
    // One conditioned stage per region, chained after the compute block.
    let mut stage_prev: Option<OpId> = None;
    for r in 0..params.regions {
        let sel = g
            .add_op(format!("sel{r}"), OpKind::Source)
            .expect("fresh graph");
        let stage = g
            .add_op(
                format!("stage{r}"),
                OpKind::Conditioned {
                    alternatives: (0..params.alternatives)
                        .map(|a| format!("pr_region{r}_alt{a}_bitstream"))
                        .collect(),
                },
            )
            .expect("fresh graph");
        match stage_prev {
            None => {
                for &op in &prev {
                    g.connect(op, stage, 1024).expect("valid edge");
                }
            }
            Some(p) => {
                g.connect(p, stage, 2048).expect("valid edge");
            }
        }
        g.connect(sel, stage, 2).expect("valid edge");
        stage_prev = Some(stage);
    }
    let sink = g.add_op("stream_out", OpKind::Sink).expect("fresh graph");
    g.connect(stage_prev.expect("≥ 1 region"), sink, 512)
        .expect("valid edge");

    // --- architecture --------------------------------------------------
    let mut a = ArchGraph::new("synthetic_gen_platform");
    let bus = a
        .add_medium(
            "host_bus",
            MediumKind::Bus,
            800_000_000,
            TimePs::from_ns(300),
        )
        .expect("fresh graph");
    for i in 0..params.cpus {
        let cpu = a
            .add_operator(format!("cpu{i}"), OperatorKind::Processor)
            .expect("fresh graph");
        a.link(cpu, bus).expect("valid link");
    }
    let f1 = a
        .add_operator("f1", OperatorKind::FpgaStatic)
        .expect("fresh graph");
    let il = a
        .add_medium(
            "il",
            MediumKind::InternalLink,
            1_600_000_000,
            TimePs::from_ns(20),
        )
        .expect("fresh graph");
    a.link(f1, bus).expect("valid link");
    a.link(f1, il).expect("valid link");
    for r in 0..params.regions {
        let d = a
            .add_operator(
                format!("d{}", r + 1),
                OperatorKind::FpgaDynamic { host: "f1".into() },
            )
            .expect("fresh graph");
        a.link(d, il).expect("valid link");
    }

    // --- characterization ----------------------------------------------
    let us = TimePs::from_us;
    let mut c = Characterization::new();
    for k in 0..params.fn_pool {
        let f = format!("synth_block_{k:02}_fir_decim_q15");
        let jitter = rng.below(params.wcet_spread_us.max(1));
        for i in 0..params.cpus {
            // Each kernel has a home processor it is tuned for; everywhere
            // else costs a fixed detuning penalty (same shape as
            // `synthetic_large`'s slot affinity).
            let affinity = if k % params.cpus == i { 0 } else { 12 };
            c.set_duration(
                &f,
                &format!("cpu{i}"),
                us(params.wcet_base_us + affinity + jitter),
            );
        }
    }
    let mut constraints = ConstraintsFile::new();
    for r in 0..params.regions {
        let region = format!("d{}", r + 1);
        for aidx in 0..params.alternatives {
            let f = format!("pr_region{r}_alt{aidx}_bitstream");
            let w = 6 + rng.below(12);
            c.set_duration(&f, &region, us(w));
            c.set_duration(&f, "cpu0", us(w * 20));
            let step = aidx as u32;
            c.set_resources(
                &f,
                Resources::logic(240 + step * 140, 420 + step * 260, 380 + step * 220),
            );
            let mut mc = ModuleConstraints::new(&f, &region);
            if aidx == 0 {
                mc.load = LoadPolicy::AtStart;
            }
            mc.share_group = Some(region.clone());
            constraints.add(mc).expect("unique module names");
        }
        c.set_reconfig_default(&region, TimePs::from_ms(3 * (r as u64 + 1)));
    }

    // --- flow ----------------------------------------------------------
    let mut options = AdequationOptions::default()
        .pin("stream_in", "cpu0")
        .pin("stream_out", "cpu0");
    for r in 0..params.regions {
        options = options.pin(&format!("sel{r}"), &format!("cpu{}", r % params.cpus));
    }
    DesignFlow::new(
        g,
        a,
        c,
        Device::by_name("XC2V4000").expect("catalog device"),
    )
    .with_constraints(constraints)
    .with_adequation_options(options)
}

/// The 10 000-compute-operation flow the scale benchmarks run on
/// (625 × 16 layered DAG over 19 operators, 2 dynamic regions).
///
/// Deliberately *not* part of [`all`]: gallery-wide tests and lints stay
/// fast, and the scale tooling names it explicitly.
pub fn synthetic_10k() -> DesignFlow {
    synthetic(&SyntheticParams::sized(10_000))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_resolvable() {
        let names = names();
        assert_eq!(names.len(), 7);
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
        for n in names {
            assert!(by_name(n).is_some(), "{n} resolves");
        }
        assert!(by_name("nonsense").is_none());
    }

    #[test]
    fn every_gallery_flow_runs() {
        for g in all() {
            let art = g.flow.run().unwrap_or_else(|e| {
                panic!("gallery flow `{}` failed: {e}", g.name);
            });
            assert!(!art.executive.is_empty(), "{}", g.name);
        }
    }

    #[test]
    fn generated_flow_is_deterministic_by_seed() {
        let p = SyntheticParams {
            layers: 6,
            width: 4,
            cpus: 3,
            fn_pool: 8,
            ..SyntheticParams::default()
        };
        assert_eq!(synthetic(&p).model_digest(), synthetic(&p).model_digest());
        let other = SyntheticParams { seed: 2, ..p };
        assert_ne!(
            synthetic(&p).model_digest(),
            synthetic(&other).model_digest()
        );
    }

    #[test]
    fn small_generated_flow_runs_and_verifies_clean() {
        let p = SyntheticParams {
            layers: 4,
            width: 4,
            cpus: 3,
            fn_pool: 6,
            ..SyntheticParams::default()
        };
        let flow = synthetic(&p);
        let art = flow.run().unwrap();
        assert!(!art.executive.is_empty());
        let report = flow.verify_with(&art, None);
        assert!(report.is_clean(), "{}", pdr_lint::render::to_text(&report));
    }

    #[test]
    fn sized_params_hit_the_requested_op_count() {
        assert_eq!(SyntheticParams::sized(10_000).compute_ops(), 10_000);
        assert_eq!(SyntheticParams::sized(512).compute_ops(), 512);
        let flow = synthetic(&SyntheticParams::sized(512));
        let computes = flow
            .algorithm()
            .ops()
            .filter(|(_, op)| matches!(op.kind, OpKind::Compute { .. }))
            .count();
        assert_eq!(computes, 512);
        // 16 CPUs + static FPGA + 2 regions.
        assert_eq!(flow.architecture().operators().count(), 19);
    }

    #[test]
    fn synthetic_10k_is_not_in_the_gallery_listing() {
        // The scale flow is named explicitly by the benches; keeping it
        // out of `all()` keeps gallery-wide suites fast.
        assert_eq!(names().len(), 7);
        let flow = synthetic_10k();
        assert_eq!(
            flow.algorithm()
                .ops()
                .filter(|(_, op)| matches!(op.kind, OpKind::Compute { .. }))
                .count(),
            10_000
        );
    }

    #[test]
    fn synthetic_large_flow_has_advertised_shape() {
        let g = by_name("synthetic_large").unwrap();
        let algo = g.flow.algorithm();
        let computes = algo
            .ops()
            .filter(|(_, op)| matches!(op.kind, OpKind::Compute { .. }))
            .count();
        assert_eq!(computes, SYN_LAYERS * SYN_WIDTH);
        assert_eq!(g.flow.architecture().operators().count(), 8);
        let art = g.flow.run().unwrap();
        assert_eq!(art.design.floorplan.floorplan.regions().len(), 2);
        assert_eq!(art.design.modules.len(), 4);
    }

    #[test]
    fn two_region_flow_produces_two_regions() {
        let g = by_name("two_regions").unwrap();
        let art = g.flow.run().unwrap();
        assert_eq!(art.design.floorplan.floorplan.regions().len(), 2);
        assert_eq!(art.design.modules.len(), 4);
    }

    #[test]
    fn series7_flow_places_rectangles_that_cover_bram_demand() {
        let g = by_name("sdr_series7").unwrap();
        let art = g.flow.run().unwrap();
        let fp = &art.design.floorplan.floorplan;
        assert_eq!(fp.regions().len(), 2);
        let device = &fp.device;
        for r in fp.regions() {
            let span = r.rows.expect("series7 regions are rectangles");
            assert_eq!(span.clb_row_start % 50, 0);
            assert_eq!(span.clb_row_count % 50, 0);
            let have = r.resources(device);
            let need = &art.design.floorplan.region_envelopes[&r.name];
            assert!(have.covers(need), "{}: {have:?} !>= {need:?}", r.name);
        }
        // dec_turbo declared 10 BRAMs; its region's window must hold them.
        let d2 = fp.region("d2").unwrap();
        assert!(d2.resources(device).brams >= 10);
    }
}
