//! Error type for the top-level flow.

use pdr_adequation::AdequationError;
use pdr_codegen::CodegenError;
use pdr_graph::GraphError;
use pdr_rtr::RtrError;
use pdr_sim::SimError;
use std::fmt;

/// Any failure along the Fig. 3 pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// Modeling / validation failure.
    Graph(GraphError),
    /// Adequation failure.
    Adequation(AdequationError),
    /// Design generation / floorplanning failure.
    Codegen(CodegenError),
    /// Runtime (manager/bitstream) failure during deployment.
    Runtime(RtrError),
    /// Simulation failure.
    Sim(SimError),
    /// Static analysis found errors in the produced artifacts; carries
    /// the rendered `pdr-lint` report.
    Lint(String),
    /// Flow configuration error (missing input, inconsistent options).
    Config(String),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Graph(e) => write!(f, "modeling: {e}"),
            FlowError::Adequation(e) => write!(f, "adequation: {e}"),
            FlowError::Codegen(e) => write!(f, "design generation: {e}"),
            FlowError::Runtime(e) => write!(f, "runtime: {e}"),
            FlowError::Sim(e) => write!(f, "simulation: {e}"),
            FlowError::Lint(report) => write!(f, "static analysis: {report}"),
            FlowError::Config(msg) => write!(f, "flow configuration: {msg}"),
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowError::Graph(e) => Some(e),
            FlowError::Adequation(e) => Some(e),
            FlowError::Codegen(e) => Some(e),
            FlowError::Runtime(e) => Some(e),
            FlowError::Sim(e) => Some(e),
            FlowError::Lint(_) | FlowError::Config(_) => None,
        }
    }
}

impl From<GraphError> for FlowError {
    fn from(e: GraphError) -> Self {
        FlowError::Graph(e)
    }
}
impl From<AdequationError> for FlowError {
    fn from(e: AdequationError) -> Self {
        FlowError::Adequation(e)
    }
}
impl From<CodegenError> for FlowError {
    fn from(e: CodegenError) -> Self {
        FlowError::Codegen(e)
    }
}
impl From<RtrError> for FlowError {
    fn from(e: RtrError) -> Self {
        FlowError::Runtime(e)
    }
}
impl From<SimError> for FlowError {
    fn from(e: SimError) -> Self {
        FlowError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: FlowError = GraphError::UnknownVertex("x".into()).into();
        assert!(e.to_string().starts_with("modeling:"));
        assert!(std::error::Error::source(&e).is_some());
        let c = FlowError::Config("no device".into());
        assert!(c.to_string().contains("no device"));
        assert!(std::error::Error::source(&c).is_none());
    }
}
