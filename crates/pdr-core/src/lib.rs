//! # pdr-core — the complete top-down design flow
//!
//! This crate is the paper's Figure 3 as one API: *"By using SynDEx tool
//! and Xilinx Modular Design flow, we define a top-down and validated
//! methodology addressing the complete design flow."*
//!
//! ```text
//! Modelisation (graphs, constraints)          pdr-graph
//!        │ adequation                         pdr-adequation
//!        ▼
//! macro-code (synchronized executive)
//!        │ VHDL generation + constraints file pdr-codegen
//!        ▼
//! structural design
//!        │ Modular Design analog (floorplan,
//!        │ place, bitgen)                     pdr-codegen + pdr-fabric
//!        ▼
//! bitstreams + floorplan
//!        │ deploy                              pdr-rtr + pdr-sim
//!        ▼
//! running system (DES) with runtime reconfiguration manager
//! ```
//!
//! * [`flow`] — [`DesignFlow`]: one builder that runs the whole pipeline
//!   and returns every intermediate artifact ([`FlowArtifacts`]);
//!   [`DesignFlow::verify`] statically analyzes those artifacts with
//!   `pdr-lint` (rendezvous, deadlock, reconfiguration safety, floorplan)
//!   and [`DesignFlow::run_verified`] gates on a clean report;
//! * [`gallery`] — named, ready-to-run example flows (the §6 case-study
//!   variants plus two-region designs) shared by the `pdr-lint` CLI,
//!   ci.sh and the lint regression suite;
//! * [`deploy`] — turn artifacts into a runnable [`deploy::DeployedSystem`]
//!   (configuration managers built from the generated bitstreams, port and
//!   memory models chosen per Fig. 2 variant) and simulate it;
//! * [`paper`] — the §6 case study pre-assembled: the MC-CDMA transmitter
//!   on the Sundance DSP + XC2V2000 platform, plus helpers to turn an SNR
//!   trace into per-iteration module selections via the adaptive policy.
//!
//! ## Quickstart
//!
//! ```
//! use pdr_core::paper::PaperCaseStudy;
//!
//! let study = PaperCaseStudy::build().expect("flow runs");
//! // The dynamic region is ~8 % of the device and reconfigures in ~4 ms.
//! let frac = study.artifacts.design.floorplan.floorplan.dynamic_fraction();
//! assert!((frac - 0.083).abs() < 0.01);
//! ```

pub mod deploy;
pub mod error;
pub mod flow;
pub mod gallery;
pub mod paper;

pub use deploy::{DeployedSystem, EvictionChoice, PrefetchChoice, RuntimeOptions};
pub use error::FlowError;
pub use flow::{DesignFlow, FlowArtifacts};

// Re-export the component crates so downstream users need one dependency.
pub use pdr_adequation as adequation;
pub use pdr_codegen as codegen;
pub use pdr_fabric as fabric;
pub use pdr_graph as graph;
pub use pdr_lint as lint;
pub use pdr_mccdma as mccdma;
pub use pdr_rtr as rtr;
pub use pdr_sim as sim;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::deploy::{DeployedSystem, EvictionChoice, PrefetchChoice, RuntimeOptions};
    pub use crate::error::FlowError;
    pub use crate::flow::{DesignFlow, FlowArtifacts};
    pub use crate::paper::PaperCaseStudy;
}
