//! The §6 case study, pre-assembled.
//!
//! One call builds the complete reconfigurable MC-CDMA transmitter of
//! Fig. 4: the Fig. 4 algorithm graph on the Sundance platform (TI C6201 +
//! XC2V2000), adequated, generated, floorplanned (the `op_dyn` region
//! pinned to ~8 % of the device) and ready to deploy. Helpers translate an
//! SNR trace through the adaptive policy into the per-iteration module
//! selections the simulator consumes — the full loop the paper describes:
//! *SNR → Select → reconfiguration request → ICAP*.

use crate::deploy::{DeployedSystem, RuntimeOptions};
use crate::error::FlowError;
use crate::flow::{DesignFlow, FlowArtifacts};
use pdr_adequation::AdequationOptions;
use pdr_fabric::Device;
use pdr_graph::{paper as models, ArchGraph};
use pdr_mccdma::{AdaptivePolicy, Modulation};

/// The built case study.
pub struct PaperCaseStudy {
    /// The flow that produced the artifacts.
    pub flow: DesignFlow,
    /// All pipeline artifacts.
    pub artifacts: FlowArtifacts,
    /// The platform graph (shared with the flow).
    pub arch: ArchGraph,
}

impl PaperCaseStudy {
    /// The adequation pins of the case study: interfaces on their physical
    /// sides (data and `Select` originate at the DSP; the air interface
    /// leaves through the FPGA).
    pub fn adequation_options() -> AdequationOptions {
        AdequationOptions::default()
            .pin("interface_in", "dsp")
            .pin("select", "dsp")
            .pin("interface_out", "fpga_static")
    }

    /// Build the complete case study (runs the whole Fig. 3 pipeline).
    pub fn build() -> Result<Self, FlowError> {
        let arch = models::sundance_architecture();
        let flow = DesignFlow::new(
            models::mccdma_algorithm(),
            arch.clone(),
            models::mccdma_characterization(),
            Device::xc2v2000(),
        )
        .with_constraints(models::mccdma_constraints())
        .with_adequation_options(Self::adequation_options());
        let artifacts = flow.run()?;
        Ok(PaperCaseStudy {
            flow,
            artifacts,
            arch,
        })
    }

    /// Deploy onto the simulator with the given runtime options.
    pub fn deploy(&self, options: RuntimeOptions) -> DeployedSystem<'_> {
        DeployedSystem::new(&self.arch, &self.artifacts, Device::xc2v2000(), options)
    }

    /// Run the adaptive policy over an SNR trace and return the
    /// per-OFDM-symbol module selections for the `op_dyn` region.
    pub fn selections_from_snr(policy: &AdaptivePolicy, snr_db: &[f64]) -> Vec<String> {
        policy
            .run(Modulation::Qpsk, snr_db)
            .into_iter()
            .map(|m| m.module_name().to_string())
            .collect()
    }

    /// The load sequence implied by a selection vector, given that
    /// `mod_qpsk` is preloaded (`load = at_start`): the inputs a
    /// schedule-driven prefetcher replays.
    pub fn load_sequence(selections: &[String]) -> Vec<String> {
        let mut seq = Vec::new();
        let mut current = "mod_qpsk".to_string();
        for s in selections {
            if *s != current {
                seq.push(s.clone());
                current = s.clone();
            }
        }
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_mccdma::SnrTrace;
    use pdr_sim::SimConfig;

    #[test]
    fn case_study_builds_with_paper_numbers() {
        let s = PaperCaseStudy::build().unwrap();
        // ~8 % dynamic area.
        let frac = s.artifacts.design.floorplan.floorplan.dynamic_fraction();
        assert!((frac - 4.0 / 48.0).abs() < 1e-9);
        // Both modulations generated.
        assert_eq!(s.artifacts.design.modules.len(), 2);
    }

    #[test]
    fn snr_trace_to_selections_and_loads() {
        let policy = AdaptivePolicy::paper_default();
        let snr = SnrTrace::sinusoidal(6.0, 20.0, 20, 60);
        let sel = PaperCaseStudy::selections_from_snr(&policy, &snr);
        assert_eq!(sel.len(), 60);
        assert!(sel.iter().any(|s| s == "mod_qam16"));
        let loads = PaperCaseStudy::load_sequence(&sel);
        assert!(!loads.is_empty());
        // Loads alternate by construction.
        for w in loads.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }

    #[test]
    fn end_to_end_adaptive_simulation() {
        let s = PaperCaseStudy::build().unwrap();
        let policy = AdaptivePolicy::paper_default();
        let snr = SnrTrace::sinusoidal(6.0, 20.0, 16, 48);
        let sel = PaperCaseStudy::selections_from_snr(&policy, &snr);
        let loads = PaperCaseStudy::load_sequence(&sel);
        let switches = loads.len();
        let dep = s.deploy(RuntimeOptions::paper_prefetch(loads));
        let cfg = SimConfig::iterations(48).with_selection("op_dyn", sel);
        let report = dep.simulate(&cfg).unwrap();
        assert_eq!(report.reconfig_count(), switches);
        assert!(report.hidden_fetches() > 0);
    }
}
