//! Extension features in one run: functional fidelity (every
//! reconfiguration applied to a real configuration memory and
//! readback-verified), compressed bitstream storage, and an ASCII Gantt
//! chart of the resulting schedule.
//!
//! ```text
//! cargo run --example verified_system
//! ```

use pdr_core::paper::PaperCaseStudy;
use pdr_core::{PrefetchChoice, RuntimeOptions};
use pdr_sim::{gantt, SimConfig};

fn main() {
    let study = PaperCaseStudy::build().expect("flow runs");
    let symbols = 48u32;
    let selections: Vec<String> = (0..symbols)
        .map(|i| {
            if (i / 12) % 2 == 0 {
                "mod_qpsk".to_string()
            } else {
                "mod_qam16".to_string()
            }
        })
        .collect();
    let loads = PaperCaseStudy::load_sequence(&selections);

    // Compressed storage + schedule-driven prefetching + verification.
    let options = RuntimeOptions {
        compressed_storage: true,
        cache_modules: 2,
        prefetch: PrefetchChoice::ScheduleDriven(loads),
        ..RuntimeOptions::default()
    };
    let deployed = study.deploy(options);
    let cfg = SimConfig::iterations(symbols)
        .with_selection("op_dyn", selections)
        .with_trace();
    let (report, loader_stats) = deployed
        .simulate_verified(&cfg)
        .expect("verified simulation runs");

    println!("== verified, compressed, prefetched run ==");
    println!("{}", report.summary());
    println!(
        "loader: {} loads, {} readback verifications, {} failures",
        loader_stats.loads, loader_stats.verifications, loader_stats.verify_failures
    );
    for rc in &report.reconfigs {
        println!(
            "  iter {:>2}: {:10} in {} (fetch hidden: {})",
            rc.iteration,
            rc.module,
            rc.latency(),
            rc.fetch_hidden
        );
    }

    println!("\n== Gantt (full run) ==");
    print!("{}", gantt::to_gantt(&report, 100));

    // CSV for external plotting.
    let csv = gantt::to_csv(&report);
    println!(
        "\ntrace: {} events ({} bytes as CSV via pdr_sim::gantt::to_csv)",
        report.trace.len(),
        csv.len()
    );
}
