//! Quickstart: run the paper's complete top-down flow and simulate the
//! resulting reconfigurable system.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! This walks the whole Figure 3 pipeline on the §6 case study (MC-CDMA
//! transmitter, Sundance DSP + XC2V2000): modeling → adequation →
//! macro-code → design generation → floorplan/bitstreams → deployment on
//! the discrete-event simulator with the runtime reconfiguration manager.

use pdr_core::paper::PaperCaseStudy;
use pdr_core::RuntimeOptions;
use pdr_sim::SimConfig;

fn main() {
    // 1. Build the case study: this runs the complete design flow.
    let study = PaperCaseStudy::build().expect("the paper flow runs");

    let design = &study.artifacts.design;
    println!("== generated design ==");
    println!(
        "static part: {} (fits XC2V2000: {})",
        design.static_resources,
        design.static_resources.slices < 10_752
    );
    for m in &design.modules {
        println!(
            "dynamic module {:12} -> region {} ({})",
            m.module, m.region, design.module_resources[&m.module]
        );
    }
    let region = design.floorplan.floorplan.region("op_dyn").expect("placed");
    println!(
        "region op_dyn: CLB columns [{}, {}) = {:.1} % of the device",
        region.clb_col_start,
        region.clb_col_end(),
        100.0 * design.floorplan.floorplan.dynamic_fraction()
    );
    for (name, bs) in &design.floorplan.bitstreams {
        println!("bitstream {:12} {:>8} bytes", name, bs.len_bytes());
    }

    // 2. The synchronized executive (macro-code) per operator.
    println!("\n== synchronized executive ==");
    print!("{}", study.artifacts.executive.render());

    // 3. Deploy and simulate 64 OFDM symbols that switch modulation
    //    every 16 symbols.
    let selections: Vec<String> = (0..64u32)
        .map(|i| {
            if (i / 16) % 2 == 0 {
                "mod_qpsk".to_string()
            } else {
                "mod_qam16".to_string()
            }
        })
        .collect();
    let deployed = study.deploy(RuntimeOptions::paper_baseline());
    let report = deployed
        .simulate(&SimConfig::iterations(64).with_selection("op_dyn", selections))
        .expect("simulation runs");

    println!("\n== simulation ==");
    println!("{}", report.summary());
    for rc in &report.reconfigs {
        println!(
            "  iteration {:>3}: load {:10} in {} (fetch hidden: {})",
            rc.iteration,
            rc.module,
            rc.latency(),
            rc.fetch_hidden
        );
    }
}
