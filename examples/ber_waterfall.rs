//! Plot-ready BER waterfall of the MC-CDMA link: QPSK vs QAM-16 vs the
//! adaptive policy, measured and theoretical.
//!
//! ```text
//! cargo run --release --example ber_waterfall
//! ```
//!
//! Prints a CSV-ish table (and an ASCII sketch) of BER vs per-sample
//! Es/N0 — the functional motivation for making modulation the dynamic
//! block: QPSK survives ~6 dB deeper into the noise, QAM-16 doubles the
//! throughput when the channel allows.

use pdr_bench::fig4;
use pdr_mccdma::ber::{qam16_ber_theory, qpsk_ber_theory};
use pdr_sweep::SweepEngine;

fn bar(ber: f64) -> String {
    // log-scale bar: full at 0.5, empty below 1e-6.
    if ber <= 0.0 {
        return String::new();
    }
    let level = ((ber.log10() + 6.0) / 6.0 * 30.0).clamp(0.0, 30.0) as usize;
    "#".repeat(level)
}

fn main() {
    let points: Vec<f64> = (-16..=2).step_by(2).map(|db| db as f64).collect();
    let frames = 20;
    // Fan the points out over the sweep engine; progress goes to stderr
    // so the CSV on stdout stays clean.
    let engine = SweepEngine::new().on_progress(|p| {
        eprintln!(
            "[{}/{}] {} ({:.2}s)",
            p.completed,
            p.total,
            p.label,
            p.wall.as_secs_f64()
        );
    });
    let report = fig4::ber_sweep(&points, frames, &engine);
    eprintln!("{}", report.stats.render());
    let sweep = fig4::Fig4Ber {
        points: report.into_values().expect("BER scenarios are infallible"),
    };
    // SF-32 despreading gain relates per-sample Es/N0 to per-symbol SNR.
    let gain_db = 10.0 * 32f64.log10();

    println!("es_n0_db,symbol_snr_db,ber_qpsk,ber_qam16,ber_adaptive,adaptive_bits_per_symbol,theory_qpsk,theory_qam16");
    for p in &sweep.points {
        let symbol_snr = p.es_n0_db + gain_db;
        // Theory: per-bit SNR from per-symbol SNR.
        let snr_lin = 10f64.powf(symbol_snr / 10.0);
        let th_qpsk = qpsk_ber_theory(10.0 * (snr_lin / 2.0).log10());
        let th_qam = qam16_ber_theory(10.0 * (snr_lin / 4.0).log10());
        println!(
            "{:.1},{:.1},{:.3e},{:.3e},{:.3e},{:.2},{:.3e},{:.3e}",
            p.es_n0_db,
            symbol_snr,
            p.ber_qpsk,
            p.ber_qam16,
            p.ber_adaptive,
            p.adaptive_bits_per_symbol,
            th_qpsk,
            th_qam
        );
    }

    println!("\nQAM-16 BER (log bar, # = worse):");
    for p in &sweep.points {
        println!("{:>6.1} dB |{}", p.es_n0_db, bar(p.ber_qam16));
    }
    println!("\nQPSK BER:");
    for p in &sweep.points {
        println!("{:>6.1} dB |{}", p.es_n0_db, bar(p.ber_qpsk));
    }
}
