//! The full adaptive MC-CDMA loop of §6: channel SNR drives the `Select`
//! entry, `Select` drives reconfiguration of the modulation block, and the
//! bit-true baseband confirms what each modulation delivers on the air.
//!
//! ```text
//! cargo run --example adaptive_transmitter
//! ```
//!
//! The example runs the *same* SNR scenario through both halves of the
//! reproduction:
//!
//! 1. the **system half** — the generated design on the simulator, with
//!    and without configuration prefetching;
//! 2. the **functional half** — the actual MC-CDMA waveform through an
//!    AWGN channel at each point of the scenario, counting bit errors.

use pdr_core::paper::PaperCaseStudy;
use pdr_core::RuntimeOptions;
use pdr_mccdma::prelude::*;
use pdr_sim::SimConfig;

fn main() {
    let symbols = 240usize;
    // A vehicle passing through coverage: SNR swings 6..20 dB.
    let snr = SnrTrace::sinusoidal(6.0, 20.0, 60, symbols);
    let policy = AdaptivePolicy::paper_default();
    let mods = policy.run(Modulation::Qpsk, &snr);
    let switches = AdaptivePolicy::switches(&mods);
    println!(
        "scenario: {symbols} OFDM symbols, SNR 6..20 dB sinusoidal, {switches} modulation switches"
    );

    // ---- system half ---------------------------------------------------
    let study = PaperCaseStudy::build().expect("flow runs");
    let selections = PaperCaseStudy::selections_from_snr(&policy, &snr);
    let loads = PaperCaseStudy::load_sequence(&selections);
    println!("\n== system half (simulated hardware) ==");
    for (label, options) in [
        ("baseline ", RuntimeOptions::paper_baseline()),
        ("prefetch ", RuntimeOptions::paper_prefetch(loads)),
    ] {
        let report = study
            .deploy(options)
            .simulate(
                &SimConfig::iterations(symbols as u32).with_selection("op_dyn", selections.clone()),
            )
            .expect("simulation runs");
        println!(
            "{label}: {} reconfigurations, lock-up {}, {:.0} symbols/s",
            report.reconfig_count(),
            report.lockup_time(),
            report.throughput_per_sec()
        );
    }

    // ---- functional half -----------------------------------------------
    println!("\n== functional half (bit-true baseband) ==");
    let cfg = TxConfig::paper();
    let tx = McCdmaTransmitter::new(cfg);
    let rx = McCdmaReceiver::new(cfg);
    let gain_db = 10.0 * (cfg.spread_factor as f64).log10();
    let mut ber = BerCounter::new();
    let mut bits_sent = 0u64;
    // Transmit frame by frame (20 symbols each) with per-symbol modulation
    // from the adaptive sequence, at the per-symbol channel SNR.
    for (f, chunk) in mods.chunks(20).enumerate() {
        if chunk.len() < 20 {
            break;
        }
        let mut prbs = Prbs::new(f as u32 + 1);
        let info = prbs.take_bits(tx.info_bits_for(chunk));
        let sent = tx.transmit(&info, chunk);
        // Channel at the mean scenario SNR for this frame, minus the
        // despreading processing gain (SnrTrace values are post-despread).
        let mean_snr = snr[f * 20..f * 20 + 20].iter().sum::<f64>() / 20.0 - gain_db;
        let received = AwgnChannel::new(mean_snr, f as u64).transmit(&sent);
        let decoded = rx.receive(&received, chunk);
        ber.push_block(&info, &decoded);
        bits_sent += info.len() as u64;
    }
    println!(
        "adaptive link: {bits_sent} info bits, BER {:.2e} ({} errors)",
        ber.ber(),
        ber.errors
    );
    let qpsk_only_bits: usize = (0..symbols / 20)
        .map(|_| tx.info_bits_for(&[Modulation::Qpsk; 20]))
        .sum();
    println!(
        "throughput vs QPSK-only: {bits_sent} vs {qpsk_only_bits} info bits (+{:.0} %)",
        100.0 * (bits_sent as f64 / qpsk_only_bits as f64 - 1.0)
    );
}
