//! Runtime-manager policies: drive one region through the indexed
//! [`RtrEngine`] under different prefetch and eviction policies and
//! compare what each one hides.
//!
//! ```text
//! cargo run --example rtr_policies
//! ```
//!
//! The engine manages every dynamic region of a deployed system in one
//! dense structure — names interned at construction, bitstreams
//! validated once, policies enum-dispatched — so swapping a policy is a
//! [`RegionSpec`] field, not a different manager implementation. The
//! reference `ConfigurationManager` only does LRU + boxed predictors;
//! this example sweeps policies it cannot express (LFU, the offline
//! Belady oracle) next to the ones it can.

use pdr_core::paper::PaperCaseStudy;
use pdr_core::{EvictionChoice, PrefetchChoice, RuntimeOptions};
use pdr_fabric::TimePs;
use pdr_rtr::{EvictionSpec, PrefetchSpec};
use pdr_sim::SimConfig;

fn main() {
    // 1. The §6 case study deployed through the engine: same flow, same
    //    bitstreams, but all regions served by one RtrEngine.
    let study = PaperCaseStudy::build().expect("the paper flow runs");
    let sel: Vec<String> = (0..64u32)
        .map(|i| {
            if (i / 8) % 2 == 0 {
                "mod_qpsk".to_string()
            } else {
                "mod_qam16".to_string()
            }
        })
        .collect();
    let cfg = SimConfig::iterations(64).with_selection("op_dyn", sel);

    println!("== engine-backed deployments (64 symbols, switch every 8) ==");
    let variants: Vec<(&str, RuntimeOptions)> = vec![
        ("baseline (no prefetch)", RuntimeOptions::paper_baseline()),
        (
            "markov + 2-module cache",
            RuntimeOptions {
                cache_modules: 2,
                prefetch: PrefetchChoice::Markov,
                ..RuntimeOptions::default()
            },
        ),
        (
            "markov + LFU eviction",
            RuntimeOptions {
                cache_modules: 2,
                prefetch: PrefetchChoice::Markov,
                eviction: EvictionChoice::Lfu,
                ..RuntimeOptions::default()
            },
        ),
    ];
    for (label, options) in variants {
        let report = study
            .deploy(options)
            .simulate_rtr(&cfg)
            .expect("engine deployment simulates");
        println!(
            "{label:28} {} reconfigurations, {} hidden, lock-up {}",
            report.reconfig_count(),
            report.hidden_fetches(),
            report.lockup_time()
        );
    }

    // 2. The same comparison below the simulator: a raw request replay
    //    through engines built directly, including the Belady oracle
    //    (which needs the future trace, so only the builder can set it).
    println!("\n== direct replay, 6 modules, skewed mix, 2-module cache ==");
    let modules = pdr_bench::rtr_study::replay_modules(6);
    let trace = pdr_bench::rtr_study::trace("skewed", 6, 4_096, 0x5EED_5E77);
    for (prefetch, eviction) in [
        ("none", "lru"),
        ("none", "lfu"),
        ("none", "belady"),
        ("markov", "lru"),
        ("markov", "belady"),
        ("schedule", "lru"),
    ] {
        let p = pdr_bench::rtr_study::run_point(&modules, &trace, prefetch, eviction, 2, "skewed");
        println!(
            "{prefetch:>9} + {eviction:<7} hit rate {:>3.0}%, hidden {:>3.0}%, p99 latency {}",
            100.0 * p.cache_hit_rate,
            100.0 * p.hidden_fraction,
            TimePs(p.latency_ps.p99)
        );
    }

    // 3. Policy specs are per region: a two-region system can mix them.
    let _mixed = (
        PrefetchSpec::Schedule(vec!["mod_qam16".into(), "mod_qpsk".into()]),
        EvictionSpec::Belady(vec!["mod_qpsk".into(), "mod_qam16".into()]),
    );
    println!("\n(each RegionSpec carries its own PrefetchSpec/EvictionSpec)");
}
