//! Build a *custom* reconfigurable system from scratch with two dynamic
//! regions — the paper's §7 outlook: *"complex design and architecture can
//! support more than one dynamic part"*.
//!
//! ```text
//! cargo run --example two_dynamic_regions
//! ```
//!
//! The application is a software-defined-radio receiver front end:
//!
//! * a conditioned **channel filter** (narrowband | wideband) on region D1;
//! * a conditioned **decoder** (viterbi | turbo-like) on region D2;
//! * fixed AGC/sync blocks in the static part.
//!
//! Everything below uses only the public API: graphs, characterization,
//! constraints, the flow, and deployment.

use pdr_adequation::AdequationOptions;
use pdr_core::{DesignFlow, RuntimeOptions};
use pdr_fabric::{Device, Resources, TimePs};
use pdr_graph::constraints::{LoadPolicy, ModuleConstraints};
use pdr_graph::prelude::*;
use pdr_sim::SimConfig;

fn build_algorithm() -> AlgorithmGraph {
    let mut g = AlgorithmGraph::new("sdr_rx_front_end");
    let adc = g.add_op("adc", OpKind::Source).unwrap();
    let band_sel = g.add_op("band_select", OpKind::Source).unwrap();
    let code_sel = g.add_op("code_select", OpKind::Source).unwrap();
    let agc = g.add_compute("agc").unwrap();
    let filter = g
        .add_op(
            "channel_filter",
            OpKind::Conditioned {
                alternatives: vec!["fir_narrow".into(), "fir_wide".into()],
            },
        )
        .unwrap();
    let sync = g.add_compute("symbol_sync").unwrap();
    let decoder = g
        .add_op(
            "decoder",
            OpKind::Conditioned {
                alternatives: vec!["dec_viterbi".into(), "dec_turbo".into()],
            },
        )
        .unwrap();
    let sink = g.add_op("payload_out", OpKind::Sink).unwrap();
    g.connect(adc, agc, 4096).unwrap();
    g.connect(agc, filter, 4096).unwrap();
    g.connect(band_sel, filter, 2).unwrap();
    g.connect(filter, sync, 2048).unwrap();
    g.connect(sync, decoder, 1024).unwrap();
    g.connect(code_sel, decoder, 2).unwrap();
    g.connect(decoder, sink, 512).unwrap();
    g
}

fn build_architecture() -> ArchGraph {
    let mut a = ArchGraph::new("fig1_style_two_regions");
    let cpu = a.add_operator("cpu", OperatorKind::Processor).unwrap();
    let f1 = a.add_operator("f1", OperatorKind::FpgaStatic).unwrap();
    let d1 = a
        .add_operator("d1", OperatorKind::FpgaDynamic { host: "f1".into() })
        .unwrap();
    let d2 = a
        .add_operator("d2", OperatorKind::FpgaDynamic { host: "f1".into() })
        .unwrap();
    let bus = a
        .add_medium(
            "host_bus",
            MediumKind::Bus,
            800_000_000,
            TimePs::from_ns(300),
        )
        .unwrap();
    let il = a
        .add_medium(
            "il",
            MediumKind::InternalLink,
            1_600_000_000,
            TimePs::from_ns(20),
        )
        .unwrap();
    a.link(cpu, bus).unwrap();
    a.link(f1, bus).unwrap();
    a.link(f1, il).unwrap();
    a.link(d1, il).unwrap();
    a.link(d2, il).unwrap();
    a
}

fn build_characterization() -> Characterization {
    let mut c = Characterization::new();
    let us = TimePs::from_us;
    c.set_duration("agc", "f1", us(3))
        .set_duration("agc", "cpu", us(50))
        .set_duration("symbol_sync", "f1", us(4))
        .set_duration("symbol_sync", "cpu", us(70));
    for (f, d1_us, region) in [
        ("fir_narrow", 5u64, "d1"),
        ("fir_wide", 8, "d1"),
        ("dec_viterbi", 10, "d2"),
        ("dec_turbo", 18, "d2"),
    ] {
        c.set_duration(f, region, us(d1_us));
        c.set_duration(f, "cpu", us(d1_us * 20));
    }
    c.set_resources("agc", Resources::logic(80, 140, 120));
    c.set_resources("symbol_sync", Resources::logic(110, 190, 160));
    c.set_resources("fir_narrow", Resources::logic(220, 380, 340));
    c.set_resources("fir_wide", Resources::logic(420, 760, 660));
    c.set_resources("dec_viterbi", Resources::logic(350, 620, 540));
    c.set_resources("dec_turbo", Resources::logic(780, 1_400, 1_180));
    c.set_reconfig_default("d1", TimePs::from_ms(3));
    c.set_reconfig_default("d2", TimePs::from_ms(6));
    c
}

fn build_constraints() -> ConstraintsFile {
    let mut f = ConstraintsFile::new();
    for (module, region, preload) in [
        ("fir_narrow", "d1", true),
        ("fir_wide", "d1", false),
        ("dec_viterbi", "d2", true),
        ("dec_turbo", "d2", false),
    ] {
        let mut mc = ModuleConstraints::new(module, region);
        if preload {
            mc.load = LoadPolicy::AtStart;
        }
        mc.share_group = Some(region.to_string());
        f.add(mc).unwrap();
    }
    f
}

fn main() {
    let arch = build_architecture();
    let flow = DesignFlow::new(
        build_algorithm(),
        arch.clone(),
        build_characterization(),
        Device::by_name("XC2V3000").expect("catalog device"),
    )
    .with_constraints(build_constraints())
    .with_adequation_options(
        AdequationOptions::default()
            .pin("adc", "cpu")
            .pin("band_select", "cpu")
            .pin("code_select", "cpu")
            .pin("payload_out", "f1"),
    );

    let artifacts = flow.run().expect("custom flow runs");
    println!("== two-region floorplan on XC2V3000 ==");
    for region in artifacts.design.floorplan.floorplan.regions() {
        println!(
            "region {:4} columns [{}, {}) holding {:?}",
            region.name,
            region.clb_col_start,
            region.clb_col_end(),
            artifacts
                .design
                .floorplan
                .region_of
                .iter()
                .filter(|(_, r)| **r == region.name)
                .map(|(m, _)| m.as_str())
                .collect::<Vec<_>>()
        );
    }
    println!(
        "dynamic fraction: {:.1} %",
        100.0 * artifacts.design.floorplan.floorplan.dynamic_fraction()
    );

    // Simulate 48 frames: the filter switches band every 12 frames, the
    // decoder upgrades to turbo halfway through.
    let filter_sel: Vec<String> = (0..48u32)
        .map(|i| {
            if (i / 12) % 2 == 0 {
                "fir_narrow".to_string()
            } else {
                "fir_wide".to_string()
            }
        })
        .collect();
    let decoder_sel: Vec<String> = (0..48u32)
        .map(|i| {
            if i < 24 {
                "dec_viterbi".to_string()
            } else {
                "dec_turbo".to_string()
            }
        })
        .collect();
    let deployed = pdr_core::DeployedSystem::new(
        &arch,
        &artifacts,
        Device::by_name("XC2V3000").unwrap(),
        RuntimeOptions::paper_baseline(),
    );
    let report = deployed
        .simulate(
            &SimConfig::iterations(48)
                .with_selection("d1", filter_sel)
                .with_selection("d2", decoder_sel),
        )
        .expect("simulation runs");

    println!("\n== simulation ==");
    println!("{}", report.summary());
    for rc in &report.reconfigs {
        println!(
            "  iter {:>2}: {:>4} loads {:12} ({})",
            rc.iteration,
            rc.operator,
            rc.module,
            rc.latency()
        );
    }
}
