//! A reconfigurable system with two dynamic regions — the paper's §7
//! outlook: *"complex design and architecture can support more than one
//! dynamic part"*.
//!
//! ```text
//! cargo run --example two_dynamic_regions
//! ```
//!
//! The application is a software-defined-radio receiver front end:
//!
//! * a conditioned **channel filter** (narrowband | wideband) on region D1;
//! * a conditioned **decoder** (viterbi | turbo-like) on region D2;
//! * fixed AGC/sync blocks in the static part.
//!
//! The models live in [`pdr_core::gallery`] (shared with the `pdr-lint`
//! CLI and the lint regression suite); this example runs the flow through
//! the static-analysis gate, inspects the two-region floorplan, and
//! simulates adaptive module switching on both regions at once.

use pdr_core::gallery;
use pdr_core::{DeployedSystem, RuntimeOptions};
use pdr_sim::SimConfig;

fn main() {
    let g = gallery::by_name("two_regions").expect("gallery flow");
    println!("== flow `{}` ==\n{}\n", g.name, g.description);

    // Run the pipeline gated on a clean static analysis: rendezvous,
    // deadlock, reconfiguration safety and floorplan lints all pass or
    // the flow refuses to hand out artifacts.
    let artifacts = g.flow.run_verified().expect("flow runs and lints clean");
    let report = g.flow.verify(&artifacts);
    println!(
        "pdr-lint: {} ({} diagnostics)",
        if report.is_clean() { "clean" } else { "dirty" },
        report.diagnostics.len()
    );

    println!("\n== two-region floorplan on {} ==", g.flow.device().name);
    for region in artifacts.design.floorplan.floorplan.regions() {
        println!(
            "region {:4} columns [{}, {}) holding {:?}",
            region.name,
            region.clb_col_start,
            region.clb_col_end(),
            artifacts
                .design
                .floorplan
                .region_of
                .iter()
                .filter(|(_, r)| **r == region.name)
                .map(|(m, _)| m.as_str())
                .collect::<Vec<_>>()
        );
    }
    println!(
        "dynamic fraction: {:.1} %",
        100.0 * artifacts.design.floorplan.floorplan.dynamic_fraction()
    );

    // Simulate 48 frames: the filter switches band every 12 frames, the
    // decoder upgrades to turbo halfway through.
    let filter_sel: Vec<String> = (0..48u32)
        .map(|i| {
            if (i / 12) % 2 == 0 {
                "fir_narrow".to_string()
            } else {
                "fir_wide".to_string()
            }
        })
        .collect();
    let decoder_sel: Vec<String> = (0..48u32)
        .map(|i| {
            if i < 24 {
                "dec_viterbi".to_string()
            } else {
                "dec_turbo".to_string()
            }
        })
        .collect();
    let arch = gallery::sdr_architecture();
    let deployed = DeployedSystem::new(
        &arch,
        &artifacts,
        g.flow.device().clone(),
        RuntimeOptions::paper_baseline(),
    );
    let report = deployed
        .simulate(
            &SimConfig::iterations(48)
                .with_selection("d1", filter_sel)
                .with_selection("d2", decoder_sel),
        )
        .expect("simulation runs");

    println!("\n== simulation ==");
    println!("{}", report.summary());
    for rc in &report.reconfigs {
        println!(
            "  iter {:>2}: {:>4} loads {:12} ({})",
            rc.iteration,
            rc.operator,
            rc.module,
            rc.latency()
        );
    }
}
